//! End-to-end pipeline tests: every emulated dataset through the full
//! build → query → extract cycle, with cross-index agreement against
//! brute-force scans and the baseline FM-indexes.

use cinct::{CinctBuilder, CinctIndex};
use cinct_bench_free::sample_paths;
use cinct_bwt::TrajectoryString;
use cinct_fmindex::{Path, PathQuery, Ufmi};

/// Local pattern sampler (the bench crate is not a dependency of the
/// umbrella crate; integration tests keep their own tiny copy).
mod cinct_bench_free {
    pub fn sample_paths(trajs: &[Vec<u32>], len: usize, count: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut k = 0usize;
        'outer: loop {
            for t in trajs {
                if t.len() >= len {
                    let start = (k * 7919) % (t.len() - len + 1);
                    out.push(t[start..start + len].to_vec());
                    k += 1;
                    if out.len() == count {
                        break 'outer;
                    }
                }
            }
            if k == 0 {
                break; // nothing long enough
            }
        }
        out
    }
}

fn brute_force_count(trajs: &[Vec<u32>], path: &[u32]) -> usize {
    trajs
        .iter()
        .map(|t| t.windows(path.len()).filter(|w| *w == path).count())
        .sum()
}

fn check_dataset(ds: &cinct_datasets::Dataset) {
    let idx = CinctIndex::build(&ds.trajectories, ds.n_edges());
    // Counts agree with brute force for sampled existing paths...
    for len in [1usize, 2, 5, 9] {
        for path in sample_paths(&ds.trajectories, len, 12) {
            assert_eq!(
                idx.count_path(&path),
                brute_force_count(&ds.trajectories, &path),
                "{}: path {path:?}",
                ds.name
            );
        }
    }
    // ...and for absent/implausible paths.
    let absent = vec![0u32, 0, 0, 0, 0, 0, 0];
    assert_eq!(
        idx.count_path(&absent),
        brute_force_count(&ds.trajectories, &absent),
        "{}: absent path",
        ds.name
    );
}

#[test]
fn singapore_pipeline() {
    check_dataset(&cinct_datasets::singapore(0.03));
}

#[test]
fn singapore2_pipeline() {
    check_dataset(&cinct_datasets::singapore2(0.03));
}

#[test]
fn roma_pipeline() {
    check_dataset(&cinct_datasets::roma(0.03));
}

#[test]
fn mo_gen_pipeline() {
    check_dataset(&cinct_datasets::mo_gen(0.03));
}

#[test]
fn chess_pipeline() {
    check_dataset(&cinct_datasets::chess(0.01));
}

#[test]
fn randwalk_pipeline() {
    check_dataset(&cinct_datasets::randwalk(2048, 4.0, 20_000, 5));
}

#[test]
fn cinct_agrees_with_ufmi_everywhere() {
    let ds = cinct_datasets::roma(0.03);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let cinct = CinctIndex::build(&ds.trajectories, ds.n_edges());
    let ufmi = Ufmi::from_text(ts.text(), ts.sigma());
    for len in [2usize, 4, 8] {
        for path in sample_paths(&ds.trajectories, len, 25) {
            let enc = TrajectoryString::encode_pattern(&path);
            assert_eq!(
                cinct.suffix_range_encoded(&enc),
                ufmi.suffix_range(&enc),
                "path {path:?}"
            );
        }
    }
}

#[test]
fn extraction_recovers_every_trajectory() {
    let ds = cinct_datasets::mo_gen(0.02);
    let idx = CinctIndex::build(&ds.trajectories, ds.n_edges());
    // `TrajectoryString::build` skips empty trajectories, so compare against
    // the filtered list.
    let stored: Vec<&Vec<u32>> = ds.trajectories.iter().filter(|t| !t.is_empty()).collect();
    assert_eq!(idx.num_trajectories(), stored.len());
    for (id, t) in stored.iter().enumerate() {
        assert_eq!(&idx.trajectory(id), *t, "trajectory {id}");
    }
}

#[test]
fn occurrences_match_brute_force() {
    let ds = cinct_datasets::roma(0.02);
    let idx = CinctBuilder::new()
        .locate_sampling(16)
        .build(&ds.trajectories, ds.n_edges());
    for path in sample_paths(&ds.trajectories, 4, 10) {
        let mut expected = Vec::new();
        for (tid, t) in ds.trajectories.iter().enumerate() {
            for off in 0..t.len().saturating_sub(path.len() - 1) {
                if t[off..off + path.len()] == path[..] {
                    expected.push((tid, off));
                }
            }
        }
        let got = idx
            .occurrences(Path::new(&path))
            .expect("locate enabled")
            .collect_sorted();
        assert_eq!(got, expected, "path {path:?}");
    }
}

#[test]
fn block_sizes_and_labelings_agree_on_real_data() {
    let ds = cinct_datasets::chess(0.005);
    let variants = [
        CinctBuilder::new().block_size(15),
        CinctBuilder::new().block_size(31),
        CinctBuilder::new().block_size(63),
        CinctBuilder::new().labeling(cinct::LabelingStrategy::Random { seed: 5 }),
    ];
    let indexes: Vec<CinctIndex> = variants
        .iter()
        .map(|b| b.build(&ds.trajectories, ds.n_edges()))
        .collect();
    for path in sample_paths(&ds.trajectories, 3, 20) {
        let reference = indexes[0].path_range(&path);
        for (i, idx) in indexes.iter().enumerate().skip(1) {
            assert_eq!(
                idx.path_range(&path),
                reference,
                "variant {i} path {path:?}"
            );
        }
    }
}
