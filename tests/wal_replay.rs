//! Property: recovery through the write-ahead log is invisible. A
//! corpus rebuilt by "save base, journal every batch, crash, replay"
//! is outcome-identical — count, locate, extract — to one that applied
//! the same batches directly with `append_batch` + `save_dir`, across
//! shard counts K ∈ {1, 2, 5}.

use std::sync::atomic::{AtomicUsize, Ordering};

use cinct::{Durability, Path, PathQuery, ShardedBuilder, ShardedCinct, Wal};
use proptest::prelude::*;

/// Random corpora over a 12-edge network with sparse transition
/// structure (same shape as `properties.rs`), at least 2 trajectories
/// so there is always a base corpus and at least one appended batch.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    let n_edges = 12u32;
    proptest::collection::vec((0u32..n_edges, 1usize..16, any::<u64>()), 2..10).prop_map(
        move |specs| {
            specs
                .into_iter()
                .map(|(start, len, seed)| {
                    let mut t = vec![start];
                    let mut x = seed | 1;
                    for _ in 1..len {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let prev = *t.last().unwrap();
                        let succ = [
                            (prev * 7 + 1) % n_edges,
                            (prev * 7 + 3) % n_edges,
                            (prev * 7 + 5) % n_edges,
                        ];
                        t.push(succ[((x >> 33) % 3) as usize]);
                    }
                    t
                })
                .collect()
        },
    )
}

fn scratch() -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "cinct-walprop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Per-probe answers: count plus sorted occurrence positions.
type ProbeAnswers = Vec<(usize, Vec<(usize, usize)>)>;

/// Everything the query surface can observe.
fn fingerprint(c: &ShardedCinct, probes: &[Vec<u32>]) -> (usize, Vec<Vec<u32>>, ProbeAnswers) {
    let trajs = (0..c.num_trajectories()).map(|g| c.trajectory(g)).collect();
    let answers = probes
        .iter()
        .map(|p| {
            let path = Path::new(p);
            (c.count(path), c.occurrences(path).unwrap().collect_sorted())
        })
        .collect();
    (c.num_trajectories(), trajs, answers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn wal_replay_is_outcome_identical_to_direct_append(
        trajs in corpus_strategy(),
        split in 1usize..4,
    ) {
        let n_edges = 12usize;
        // First `base_len` trajectories are the saved base; the rest
        // arrive as `split`-sized appended batches.
        let base_len = (trajs.len() / 2).max(1);
        let (base, rest) = trajs.split_at(base_len);
        let batches: Vec<&[Vec<u32>]> = rest.chunks(split.max(1)).collect();
        let probes: Vec<Vec<u32>> = trajs
            .iter()
            .take(4)
            .map(|t| t[..t.len().min(2)].to_vec())
            .collect();

        for k in [1usize, 2, 5] {
            // Direct path: append each batch in memory.
            let mut direct = ShardedBuilder::new()
                .shards(k)
                .locate_sampling(2)
                .build(base, n_edges);
            for b in &batches {
                direct.append_batch(b).unwrap();
            }

            // WAL path: save the base, journal each batch, "crash"
            // (drop without saving), then recover by replay.
            let dir = scratch();
            ShardedBuilder::new()
                .shards(k)
                .locate_sampling(2)
                .build(base, n_edges)
                .save_dir(&dir)
                .unwrap();
            {
                let (mut wal, replay) = Wal::open(&dir, Durability::Fast).unwrap();
                prop_assert!(replay.is_empty());
                for (i, b) in batches.iter().enumerate() {
                    wal.append(&format!("batch-{i}"), b).unwrap();
                }
            }
            let mut replayed = ShardedCinct::open_dir(&dir).unwrap();
            let (_, records) = Wal::open(&dir, Durability::Fast).unwrap();
            prop_assert_eq!(records.len(), batches.len());
            for rec in &records {
                replayed.append_batch(&rec.batch).unwrap();
            }

            prop_assert_eq!(
                fingerprint(&direct, &probes),
                fingerprint(&replayed, &probes),
                "K = {}", k
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
