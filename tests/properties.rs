//! Property-based integration tests (proptest): the paper's theorems and
//! structural invariants over randomly generated trajectory corpora.

use cinct::{CinctBuilder, CinctIndex, LabelingStrategy, Path, PathQuery, QueryError, Rml};
use cinct_bwt::{bwt, entropy_h0, CArray, TrajectoryString};
use cinct_fmindex::Ufmi;
use proptest::prelude::*;

/// Random corpora: up to 12 trajectories of 1..20 edges over a small
/// alphabet, with a transition structure (edge e can be followed by a few
/// pseudo-random successors) so the ET-graph stays sparse like real data.
fn corpus_strategy() -> impl Strategy<Value = (Vec<Vec<u32>>, usize)> {
    let n_edges = 12usize;
    (proptest::collection::vec(
        (0u32..n_edges as u32, 1usize..20, any::<u64>()),
        1..12,
    ),)
        .prop_map(move |(specs,)| {
            let trajs: Vec<Vec<u32>> = specs
                .into_iter()
                .map(|(start, len, seed)| {
                    let mut t = vec![start];
                    let mut x = seed | 1;
                    for _ in 1..len {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let prev = *t.last().unwrap();
                        // 3 deterministic successors per edge keeps G_T sparse.
                        let succ = [
                            (prev * 7 + 1) % n_edges as u32,
                            (prev * 7 + 3) % n_edges as u32,
                            (prev * 7 + 5) % n_edges as u32,
                        ];
                        t.push(succ[((x >> 33) % 3) as usize]);
                    }
                    t
                })
                .collect();
            (trajs, n_edges)
        })
}

fn brute_force_count(trajs: &[Vec<u32>], path: &[u32]) -> usize {
    trajs
        .iter()
        .map(|t| t.windows(path.len()).filter(|w| *w == path).count())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CiNCT count == brute force for every sampled path (and agrees with
    /// the reference FM-index on the raw suffix ranges).
    #[test]
    fn counts_match_brute_force((trajs, n_edges) in corpus_strategy(), plen in 1usize..5) {
        let idx = CinctIndex::build(&trajs, n_edges);
        let ts = TrajectoryString::build(&trajs, n_edges);
        let ufmi = Ufmi::from_text(ts.text(), ts.sigma());
        // Probe paths taken from the data plus a few synthetic ones.
        let mut probes: Vec<Vec<u32>> = Vec::new();
        for t in trajs.iter().take(4) {
            if t.len() >= plen {
                probes.push(t[..plen].to_vec());
                probes.push(t[t.len() - plen..].to_vec());
            }
        }
        probes.push((0..plen as u32).collect());
        for path in probes {
            prop_assert_eq!(idx.count_path(&path), brute_force_count(&trajs, &path));
            let enc = TrajectoryString::encode_pattern(&path);
            prop_assert_eq!(idx.suffix_range_encoded(&enc), ufmi.suffix_range(&enc));
        }
    }

    /// Every trajectory can be recovered from the compressed index.
    #[test]
    fn trajectories_roundtrip((trajs, n_edges) in corpus_strategy()) {
        let idx = CinctIndex::build(&trajs, n_edges);
        let stored: Vec<&Vec<u32>> = trajs.iter().filter(|t| !t.is_empty()).collect();
        prop_assert_eq!(idx.num_trajectories(), stored.len());
        for (id, t) in stored.iter().enumerate() {
            prop_assert_eq!(&idx.trajectory(id), *t);
        }
    }

    /// Theorem 2 (balancing equation): PseudoRank equals the true rank on
    /// the raw BWT at every valid (j, w, w′).
    #[test]
    fn pseudo_rank_is_true_rank((trajs, n_edges) in corpus_strategy()) {
        let ts = TrajectoryString::build(&trajs, n_edges);
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let idx = CinctIndex::build(&trajs, n_edges);
        let c = idx.c_array();
        for w_prime in 0..idx.sigma() as u32 {
            let range = c.symbol_range(w_prime);
            for w in idx.rml().graph().out(w_prime) {
                for j in [range.start, (range.start + range.end) / 2, range.end] {
                    let truth = tbwt[..j].iter().filter(|&&s| s == w).count();
                    prop_assert_eq!(idx.pseudo_rank(j, w, w_prime), Some(truth));
                }
            }
        }
    }

    /// Theorem 3 (labeling optimality): bigram-sorted RML never has higher
    /// H0 than a random labeling of the same ET-graph.
    #[test]
    fn bigram_labeling_is_optimal((trajs, n_edges) in corpus_strategy(), seed in any::<u64>()) {
        let ts = TrajectoryString::build(&trajs, n_edges);
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let c = CArray::new(ts.text(), ts.sigma());
        let h = |strategy| {
            let rml = Rml::from_text(ts.text(), ts.sigma(), strategy);
            entropy_h0(&rml.label_bwt(&tbwt, &c))
        };
        let sorted = h(LabelingStrategy::BigramSorted);
        let random = h(LabelingStrategy::Random { seed });
        prop_assert!(sorted <= random + 1e-9, "sorted {} > random {}", sorted, random);
    }

    /// Extraction equals direct text slicing at arbitrary rows/lengths.
    #[test]
    fn extract_matches_text((trajs, n_edges) in corpus_strategy(), row_sel in any::<u64>(), l in 1usize..8) {
        let ts = TrajectoryString::build(&trajs, n_edges);
        let idx = CinctIndex::build(&trajs, n_edges);
        let sa = cinct_bwt::sais::naive_suffix_array(ts.text());
        let j = (row_sel % ts.len() as u64) as usize;
        let i = sa[j] as usize;
        let l = l.min(i);
        if l > 0 {
            prop_assert_eq!(&idx.extract_encoded(j, l)[..], &ts.text()[i - l..i]);
        }
    }

    /// Size accounting is consistent: w/o-ET ≤ core ≤ core + directory.
    #[test]
    fn size_monotonicity((trajs, n_edges) in corpus_strategy()) {
        let idx = CinctBuilder::new().locate_sampling(8).build(&trajs, n_edges);
        prop_assert!(idx.size_without_et_graph() <= idx.core_size_in_bytes());
        prop_assert!(idx.directory_size_in_bytes() > 0);
    }

    /// The streaming `occurrences()` iterator yields exactly what the
    /// legacy eager `locate_path` returned — and both match brute force —
    /// on arbitrary corpora, paths, and sampling rates.
    #[test]
    #[allow(deprecated)]
    fn occurrences_equal_legacy_locate(
        (trajs, n_edges) in corpus_strategy(),
        plen in 1usize..5,
        rate in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let idx = CinctBuilder::new().locate_sampling(rate).build(&trajs, n_edges);
        let mut probes: Vec<Vec<u32>> = Vec::new();
        for t in trajs.iter().take(4) {
            if t.len() >= plen {
                probes.push(t[..plen].to_vec());
                probes.push(t[t.len() - plen..].to_vec());
            }
        }
        probes.push((0..plen as u32).collect());
        for path in probes {
            let streamed = idx
                .occurrences(Path::new(&path))
                .expect("locate enabled")
                .collect_sorted();
            let legacy = idx.locate_path(&path).expect("locate enabled");
            prop_assert_eq!(&streamed, &legacy, "path {:?}", path);
            // Both equal brute force.
            let mut expected = Vec::new();
            for (tid, t) in trajs.iter().enumerate() {
                for off in 0..t.len().saturating_sub(plen - 1) {
                    if t[off..off + plen] == path[..] {
                        expected.push((tid, off));
                    }
                }
            }
            prop_assert_eq!(streamed, expected, "path {:?}", path);
        }
    }

    /// Error paths: no SA samples → LocateUnsupported for any well-formed
    /// path; out-of-alphabet edges → UnknownEdge everywhere.
    #[test]
    fn error_paths_are_typed((trajs, n_edges) in corpus_strategy(), bad_edge in 12u32..1000) {
        let count_only = CinctIndex::build(&trajs, n_edges);
        prop_assert_eq!(
            count_only.occurrences(Path::new(&[0])).err(),
            Some(QueryError::LocateUnsupported)
        );
        let bad = [0u32, bad_edge];
        prop_assert_eq!(
            count_only.try_range(Path::new(&bad)).err(),
            Some(QueryError::UnknownEdge { edge: bad_edge, n_edges })
        );
        // `range` treats the same path as merely absent.
        prop_assert_eq!(count_only.range(Path::new(&bad)), None);
        // Builder-level validation rejects the same edge at build time.
        let mut poisoned = trajs.clone();
        poisoned.push(vec![bad_edge]);
        prop_assert_eq!(
            CinctBuilder::new().try_build(&poisoned, n_edges).err(),
            Some(QueryError::UnknownEdge { edge: bad_edge, n_edges })
        );
    }
}
