//! Property-based integration tests for the sharded corpus layer: a
//! K-sharded corpus must be **outcome-identical** to a monolithic index
//! over the same corpus — counts, occurrence listings under the global
//! trajectory-ID namespace, and extraction (trajectory recovery) — for
//! K ∈ {1, 2, 5}, both partition strategies, and across the full
//! lifecycle: fresh build, after `append_batch` ingest, and after
//! `compact` re-balancing.

use cinct::engine::{Query, QueryEngine};
use cinct::{CinctBuilder, CinctIndex, Path, PathQuery, ShardPartition, ShardedBuilder};
use proptest::prelude::*;

/// Random corpora over a sparse transition structure (same family as
/// `tests/properties.rs`, slightly larger so K = 5 shards stay populated).
fn corpus_strategy() -> impl Strategy<Value = (Vec<Vec<u32>>, usize)> {
    let n_edges = 12usize;
    (proptest::collection::vec(
        (0u32..n_edges as u32, 1usize..20, any::<u64>()),
        6..18,
    ),)
        .prop_map(move |(specs,)| {
            let trajs: Vec<Vec<u32>> = specs
                .into_iter()
                .map(|(start, len, seed)| {
                    let mut t = vec![start];
                    let mut x = seed | 1;
                    for _ in 1..len {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let prev = *t.last().unwrap();
                        let succ = [
                            (prev * 7 + 1) % n_edges as u32,
                            (prev * 7 + 3) % n_edges as u32,
                            (prev * 7 + 5) % n_edges as u32,
                        ];
                        t.push(succ[((x >> 33) % 3) as usize]);
                    }
                    t
                })
                .collect();
            (trajs, n_edges)
        })
}

/// Probe paths: data-derived prefixes/suffixes (present), plus synthetic
/// paths that are well-formed but usually absent.
fn probe_paths(trajs: &[Vec<u32>], n_edges: usize) -> Vec<Vec<u32>> {
    let mut probes: Vec<Vec<u32>> = Vec::new();
    for t in trajs.iter().take(6) {
        for plen in [1usize, 2, 4] {
            if t.len() >= plen {
                probes.push(t[..plen].to_vec());
                probes.push(t[t.len() - plen..].to_vec());
            }
        }
    }
    probes.push(vec![0]);
    probes.push((0..4.min(n_edges) as u32).collect());
    probes
}

/// The identity battery: every query class answered by the sharded index
/// must match the monolithic index over the same corpus.
fn assert_identical(
    mono: &CinctIndex,
    sharded: &cinct::ShardedCinct,
    trajs: &[Vec<u32>],
    n_edges: usize,
    tag: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        sharded.num_trajectories(),
        mono.num_trajectories(),
        "{}: corpus size",
        tag
    );
    // Note: text_len is *not* compared — every shard's trajectory string
    // carries its own terminal sentinel, so a K-shard corpus indexes K-1
    // more symbols than the monolithic string. Query outcomes are what
    // must match.
    for p in probe_paths(trajs, n_edges) {
        let path = Path::new(&p);
        // Count identity.
        prop_assert_eq!(
            sharded.count(path),
            mono.count(path),
            "{}: count {:?}",
            tag,
            &p
        );
        // Locate identity: same (global trajectory, offset) multiset —
        // collect_sorted makes the order canonical.
        prop_assert_eq!(
            sharded.occurrences(path).unwrap().collect_sorted(),
            mono.occurrences(path).unwrap().collect_sorted(),
            "{}: occurrences {:?}",
            tag,
            &p
        );
        // The virtual range preserves multiplicity (None iff absent).
        match mono.range(path) {
            None => prop_assert_eq!(sharded.range(path), None),
            Some(r) => prop_assert_eq!(sharded.range(path), Some(0..r.len())),
        }
    }
    // Extraction identity: every trajectory decompresses to the same
    // edges under the same global ID.
    for g in 0..mono.num_trajectories() {
        prop_assert_eq!(
            sharded.trajectory(g),
            mono.trajectory(g),
            "{}: trajectory {}",
            tag,
            g
        );
    }
    // The batch engine cannot tell the backends apart (per-query errors
    // included: edge 12 is outside the indexed network).
    let mut batch: Vec<Query> = probe_paths(trajs, n_edges)
        .iter()
        .flat_map(|p| [Query::count(p), Query::occurrences(p)])
        .collect();
    batch.push(Query::count(&[n_edges as u32]));
    let a = QueryEngine::new(mono).run(&batch);
    let b = QueryEngine::new(sharded).run(&batch);
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        prop_assert_eq!(&x.value, &y.value, "{}: engine outcome {}", tag, i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// K-sharded == monolithic for K ∈ {1, 2, 5}, both partitions, over
    /// the full lifecycle (fresh → appended → compacted).
    #[test]
    fn sharded_lifecycle_is_outcome_identical(
        (trajs, n_edges) in corpus_strategy(),
        partition_sel in any::<bool>(),
    ) {
        let partition = if partition_sel {
            ShardPartition::RoundRobin
        } else {
            ShardPartition::SizeBalanced
        };
        let index_builder = CinctBuilder::new().locate_sampling(2);
        // The appended tail is part of the *final* corpus; the monolithic
        // reference indexes all of it up front (global IDs are corpus
        // positions in both worlds).
        let base_len = trajs.len() - trajs.len() / 3;
        let mono = index_builder.build(&trajs, n_edges);
        for k in [1usize, 2, 5] {
            let mut sharded = ShardedBuilder::new()
                .shards(k)
                .partition(partition)
                .index_builder(index_builder)
                .threads(1)
                .try_build(&trajs[..base_len], n_edges)
                .expect("valid corpus");
            // Ingest the tail in two batches -> two fresh shards.
            let tail = &trajs[base_len..];
            if !tail.is_empty() {
                let split = tail.len().div_ceil(2);
                for batch in tail.chunks(split) {
                    let ids = sharded.append_batch(batch).expect("valid batch");
                    prop_assert_eq!(ids.len(), batch.len());
                }
            }
            assert_identical(&mono, &sharded, &trajs, n_edges, &format!("K={k} appended"))?;
            // Re-balance and re-check: compaction must preserve the
            // namespace and every answer.
            sharded.compact(k).expect("compact");
            prop_assert!(sharded.num_shards() <= k);
            assert_identical(&mono, &sharded, &trajs, n_edges, &format!("K={k} compacted"))?;
        }
    }

    /// Shard pruning never changes answers: across K ∈ {1, 2, 8}, both
    /// partition strategies, and the append/compact lifecycle, the
    /// pruned fan-out (default) matches a pruning-disabled clone AND
    /// the monolithic index on every probe — a pruned shard's backward
    /// search would have returned `None`, so skipping it is invisible.
    #[test]
    fn pruned_fan_out_is_outcome_identical(
        (trajs, n_edges) in corpus_strategy(),
        partition_sel in any::<bool>(),
    ) {
        let partition = if partition_sel {
            ShardPartition::RoundRobin
        } else {
            ShardPartition::SizeBalanced
        };
        let index_builder = CinctBuilder::new().locate_sampling(2);
        let mono = index_builder.build(&trajs, n_edges);
        let base_len = trajs.len() - trajs.len() / 3;
        for k in [1usize, 2, 8] {
            let mut sharded = ShardedBuilder::new()
                .shards(k)
                .partition(partition)
                .index_builder(index_builder)
                .threads(1)
                .build(&trajs[..base_len], n_edges);
            prop_assert!(sharded.pruning_enabled());
            let tail = &trajs[base_len..];
            if !tail.is_empty() {
                let split = tail.len().div_ceil(2);
                for batch in tail.chunks(split) {
                    sharded.append_batch(batch).expect("valid batch");
                }
            }
            for stage in ["appended", "compacted"] {
                if stage == "compacted" {
                    sharded.compact(k).expect("compact");
                }
                let mut unpruned = sharded.clone();
                unpruned.set_pruning(false);
                for p in probe_paths(&trajs, n_edges) {
                    let path = Path::new(&p);
                    let want = mono.count(path);
                    prop_assert_eq!(
                        sharded.count(path), want, "K={} {}: pruned count {:?}", k, stage, &p
                    );
                    prop_assert_eq!(
                        unpruned.count(path), want, "K={} {}: unpruned count {:?}", k, stage, &p
                    );
                    prop_assert_eq!(
                        sharded.shard_ranges(path),
                        unpruned.shard_ranges(path),
                        "K={} {}: shard ranges {:?}", k, stage, &p
                    );
                    prop_assert_eq!(
                        sharded.occurrences(path).unwrap().collect_sorted(),
                        unpruned.occurrences(path).unwrap().collect_sorted(),
                        "K={} {}: occurrences {:?}", k, stage, &p
                    );
                }
            }
        }
    }

    /// Fan-out parallelism never changes answers: a sharded index with
    /// parallel fan-out matches its own sequential fan-out on every
    /// probe (same corpus, same shards).
    #[test]
    fn parallel_fan_out_is_value_identical((trajs, n_edges) in corpus_strategy()) {
        let mut sharded = ShardedBuilder::new()
            .shards(3)
            .locate_sampling(2)
            .threads(1)
            .build(&trajs, n_edges);
        let seq: Vec<_> = probe_paths(&trajs, n_edges)
            .iter()
            .map(|p| {
                (
                    sharded.count(Path::new(p)),
                    sharded.occurrences(Path::new(p)).unwrap().collect_sorted(),
                )
            })
            .collect();
        sharded.set_fan_out_threads(4);
        for (p, expected) in probe_paths(&trajs, n_edges).iter().zip(&seq) {
            prop_assert_eq!(sharded.count(Path::new(p)), expected.0);
            prop_assert_eq!(
                &sharded.occurrences(Path::new(p)).unwrap().collect_sorted(),
                &expected.1
            );
        }
    }

    /// Persistence lifecycle under random corpora: save → open roundtrips
    /// every answer (the targeted corruption cases live in
    /// `cinct::store`'s unit tests).
    #[test]
    fn save_open_roundtrips_randomized((trajs, n_edges) in corpus_strategy(), stamp in any::<u64>()) {
        let sharded = ShardedBuilder::new()
            .shards(3)
            .locate_sampling(4)
            .build(&trajs, n_edges);
        let dir = std::env::temp_dir().join(format!(
            "cinct-prop-{}-{stamp:x}",
            std::process::id()
        ));
        sharded.save_dir(&dir).expect("save");
        let back = cinct::ShardedCinct::open_dir(&dir).expect("open");
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(back.num_shards(), sharded.num_shards());
        for g in 0..sharded.num_trajectories() {
            prop_assert_eq!(back.trajectory(g), sharded.trajectory(g));
        }
        for p in probe_paths(&trajs, n_edges) {
            prop_assert_eq!(back.count(Path::new(&p)), sharded.count(Path::new(&p)));
            prop_assert_eq!(
                back.occurrences(Path::new(&p)).unwrap().collect_sorted(),
                sharded.occurrences(Path::new(&p)).unwrap().collect_sorted()
            );
        }
    }
}
