//! Whole-index persistence: save a built CiNCT index to bytes (or disk),
//! reload it, and verify every query path behaves identically — plus the
//! typed-error contract for corrupt and truncated streams.

use cinct::{CinctBuilder, CinctIndex, Path, PathQuery, QueryError};

fn roundtrip(idx: &CinctIndex) -> CinctIndex {
    let mut buf = Vec::new();
    idx.write_to(&mut buf).expect("serialize");
    let mut cur = std::io::Cursor::new(&buf);
    let back = CinctIndex::read_from(&mut cur).expect("deserialize");
    assert_eq!(cur.position() as usize, buf.len(), "trailing bytes");
    back
}

#[test]
fn paper_example_roundtrip() {
    let trajs = vec![vec![0u32, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
    let idx = CinctIndex::build(&trajs, 6);
    let back = roundtrip(&idx);
    assert_eq!(back.text_len(), idx.text_len());
    assert_eq!(back.num_trajectories(), 4);
    for a in 0..6u32 {
        for b in 0..6u32 {
            assert_eq!(back.path_range(&[a, b]), idx.path_range(&[a, b]));
        }
    }
    for id in 0..4 {
        assert_eq!(back.trajectory(id), idx.trajectory(id));
    }
    assert_eq!(back.core_size_in_bytes(), idx.core_size_in_bytes());
}

#[test]
fn dataset_roundtrip_with_locate() {
    let ds = cinct_datasets::roma(0.02);
    let idx = CinctBuilder::new()
        .locate_sampling(16)
        .block_size(31)
        .build(&ds.trajectories, ds.n_edges());
    let back = roundtrip(&idx);
    assert_eq!(back.locate_sampling_rate(), Some(16));
    // Queries, extraction and occurrence listing agree after the roundtrip.
    for t in ds.trajectories.iter().take(20) {
        let path = Path::new(&t[..4.min(t.len())]);
        assert_eq!(back.range(path), idx.range(path));
        assert_eq!(
            back.occurrences(path).expect("locate").collect_sorted(),
            idx.occurrences(path).expect("locate").collect_sorted()
        );
    }
    for j in (0..idx.text_len()).step_by(997) {
        assert_eq!(back.extract(j, 5), idx.extract(j, 5));
        assert_eq!(back.locate(j), idx.locate(j));
    }
}

#[test]
fn file_roundtrip() {
    let trajs = vec![vec![2u32, 3, 4], vec![3, 4, 5], vec![2, 3]];
    let idx = CinctIndex::build(&trajs, 8);
    let path = std::env::temp_dir().join("cinct_persist_test.idx");
    {
        let mut f = std::fs::File::create(&path).expect("create");
        idx.write_to(&mut f).expect("write");
    }
    let mut f = std::fs::File::open(&path).expect("open");
    let back = CinctIndex::read_from(&mut f).expect("read");
    assert_eq!(back.count_path(&[3, 4]), 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn rejects_garbage_with_corrupt_index() {
    let mut cur = std::io::Cursor::new(vec![0u8; 64]);
    assert_eq!(
        CinctIndex::read_from(&mut cur).err(),
        Some(QueryError::CorruptIndex(
            "not a CiNCT index (bad magic)".into()
        ))
    );
}

#[test]
fn truncated_stream_is_an_io_error() {
    let trajs = vec![vec![0u32, 1], vec![1, 0]];
    let idx = CinctIndex::build(&trajs, 2);
    let mut buf = Vec::new();
    idx.write_to(&mut buf).unwrap();
    // Every truncation point must fail loudly with a typed error — never
    // panic, never hand back a half-built index.
    for cut in [1usize, 4, 8, buf.len() / 2, buf.len() - 1] {
        let mut short = buf.clone();
        short.truncate(cut);
        match CinctIndex::read_from(&mut std::io::Cursor::new(short)) {
            Err(QueryError::Io(msg)) => {
                assert!(msg.contains("UnexpectedEof"), "cut at {cut}: {msg}")
            }
            Err(QueryError::CorruptIndex(_)) => {} // structurally invalid prefix
            other => panic!("cut at {cut}: expected typed error, got {other:?}"),
        }
    }
}
