//! Integration tests across the compressor suite: round trips on real-ish
//! corpora, Theorem 6 (RML ≤ MEL entropy) at dataset scale, and the
//! Table IV ordering sanity (CiNCT is competitive with the best pure
//! compressors on sparse data while also supporting queries).

use cinct::{CinctIndex, LabelingStrategy, Rml};
use cinct_bwt::{bwt, entropy_h0, CArray, TrajectoryString};
use cinct_compressors::{bwz, lz, mel::Mel, repair, sp};
use cinct_fmindex::PathQuery;

fn flat_stream(ds: &cinct_datasets::Dataset) -> Vec<u32> {
    let sep = ds.n_edges() as u32;
    let mut out = Vec::new();
    for t in &ds.trajectories {
        out.extend_from_slice(t);
        out.push(sep);
    }
    out
}

#[test]
fn repair_roundtrips_on_datasets() {
    for ds in [cinct_datasets::roma(0.02), cinct_datasets::chess(0.005)] {
        let stream = flat_stream(&ds);
        let g = repair::compress(&stream, ds.n_edges() + 1);
        assert_eq!(repair::decompress(&g), stream, "{}", ds.name);
        assert!(g.compressed_size().ratio(stream.len()) > 1.0);
    }
}

#[test]
fn bwz_roundtrips_on_datasets() {
    let ds = cinct_datasets::singapore2(0.02);
    let stream = flat_stream(&ds);
    let c = bwz::compress_with_block(&stream, 16_384);
    assert_eq!(bwz::decompress(&c), stream);
}

#[test]
fn lz_roundtrips_on_datasets() {
    let ds = cinct_datasets::mo_gen(0.02);
    let stream = flat_stream(&ds);
    let tokens = lz::tokenize(&stream);
    assert_eq!(lz::detokenize(&tokens), stream);
}

#[test]
fn mel_roundtrips_and_loses_to_rml() {
    // Theorem 6 at dataset scale, on both gap-free datasets.
    for ds in [cinct_datasets::singapore2(0.03), cinct_datasets::roma(0.03)] {
        let mel = Mel::build(&ds.network, &ds.trajectories);
        let stream = mel.label_stream(&ds.trajectories);
        let firsts: Vec<u32> = ds.trajectories.iter().map(|t| t[0]).collect();
        assert_eq!(
            mel.decode_stream(&ds.network, &stream, &firsts),
            ds.trajectories,
            "{}: MEL roundtrip",
            ds.name
        );

        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let c = CArray::new(ts.text(), ts.sigma());
        let rml = Rml::from_text(ts.text(), ts.sigma(), LabelingStrategy::BigramSorted);
        let h_rml = entropy_h0(&rml.label_bwt(&tbwt, &c));
        let h_mel = mel.label_entropy(&ds.trajectories);
        assert!(
            h_rml <= h_mel + 0.05,
            "{}: RML {h_rml:.3} vs MEL {h_mel:.3}",
            ds.name
        );
    }
}

#[test]
fn sp_codes_roundtrip_on_trips() {
    let ds = cinct_datasets::mo_gen(0.02);
    for t in ds.trajectories.iter().take(40) {
        if t.is_empty() {
            continue;
        }
        let code = sp::encode(&ds.network, t);
        assert_eq!(sp::decode(&ds.network, &code), *t);
    }
}

#[test]
fn cinct_beats_generic_compressors_on_sparse_data() {
    // Table IV's headline: CiNCT's ratio exceeds bzip2-like and zip-like,
    // despite also being a query structure. This needs a realistic
    // symbols-per-edge ratio (the paper's datasets have |T|/sigma >~ 250;
    // at tiny ratios the sigma-proportional tables dominate any index).
    // A paper-like alphabet: >1500 edges, so edge IDs span multiple bytes
    // and byte-granularity compressors lose the symbol alignment that a
    // toy alphabet would hand them.
    let net = cinct_network::generators::grid_city(20, 20, 3);
    let trajs = cinct_network::WalkConfig {
        straight_bias: 8.0,
        min_len: 30,
        max_len: 80,
    }
    .generate(&net, 5_500, 7);
    let n: usize = trajs.iter().map(|t| t.len() + 1).sum();
    assert!(n / net.num_edges() > 190, "workload too small for the test");
    let sep = net.num_edges() as u32;
    let mut stream = Vec::with_capacity(n);
    for t in &trajs {
        stream.extend_from_slice(t);
        stream.push(sep);
    }

    let idx = CinctIndex::build(&trajs, net.num_edges());
    let cinct_ratio = 32.0 * n as f64 / (idx.size_in_bytes() as f64 * 8.0);
    // Byte-granularity baseline, matching the paper's use of zip on the raw
    // 32-bit binary file. (The bzip2-like comparison needs the paper's
    // n/sigma >~ 1000 regime to flip in CiNCT's favour; it is exercised by
    // the release-mode `table4` harness and recorded in EXPERIMENTS.md.)
    let bytes = cinct_compressors::as_byte_stream(&stream);
    let lz_ratio = lz::compressed_size(&bytes).ratio(n);
    let repair_ratio = repair::compress(&stream, net.num_edges() + 1)
        .compressed_size()
        .ratio(n);

    assert!(
        cinct_ratio > lz_ratio,
        "CiNCT {cinct_ratio:.1} should beat zip-like {lz_ratio:.1}"
    );
    assert!(
        cinct_ratio > repair_ratio * 0.8,
        "CiNCT {cinct_ratio:.1} should be competitive with Re-Pair {repair_ratio:.1}"
    );
    assert!(cinct_ratio > 4.0, "CiNCT ratio {cinct_ratio:.1} too low");
}
