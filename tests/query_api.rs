//! The unified-query-API contract: every backend — CiNCT plus the five
//! Table-II baseline FM-indexes — answers the same queries identically
//! through the single `PathQuery` trait, behind `&dyn` dispatch, with the
//! same typed-error taxonomy. The temporal index rides the same trait.

use cinct::engine::{Query, QueryEngine, QueryValue};
use cinct::{CinctBuilder, CinctIndex, Path, PathQuery, QueryError};
use cinct_bwt::TrajectoryString;
use cinct_fmindex::{ExtractIter, FmApHyb, FmGmr, IcbHuff, IcbWm, Ufmi};

fn corpus() -> (Vec<Vec<u32>>, usize) {
    // Deterministic pseudo-random trajectories over a sparse ET-graph.
    let n_edges = 40u32;
    let mut trajs = Vec::new();
    let mut x = 0x1234_5678_9abc_def0u64;
    for k in 0..60 {
        let mut t = vec![k % n_edges];
        for _ in 0..(3 + k % 14) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let prev = *t.last().unwrap();
            let succ = [
                (prev * 5 + 1) % n_edges,
                (prev * 5 + 2) % n_edges,
                (prev * 5 + 4) % n_edges,
            ];
            t.push(succ[((x >> 33) % 3) as usize]);
        }
        trajs.push(t);
    }
    (trajs, n_edges as usize)
}

/// All six paper backends behind the one trait.
fn all_backends(trajs: &[Vec<u32>], n_edges: usize) -> Vec<(&'static str, Box<dyn PathQuery>)> {
    let ts = TrajectoryString::build(trajs, n_edges);
    vec![
        (
            "CiNCT",
            Box::new(CinctIndex::build(trajs, n_edges)) as Box<dyn PathQuery>,
        ),
        ("UFMI", Box::new(Ufmi::from_text(ts.text(), ts.sigma()))),
        ("ICB-WM", Box::new(IcbWm::from_text(ts.text(), ts.sigma()))),
        (
            "ICB-Huff",
            Box::new(IcbHuff::from_text(ts.text(), ts.sigma())),
        ),
        ("FM-GMR", Box::new(FmGmr::from_text(ts.text(), ts.sigma()))),
        (
            "FM-AP-HYB",
            Box::new(FmApHyb::from_text(ts.text(), ts.sigma())),
        ),
    ]
}

fn probe_paths(trajs: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut probes = Vec::new();
    for t in trajs.iter().step_by(7) {
        for len in [1usize, 2, 4] {
            if t.len() >= len {
                probes.push(t[..len].to_vec());
                probes.push(t[t.len() - len..].to_vec());
            }
        }
    }
    probes.push(vec![0, 0, 0, 0]); // almost surely absent
    probes
}

fn brute_count(trajs: &[Vec<u32>], path: &[u32]) -> usize {
    trajs
        .iter()
        .map(|t| t.windows(path.len()).filter(|w| *w == path).count())
        .sum()
}

#[test]
fn six_backends_one_trait() {
    let (trajs, n_edges) = corpus();
    let backends = all_backends(&trajs, n_edges);
    let reference = &backends[0].1;
    for path in probe_paths(&trajs) {
        let p = Path::new(&path);
        let expected = brute_count(&trajs, &path);
        let ref_range = reference.range(p);
        for (name, b) in &backends {
            assert_eq!(b.count(p), expected, "{name} count, path {path:?}");
            assert_eq!(b.range(p), ref_range, "{name} range, path {path:?}");
        }
    }
    // Extraction agrees across backends at arbitrary rows/lengths, via the
    // streaming iterator over `&dyn PathQuery`.
    let n = reference.text_len();
    for j in (0..n).step_by(97) {
        let expected = ExtractIter::new(reference.as_ref(), j, 6).collect_forward();
        for (name, b) in &backends[1..] {
            assert_eq!(
                ExtractIter::new(b.as_ref(), j, 6).collect_forward(),
                expected,
                "{name} extract at row {j}"
            );
        }
    }
}

#[test]
fn error_taxonomy_is_uniform_across_backends() {
    let (trajs, n_edges) = corpus();
    for (name, b) in all_backends(&trajs, n_edges) {
        assert_eq!(
            b.try_range(Path::new(&[])).err(),
            Some(QueryError::EmptyPattern),
            "{name}"
        );
        assert_eq!(
            b.try_range(Path::new(&[0, 40, 1])).err(),
            Some(QueryError::UnknownEdge {
                edge: 40,
                n_edges: 40
            }),
            "{name}"
        );
        // Malformed beats unsupported: validation errors come first.
        assert_eq!(
            b.occurrences(Path::new(&[99])).err(),
            Some(QueryError::UnknownEdge {
                edge: 99,
                n_edges: 40
            }),
            "{name}"
        );
        // None of the baselines carry SA samples; CiNCT built without
        // locate_sampling doesn't either.
        assert_eq!(
            b.occurrences(Path::new(&[0, 1])).err(),
            Some(QueryError::LocateUnsupported),
            "{name}"
        );
    }
}

#[test]
fn engine_batches_agree_across_backends() {
    let (trajs, n_edges) = corpus();
    let batch: Vec<Query> = probe_paths(&trajs)
        .iter()
        .map(|p| Query::count(p))
        .collect();
    let backends = all_backends(&trajs, n_edges);
    let reference = QueryEngine::new(backends[0].1.as_ref()).run(&batch);
    assert_eq!(reference.errors(), 0);
    for (name, b) in &backends[1..] {
        let report = QueryEngine::new(b.as_ref()).run(&batch);
        assert_eq!(report.total_matches(), reference.total_matches(), "{name}");
        assert_eq!(report.hits(), reference.hits(), "{name}");
        for (i, (a, r)) in report.outcomes.iter().zip(&reference.outcomes).enumerate() {
            assert_eq!(a.value, r.value, "{name} query {i}");
        }
    }
}

#[test]
fn occurrence_streaming_is_lazy() {
    let (trajs, n_edges) = corpus();
    let idx = CinctBuilder::new()
        .locate_sampling(4)
        .build(&trajs, n_edges);
    // A single-edge path with many matches.
    let path = trajs
        .iter()
        .flat_map(|t| t.iter().copied())
        .map(|e| vec![e])
        .max_by_key(|p| idx.count(Path::new(p)))
        .unwrap();
    let total = idx.count(Path::new(&path));
    assert!(total >= 10, "corpus should repeat some edge; got {total}");
    // Partial consumption: the iterator resolves only what is pulled.
    let mut it = idx.occurrences(Path::new(&path)).unwrap();
    assert_eq!(it.remaining(), total);
    let first_three: Vec<(usize, usize)> = it.by_ref().take(3).collect();
    assert_eq!(first_three.len(), 3);
    assert_eq!(it.remaining(), total - 3);
    // Draining the rest plus the prefix equals the eager legacy answer.
    #[allow(deprecated)]
    let legacy = idx.locate_path(&path).unwrap();
    let mut all = first_three;
    all.extend(it);
    all.sort_unstable();
    assert_eq!(all, legacy);
    // Every occurrence is a real match.
    for &(t, off) in &all {
        assert_eq!(trajs[t][off..off + path.len()], path[..]);
    }
}

#[test]
fn temporal_index_is_a_backend_too() {
    let (trajs, n_edges) = corpus();
    let data: Vec<cinct::TimestampedTrajectory> = trajs
        .iter()
        .map(|edges| cinct::TimestampedTrajectory {
            times: (0..edges.len() as u64).map(|i| 100 + i * 30).collect(),
            edges: edges.clone(),
        })
        .collect();
    let temporal = cinct::TemporalCinct::build(&data, n_edges, 8).unwrap();
    let spatial = CinctIndex::build(&trajs, n_edges);
    for path in probe_paths(&trajs).into_iter().take(10) {
        let p = Path::new(&path);
        assert_eq!(temporal.count(p), spatial.count(p), "path {path:?}");
    }
    // And through the engine, occurrences included.
    let report = QueryEngine::new(&temporal).run(&[Query::occurrences(&trajs[0][..2])]);
    assert!(matches!(
        report.outcomes[0].value,
        Ok(QueryValue::Occurrences(ref v)) if !v.is_empty()
    ));
}
