//! Strict path queries (the paper's §VII application): spatio-temporal
//! retrieval — *"which vehicles traveled along path P entirely within time
//! window [t0, t1]?"* — using the temporal extension that pairs CiNCT with
//! delta-compressed timestamps (the SNT-index-style hybrid the paper
//! points at).
//!
//! Run: `cargo run --release --example strict_path`

use cinct::{StrictPathQuery, TemporalCinct, TimestampedTrajectory};

use cinct_network::WalkConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A small road network + walks, each step taking 20-60 seconds.
    let net = cinct_network::generators::grid_city(16, 16, 5);
    let walks = WalkConfig {
        straight_bias: 6.0,
        min_len: 15,
        max_len: 50,
    }
    .generate(&net, 800, 9);

    let mut rng = StdRng::seed_from_u64(77);
    let day_start = 6 * 3600u64; // 06:00
    let data: Vec<TimestampedTrajectory> = walks
        .into_iter()
        .map(|edges| {
            let mut t = day_start + rng.gen_range(0..12 * 3600);
            let times: Vec<u64> = edges
                .iter()
                .map(|_| {
                    let cur = t;
                    t += rng.gen_range(20..60);
                    cur
                })
                .collect();
            TimestampedTrajectory { edges, times }
        })
        .collect();

    let n_steps: usize = data.iter().map(|t| t.edges.len()).sum();
    let index = TemporalCinct::build(&data, net.num_edges(), 32).expect("valid input");
    println!(
        "Indexed {} timestamped trajectories ({} steps) in {} bytes ({:.2} bits/step incl. timestamps)\n",
        data.len(),
        n_steps,
        index.size_in_bytes(),
        index.size_in_bytes() as f64 * 8.0 / n_steps as f64
    );

    // Pick a query path observed in the data.
    let probe = &data[3];
    let path = probe.edges[2..6].to_vec();

    // All-day query vs morning-rush window. Queries stream their matches
    // (`strict_path_iter`); the eager variant collects and sorts them.
    let all_day = index
        .strict_path(&StrictPathQuery {
            path: path.clone(),
            t_begin: 0,
            t_end: u64::MAX,
        })
        .expect("well-formed query");
    let rush = index
        .strict_path(&StrictPathQuery {
            path: path.clone(),
            t_begin: 7 * 3600,
            t_end: 9 * 3600,
        })
        .expect("well-formed query");
    println!("Path {path:?}:");
    println!("  traveled {} times over the whole day", all_day.len());
    println!("  {} of those within 07:00-09:00", rush.len());
    for m in rush.iter().take(5) {
        println!(
            "    trajectory {} enters at {:02}:{:02}, leaves segment {} at {:02}:{:02}",
            m.trajectory,
            m.t_enter / 3600,
            (m.t_enter % 3600) / 60,
            path.last().unwrap(),
            m.t_exit / 3600,
            (m.t_exit % 3600) / 60,
        );
    }

    // Brute-force verification over the whole corpus.
    let mut expected = 0usize;
    for t in &data {
        for off in 0..t.edges.len().saturating_sub(path.len() - 1) {
            if t.edges[off..off + path.len()] == path[..]
                && t.times[off] >= 7 * 3600
                && t.times[off + path.len() - 1] <= 9 * 3600
            {
                expected += 1;
            }
        }
    }
    assert_eq!(rush.len(), expected);
    println!("\nBrute-force check passed ({expected} matches).");
}
