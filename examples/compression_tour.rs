//! Compression tour: run every spatial-path compressor in the workspace
//! over one corpus and compare ratios and capabilities — a miniature,
//! self-contained version of the paper's Table IV.
//!
//! Run: `cargo run --release --example compression_tour`

use cinct::CinctIndex;
use cinct_compressors::{bwz, lz, mel::Mel, repair, sp};
use cinct_fmindex::PathQuery;

fn main() {
    let ds = cinct_datasets::roma(0.15);
    let n: usize = ds.trajectories.iter().map(|t| t.len() + 1).sum();
    println!(
        "Corpus: Roma-like, {} trajectories, {} symbols (raw: {} KiB as 32-bit ints)\n",
        ds.trajectories.len(),
        n,
        n * 4 / 1024
    );

    // Flat integer stream for the generic compressors.
    let sep = ds.n_edges() as u32;
    let mut stream = Vec::with_capacity(n);
    for t in &ds.trajectories {
        stream.extend_from_slice(t);
        stream.push(sep);
    }

    println!(
        "{:<22} {:>8} {:>10} {:>18}",
        "Method", "ratio", "KiB", "supports queries?"
    );
    println!("{}", "-".repeat(62));

    // CiNCT: compression AND sublinear pattern matching.
    let idx = CinctIndex::build(&ds.trajectories, ds.n_edges());
    let cinct_bits = idx.size_in_bytes() as u64 * 8;
    print_row("CiNCT (this paper)", n, cinct_bits, "yes (suffix range)");

    // MEL + Huffman.
    let mel = Mel::build(&ds.network, &ds.trajectories);
    let mel_size = mel.compressed_size(&ds.network, &ds.trajectories);
    print_row("MEL + Huffman", n, mel_size.total_bits(), "no");

    // Re-Pair.
    let g = repair::compress(&stream, ds.n_edges() + 1);
    assert_eq!(repair::decompress(&g), stream, "Re-Pair roundtrip");
    print_row("Re-Pair", n, g.compressed_size().total_bits(), "no");

    // bzip2-like, at byte granularity like the real tool.
    let bytes = cinct_compressors::as_byte_stream(&stream);
    let bz = bwz::compress(&bytes);
    assert_eq!(bwz::decompress(&bz), bytes, "bwz roundtrip");
    print_row(
        "bzip2-like (BWT+MTF)",
        n,
        bz.compressed_size().total_bits(),
        "no",
    );

    // PRESS-like shortest-path coding.
    let sp_size = sp::compressed_size(&ds.network, &ds.trajectories);
    print_row("PRESS-like (SP code)", n, sp_size.total_bits(), "no");

    // zip-like LZ77, at byte granularity.
    let lz_size = lz::compressed_size(&bytes);
    print_row("zip-like (LZ77)", n, lz_size.total_bits(), "no");

    // And the punchline: the compressed index still answers queries.
    let path = &ds.trajectories[0][..3];
    println!(
        "\nCiNCT can still count path {:?} without decompressing: {} travelers",
        path,
        idx.count_path(path)
    );
}

fn print_row(name: &str, n_symbols: usize, bits: u64, queries: &str) {
    let ratio = 32.0 * n_symbols as f64 / bits as f64;
    println!(
        "{:<22} {:>8.1} {:>10.1} {:>18}",
        name,
        ratio,
        bits as f64 / 8.0 / 1024.0,
        queries
    );
}
