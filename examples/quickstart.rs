//! Quickstart: build a CiNCT index over a handful of trajectories and run
//! the three core queries through the unified `PathQuery` API — counting
//! (suffix range), streaming occurrence listing, and sub-path extraction —
//! plus a batch through the `QueryEngine`.
//!
//! Run: `cargo run --release --example quickstart`

use cinct::engine::{Query, QueryEngine};
use cinct::{CinctBuilder, Path, PathQuery, QueryError};

fn main() {
    // The paper's running example (Fig. 1): a toy network with six road
    // segments A..F, here numbered 0..6, and four vehicle trajectories.
    let trajectories = vec![
        vec![0, 1, 4, 5], // A → B → E → F
        vec![0, 1, 2],    // A → B → C
        vec![1, 2],       // B → C
        vec![0, 3],       // A → D
    ];
    let n_road_segments = 6;

    // `locate_sampling` adds the sampled suffix array that occurrence
    // listing needs; `build` alone gives a smaller count-only index.
    let index = CinctBuilder::new()
        .locate_sampling(4)
        .build(&trajectories, n_road_segments);

    println!(
        "Indexed {} trajectories over {} road segments",
        index.num_trajectories(),
        index.network_edges()
    );
    println!(
        "Index size: {} bytes ({:.2} bits/symbol)\n",
        index.size_in_bytes(),
        index.bits_per_symbol()
    );

    // Pattern matching: which trajectories travel the path A → B?
    let path = Path::new(&[0, 1]);
    let range = index.range(path).expect("path occurs");
    println!(
        "Path A->B: suffix range {range:?}, {} travelers",
        range.len()
    );
    assert_eq!(range, 9..11); // matches the paper's Fig. 2 worked example

    // Counting other paths. An absent path is a zero count, not an error.
    for (label, path) in [
        ("B->C", vec![1, 2]),
        ("A->B->E->F", vec![0, 1, 4, 5]),
        ("D->A (never driven)", vec![3, 0]),
    ] {
        println!("Path {label}: {} travelers", index.count(Path::new(&path)));
    }

    // Occurrence listing streams (trajectory, offset) pairs lazily off
    // sampled-suffix-array walks — no intermediate Vec.
    let occurrences = index.occurrences(path).expect("built with locate");
    println!("\nWho travels A->B, and where in their trip?");
    for (trajectory, offset) in occurrences {
        println!("  trajectory {trajectory} @ edge offset {offset}");
    }

    // Malformed queries are typed errors — distinct from absent paths.
    assert_eq!(
        index.occurrences(Path::new(&[99])).err(),
        Some(QueryError::UnknownEdge {
            edge: 99,
            n_edges: 6
        })
    );

    // Decompression: recover stored trajectories from the index alone.
    println!();
    for id in 0..index.num_trajectories() {
        println!("trajectory {id}: {:?}", index.trajectory(id));
    }

    // Batches of heterogeneous queries run through the engine, which works
    // over any backend (CiNCT or the five baseline FM-indexes) and reports
    // per-query results plus timing.
    let engine = QueryEngine::new(&index);
    let report = engine.run(&[
        Query::count(&[0, 1]),
        Query::occurrences(&[1, 2]),
        Query::range(&[0, 3]),
    ]);
    println!(
        "\nEngine batch: {} queries, {} hits, {} matches, {:.1} us/query",
        report.outcomes.len(),
        report.hits(),
        report.total_matches(),
        report.mean_us()
    );
}
