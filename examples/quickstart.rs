//! Quickstart: build a CiNCT index over a handful of trajectories and run
//! the two core queries — path counting (suffix range) and sub-path
//! extraction.
//!
//! Run: `cargo run --release --example quickstart`

use cinct::CinctIndex;
use cinct_fmindex::PatternIndex;

fn main() {
    // The paper's running example (Fig. 1): a toy network with six road
    // segments A..F, here numbered 0..6, and four vehicle trajectories.
    let trajectories = vec![
        vec![0, 1, 4, 5], // A → B → E → F
        vec![0, 1, 2],    // A → B → C
        vec![1, 2],       // B → C
        vec![0, 3],       // A → D
    ];
    let n_road_segments = 6;

    let index = CinctIndex::build(&trajectories, n_road_segments);

    println!("Indexed {} trajectories over {} road segments",
        index.num_trajectories(), index.network_edges());
    println!("Index size: {} bytes ({:.2} bits/symbol)\n",
        index.size_in_bytes(), index.bits_per_symbol());

    // Pattern matching: which trajectories travel the path A → B?
    let path = vec![0, 1];
    let range = index.path_range(&path).expect("path occurs");
    println!("Path A->B: suffix range {range:?}, {} travelers", range.len());
    assert_eq!(range, 9..11); // matches the paper's Fig. 2 worked example

    // Counting other paths.
    for (label, path) in [
        ("B->C", vec![1, 2]),
        ("A->B->E->F", vec![0, 1, 4, 5]),
        ("D->A (never driven)", vec![3, 0]),
    ] {
        println!("Path {label}: {} travelers", index.count_path(&path));
    }

    // Decompression: recover stored trajectories from the index alone.
    println!();
    for id in 0..index.num_trajectories() {
        println!("trajectory {id}: {:?}", index.trajectory(id));
    }
}
