//! Fleet analytics: index a city-scale synthetic taxi corpus and answer the
//! questions the paper's introduction motivates — corridor usage counts,
//! popular-route discovery, and on-the-fly trajectory recovery — all from
//! the compressed index.
//!
//! Run: `cargo run --release --example fleet_analytics`

use cinct::{CinctBuilder, DatasetStats};
use cinct_bwt::TrajectoryString;
use cinct_fmindex::{Path, PathQuery};
use std::time::Instant;

fn main() {
    // A Singapore-2-like corpus: gap-free taxi trajectories on a grid city.
    let ds = cinct_datasets::singapore2(0.2);
    let n_symbols: usize = ds.trajectories.iter().map(Vec::len).sum();
    println!(
        "Corpus: {} trajectories, {} edge traversals, {} road segments",
        ds.trajectories.len(),
        n_symbols,
        ds.n_edges()
    );

    // Dataset profile (the paper's Table III columns).
    let stats = DatasetStats::compute("fleet", &ds.trajectories, ds.n_edges());
    println!(
        "Entropy: H0(T) = {:.2} bits, after RML H0(phi) = {:.2} bits  (x{:.1} reduction)\n",
        stats.h0,
        stats.h0_labeled,
        stats.h0 / stats.h0_labeled
    );

    // Build the index (with locate support for occurrence reporting).
    let t0 = Instant::now();
    let index = CinctBuilder::new()
        .locate_sampling(32)
        .build(&ds.trajectories, ds.n_edges());
    println!(
        "Built CiNCT in {:.2}s: {:.2} bits/symbol (raw 32-bit storage: 32 bits/symbol)",
        t0.elapsed().as_secs_f64(),
        index.bits_per_symbol()
    );

    // Corridor usage: how many vehicles traverse each 3-edge corridor
    // around a centrally located segment?
    let probe = ds.trajectories[0][1];
    let followups = ds.network.successors(probe);
    println!("\nCorridor usage downstream of segment {probe}:");
    for &next in followups.iter().take(4) {
        let count = index.count_path(&[probe, next]);
        println!("  {probe} -> {next}: {count} vehicles");
    }

    // Popular-route discovery: the most traveled 6-edge sub-path among a
    // sample of candidates taken from the data.
    let t0 = Instant::now();
    let mut best: (usize, Vec<u32>) = (0, Vec::new());
    let mut probed = 0usize;
    for t in ds.trajectories.iter().take(400) {
        for w in t.windows(6).step_by(3) {
            probed += 1;
            let c = index.count_path(w);
            if c > best.0 {
                best = (c, w.to_vec());
            }
        }
    }
    println!(
        "\nScanned {probed} candidate routes in {:.1} ms; most popular 6-edge route:",
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!("  {:?} with {} travelers", best.1, best.0);

    // Who exactly drives it? (streaming locate + trajectory recovery)
    if let Ok(occ) = index.occurrences(Path::new(&best.1)) {
        // The iterator is lazy: taking 5 walks only 5 sampled-SA chains.
        let occurrences: Vec<(usize, usize)> = occ.take(5).collect();
        println!(
            "  first {} occurrences (trajectory, offset): {occurrences:?}",
            occurrences.len()
        );
        if let Some(&(tid, _)) = occurrences.first() {
            let full = index.trajectory(tid);
            println!(
                "  trajectory {tid} recovered from the index: {} edges, starts {:?}...",
                full.len(),
                &full[..full.len().min(8)]
            );
            assert_eq!(full, ds.trajectories[tid]);
        }
    }

    // Sanity: suffix ranges agree with a brute-force scan on a few paths.
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    println!(
        "\nVerification: |T| = {} symbols indexed, queries agree with scans.",
        ts.len()
    );
    for t in ds.trajectories.iter().take(3) {
        let path = &t[..4.min(t.len())];
        let expected: usize = ds
            .trajectories
            .iter()
            .map(|u| u.windows(path.len()).filter(|w| *w == path).count())
            .sum();
        assert_eq!(index.count_path(path), expected);
    }
    println!("OK");
}
