//! Fleet analytics: index a city-scale synthetic taxi corpus and answer the
//! questions the paper's introduction motivates — corridor usage counts,
//! popular-route discovery, and on-the-fly trajectory recovery — all from
//! the compressed index, driven through the batch [`QueryEngine`].
//!
//! Because every engine call is instrumented, the run ends by printing the
//! process metrics snapshot: the same Prometheus text `cinct stats
//! --metrics` exposes, populated by the analytics that just ran.
//!
//! Run: `cargo run --release --example fleet_analytics`

use cinct::{CinctBuilder, DatasetStats, Query, QueryEngine, QueryValue};
use cinct_bwt::TrajectoryString;
use cinct_fmindex::{Path, PathQuery};
use std::time::Instant;

fn main() {
    // A Singapore-2-like corpus: gap-free taxi trajectories on a grid city.
    let ds = cinct_datasets::singapore2(0.2);
    let n_symbols: usize = ds.trajectories.iter().map(Vec::len).sum();
    println!(
        "Corpus: {} trajectories, {} edge traversals, {} road segments",
        ds.trajectories.len(),
        n_symbols,
        ds.n_edges()
    );

    // Dataset profile (the paper's Table III columns).
    let stats = DatasetStats::compute("fleet", &ds.trajectories, ds.n_edges());
    println!(
        "Entropy: H0(T) = {:.2} bits, after RML H0(phi) = {:.2} bits  (x{:.1} reduction)\n",
        stats.h0,
        stats.h0_labeled,
        stats.h0 / stats.h0_labeled
    );

    // Build the index (with locate support for occurrence reporting).
    let t0 = Instant::now();
    let index = CinctBuilder::new()
        .locate_sampling(32)
        .build(&ds.trajectories, ds.n_edges());
    println!(
        "Built CiNCT in {:.2}s: {:.2} bits/symbol (raw 32-bit storage: 32 bits/symbol)",
        t0.elapsed().as_secs_f64(),
        index.bits_per_symbol()
    );

    // All analytics below go through the batch engine; thread count 0 =
    // auto-size to the host.
    let engine = QueryEngine::new(&index).parallel(0);

    // Corridor usage: how many vehicles traverse each 2-edge corridor
    // around a centrally located segment? One count query per corridor.
    let probe = ds.trajectories[0][1];
    let corridors: Vec<Vec<u32>> = ds
        .network
        .successors(probe)
        .iter()
        .take(4)
        .map(|&next| vec![probe, next])
        .collect();
    let batch: Vec<Query> = corridors.iter().map(|c| Query::count(c)).collect();
    let report = engine.run(&batch);
    println!("\nCorridor usage downstream of segment {probe}:");
    for (corridor, outcome) in corridors.iter().zip(&report.outcomes) {
        if let Ok(v) = &outcome.value {
            println!(
                "  {} -> {}: {} vehicles",
                corridor[0],
                corridor[1],
                v.matches()
            );
        }
    }

    // Popular-route discovery: the most traveled 6-edge sub-path among a
    // sample of candidates taken from the data — one big count batch,
    // fanned across threads by the engine.
    let candidates: Vec<Vec<u32>> = ds
        .trajectories
        .iter()
        .take(400)
        .flat_map(|t| t.windows(6).step_by(3).map(<[u32]>::to_vec))
        .collect();
    let batch: Vec<Query> = candidates.iter().map(|c| Query::count(c)).collect();
    let t0 = Instant::now();
    let report = engine.run(&batch);
    let (best_count, best_route) = candidates
        .iter()
        .zip(&report.outcomes)
        .filter_map(|(c, o)| o.value.as_ref().ok().map(|v| (v.matches(), c)))
        .max_by_key(|&(n, _)| n)
        .expect("non-empty candidate batch");
    println!(
        "\nScanned {} candidate routes in {:.1} ms ({} threads, {:.1} us/query); \
         most popular 6-edge route:",
        candidates.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        engine.effective_threads(),
        report.mean_us()
    );
    println!("  {best_route:?} with {best_count} travelers");

    // Who exactly drives it? (locate + trajectory recovery)
    let outcome = engine.run_one(&Query::occurrences(best_route));
    if let Ok(QueryValue::Occurrences(occurrences)) = outcome.value {
        println!(
            "  first {} occurrences (trajectory, offset): {:?}",
            occurrences.len().min(5),
            &occurrences[..occurrences.len().min(5)]
        );
        if let Some(&(tid, _)) = occurrences.first() {
            let full = index.trajectory(tid);
            println!(
                "  trajectory {tid} recovered from the index: {} edges, starts {:?}...",
                full.len(),
                &full[..full.len().min(8)]
            );
            assert_eq!(full, ds.trajectories[tid]);
        }
    }

    // Sanity: engine counts agree with a brute-force scan on a few paths.
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    println!(
        "\nVerification: |T| = {} symbols indexed, queries agree with scans.",
        ts.len()
    );
    for t in ds.trajectories.iter().take(3) {
        let path = &t[..4.min(t.len())];
        let expected: usize = ds
            .trajectories
            .iter()
            .map(|u| u.windows(path.len()).filter(|w| *w == path).count())
            .sum();
        let got = engine.run_one(&Query::count(path));
        assert_eq!(got.value.expect("valid path").matches(), expected);
        assert_eq!(index.count(Path::new(path)), expected);
    }
    println!("OK");

    // Everything above was recorded by the instrumentation layer; this is
    // the snapshot `cinct stats --metrics` would serve.
    println!("\n--- metrics snapshot (Prometheus text) ---");
    cinct::metrics::register_all();
    print!("{}", cinct_obs::global().render_prometheus());
}
