//! Fleet analytics: index a city-scale synthetic taxi corpus and answer the
//! questions the paper's introduction motivates — corridor usage counts,
//! popular-route discovery, and on-the-fly trajectory recovery — all from
//! the compressed index, driven through the batch [`QueryEngine`].
//!
//! Because every engine call is instrumented, the run ends by printing the
//! process metrics snapshot: the same Prometheus text `cinct stats
//! --metrics` exposes, populated by the analytics that just ran.
//!
//! Run: `cargo run --release --example fleet_analytics`
//!
//! With `--serve`, the corridor analytics are additionally replayed
//! through a live `cinct_serve` HTTP server over a sharded build of the
//! same corpus — one batched `/v1/count` request, run twice to show the
//! epoch-checked hot-pattern cache — and the serving metrics join the
//! final snapshot. Run:
//! `cargo run --release --example fleet_analytics -- --serve`

use cinct::{CinctBuilder, DatasetStats, Query, QueryEngine, QueryValue};
use cinct_bwt::TrajectoryString;
use cinct_fmindex::{Path, PathQuery};
use std::time::Instant;

fn main() {
    // A Singapore-2-like corpus: gap-free taxi trajectories on a grid city.
    let ds = cinct_datasets::singapore2(0.2);
    let n_symbols: usize = ds.trajectories.iter().map(Vec::len).sum();
    println!(
        "Corpus: {} trajectories, {} edge traversals, {} road segments",
        ds.trajectories.len(),
        n_symbols,
        ds.n_edges()
    );

    // Dataset profile (the paper's Table III columns).
    let stats = DatasetStats::compute("fleet", &ds.trajectories, ds.n_edges());
    println!(
        "Entropy: H0(T) = {:.2} bits, after RML H0(phi) = {:.2} bits  (x{:.1} reduction)\n",
        stats.h0,
        stats.h0_labeled,
        stats.h0 / stats.h0_labeled
    );

    // Build the index (with locate support for occurrence reporting).
    let t0 = Instant::now();
    let index = CinctBuilder::new()
        .locate_sampling(32)
        .build(&ds.trajectories, ds.n_edges());
    println!(
        "Built CiNCT in {:.2}s: {:.2} bits/symbol (raw 32-bit storage: 32 bits/symbol)",
        t0.elapsed().as_secs_f64(),
        index.bits_per_symbol()
    );

    // All analytics below go through the batch engine; thread count 0 =
    // auto-size to the host.
    let engine = QueryEngine::new(&index).parallel(0);

    // Corridor usage: how many vehicles traverse each 2-edge corridor
    // around a centrally located segment? One count query per corridor.
    let probe = ds.trajectories[0][1];
    let corridors: Vec<Vec<u32>> = ds
        .network
        .successors(probe)
        .iter()
        .take(4)
        .map(|&next| vec![probe, next])
        .collect();
    let batch: Vec<Query> = corridors.iter().map(|c| Query::count(c)).collect();
    let report = engine.run(&batch);
    let corridor_counts: Vec<usize> = report
        .outcomes
        .iter()
        .map(|o| o.value.as_ref().map(QueryValue::matches).unwrap_or(0))
        .collect();
    println!("\nCorridor usage downstream of segment {probe}:");
    for (corridor, count) in corridors.iter().zip(&corridor_counts) {
        println!("  {} -> {}: {count} vehicles", corridor[0], corridor[1]);
    }

    // Popular-route discovery: the most traveled 6-edge sub-path among a
    // sample of candidates taken from the data — one big count batch,
    // fanned across threads by the engine.
    let candidates: Vec<Vec<u32>> = ds
        .trajectories
        .iter()
        .take(400)
        .flat_map(|t| t.windows(6).step_by(3).map(<[u32]>::to_vec))
        .collect();
    let batch: Vec<Query> = candidates.iter().map(|c| Query::count(c)).collect();
    let t0 = Instant::now();
    let report = engine.run(&batch);
    let (best_count, best_route) = candidates
        .iter()
        .zip(&report.outcomes)
        .filter_map(|(c, o)| o.value.as_ref().ok().map(|v| (v.matches(), c)))
        .max_by_key(|&(n, _)| n)
        .expect("non-empty candidate batch");
    println!(
        "\nScanned {} candidate routes in {:.1} ms ({} threads, {:.1} us/query); \
         most popular 6-edge route:",
        candidates.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        engine.effective_threads(),
        report.mean_us()
    );
    println!("  {best_route:?} with {best_count} travelers");

    // Who exactly drives it? (locate + trajectory recovery)
    let outcome = engine.run_one(&Query::occurrences(best_route));
    if let Ok(QueryValue::Occurrences(occurrences)) = outcome.value {
        println!(
            "  first {} occurrences (trajectory, offset): {:?}",
            occurrences.len().min(5),
            &occurrences[..occurrences.len().min(5)]
        );
        if let Some(&(tid, _)) = occurrences.first() {
            let full = index.trajectory(tid);
            println!(
                "  trajectory {tid} recovered from the index: {} edges, starts {:?}...",
                full.len(),
                &full[..full.len().min(8)]
            );
            assert_eq!(full, ds.trajectories[tid]);
        }
    }

    // Sanity: engine counts agree with a brute-force scan on a few paths.
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    println!(
        "\nVerification: |T| = {} symbols indexed, queries agree with scans.",
        ts.len()
    );
    for t in ds.trajectories.iter().take(3) {
        let path = &t[..4.min(t.len())];
        let expected: usize = ds
            .trajectories
            .iter()
            .map(|u| u.windows(path.len()).filter(|w| *w == path).count())
            .sum();
        let got = engine.run_one(&Query::count(path));
        assert_eq!(got.value.expect("valid path").matches(), expected);
        assert_eq!(index.count(Path::new(path)), expected);
    }
    println!("OK");

    // Optionally replay the corridor analytics over HTTP against a live
    // serving process; its request/cache counters then show up in the
    // snapshot below alongside the engine's.
    if std::env::args().any(|a| a == "--serve") {
        serve_corridors(&ds, &corridors, &corridor_counts);
    }

    // Everything above was recorded by the instrumentation layer; this is
    // the snapshot `cinct stats --metrics` would serve.
    println!("\n--- metrics snapshot (Prometheus text) ---");
    cinct::metrics::register_all();
    cinct_serve::metrics::register_all();
    print!("{}", cinct_obs::global().render_prometheus());
}

/// `--serve`: stand up a real `cinct_serve` server on a loopback
/// ephemeral port over a sharded build of the corpus, push the corridor
/// batch through `/v1/count` twice — cold, then cache-hot — and compare
/// the wire answers and the server-side vs client-side clocks.
fn serve_corridors(ds: &cinct_datasets::Dataset, corridors: &[Vec<u32>], direct: &[usize]) {
    use cinct_serve::json::{obj, Json};
    use cinct_serve::{Client, ServeConfig, Server};

    let sharded = cinct::ShardedBuilder::new()
        .shards(2)
        .index_builder(cinct::CinctBuilder::new().locate_sampling(32))
        .threads(0)
        .build(&ds.trajectories, ds.n_edges());
    let server = Server::bind("127.0.0.1:0", sharded, ServeConfig::default()).expect("bind");
    let handle = server.handle();
    let addr = handle.addr();
    let srv = std::thread::spawn(move || server.run());
    // The listener is live before `bind` returns; connect and go.
    let mut client = Client::connect(addr).expect("connect to own server");
    println!(
        "\nServing the corpus on http://{addr} ({} workers):",
        handle.config().workers
    );

    let body = obj(&[(
        "paths",
        Json::Arr(corridors.iter().map(|c| Json::from(c.clone())).collect()),
    )]);
    for pass in ["cold", "cache-hot"] {
        let t0 = Instant::now();
        let (status, resp) = client.post_json("/v1/count", &body).expect("batched count");
        let client_us = t0.elapsed().as_secs_f64() * 1e6;
        assert_eq!(status, 200, "count failed: {}", resp.render());
        let counts: Vec<usize> = resp
            .get("counts")
            .and_then(Json::as_arr)
            .expect("counts array")
            .iter()
            .map(|n| n.as_usize().expect("count"))
            .collect();
        assert_eq!(counts, direct, "served corridor counts != engine counts");
        let server_us = resp.get("elapsed_ns").and_then(Json::as_usize).unwrap_or(0) as f64 / 1e3;
        let hits = resp.get("cache_hits").and_then(Json::as_usize).unwrap_or(0);
        println!(
            "  {pass}: {} corridors in {client_us:.0} us end-to-end \
             ({server_us:.0} us server-side, {hits} cache hits) — counts match the engine",
            counts.len()
        );
    }

    let (status, _) = client.post("/admin/shutdown", "{}").expect("shutdown");
    assert_eq!(status, 200, "shutdown");
    srv.join().expect("server thread").expect("clean drain");
    println!("  drained cleanly");
}
