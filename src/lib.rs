//! Umbrella crate for the CiNCT reproduction.
//!
//! Re-exports every workspace crate under one roof so the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`) have a
//! single dependency. Library users should depend on the individual crates:
//!
//! * [`cinct`] — the CiNCT index itself (RML + PseudoRank over an HWT/RRR).
//! * [`cinct_fmindex`] — the baseline FM-index family (UFMI, ICB-WM,
//!   ICB-Huff, FM-GMR, FM-AP-HYB).
//! * [`cinct_succinct`] — bit vectors, RRR, wavelet trees/matrices.
//! * [`cinct_bwt`] — SA-IS, BWT, trajectory strings, empirical entropy.
//! * [`cinct_network`] — road-network models and trajectory generators.
//! * [`cinct_compressors`] — MEL, Re-Pair, bzip2-like, zip-like, PRESS-like.
//! * [`cinct_datasets`] — deterministic emulations of the paper's datasets.

pub use cinct;
pub use cinct_bwt;
pub use cinct_compressors;
pub use cinct_datasets;
pub use cinct_fmindex;
pub use cinct_network;
pub use cinct_succinct;
