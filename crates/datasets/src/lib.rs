#![warn(missing_docs)]
//! Deterministic emulations of the CiNCT paper's evaluation datasets
//! (§VI-A4, Table III).
//!
//! The originals (Singapore/Roma taxi NCTs, Brinkhoff MO-gen output, FICS
//! chess records) are not redistributable, so each is substituted by a
//! seeded generator tuned to reproduce the statistics that drive the
//! paper's results: alphabet size σ, ET-graph average out-degree d̄, and
//! the labeled-BWT entropy `H0(φ(T_bwt))`. See `DESIGN.md` §3 for the
//! substitution rationale.
//!
//! All generators take a `scale` factor: `scale = 1.0` produces workloads
//! of a few hundred thousand to a few million symbols (laptop-friendly);
//! larger scales approach the paper's sizes.

use cinct_network::generators::{grid_city, layered_dag, poisson_digraph, ring_radial_city};
use cinct_network::travel::{interpolate_gaps, GapNoise, TripGenerator, WalkConfig};
use cinct_network::RoadNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: the network and its trajectories.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset label (paper's name).
    pub name: &'static str,
    /// The road network (or transition DAG) the trajectories live on.
    pub network: RoadNetwork,
    /// Trajectories as edge-ID sequences.
    pub trajectories: Vec<Vec<u32>>,
}

impl Dataset {
    /// Total symbols across trajectories (≈ |T| minus separators).
    pub fn total_symbols(&self) -> usize {
        self.trajectories.iter().map(Vec::len).sum()
    }

    /// Alphabet size (network edges).
    pub fn n_edges(&self) -> usize {
        self.network.num_edges()
    }
}

/// Trajectory count scaled, with a floor to keep statistics meaningful.
fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(50)
}

/// **Singapore**: noisy taxi NCTs. Map-matching artifacts leave ~4% of
/// transitions physically disconnected, inflating the ET-graph out-degree
/// (paper: d̄ = 26.8 vs 4.0 after cleaning).
pub fn singapore(scale: f64) -> Dataset {
    let net = grid_city(36, 36, 0x516);
    let cfg = WalkConfig {
        straight_bias: 5.0,
        min_len: 20,
        max_len: 120,
    };
    let mut trajs = cfg.generate(&net, scaled(18_000, scale), 101);
    GapNoise { gap_prob: 0.12 }.apply(&net, &mut trajs, 102);
    Dataset {
        name: "Singapore",
        network: net,
        trajectories: trajs,
    }
}

/// **Singapore-2**: the same data with gapped transitions interpolated by
/// shortest paths (the paper's preprocessing that grows |T| 53M → 75M and
/// collapses d̄ to 4.0).
pub fn singapore2(scale: f64) -> Dataset {
    let base = singapore(scale);
    let trajs = interpolate_gaps(&base.network, &base.trajectories);
    Dataset {
        name: "Singapore-2",
        network: base.network,
        trajectories: trajs,
    }
}

/// **Roma**: HMM-map-matched taxi GPS on a sparse ring-radial network;
/// strongly straight-biased driving → very low entropy (paper H0(φ)=0.9,
/// d̄ = 2.4).
pub fn roma(scale: f64) -> Dataset {
    let net = ring_radial_city(18, 48, 7);
    let cfg = WalkConfig {
        straight_bias: 24.0,
        min_len: 15,
        max_len: 90,
    };
    let trajs = cfg.generate(&net, scaled(20_000, scale), 201);
    Dataset {
        name: "Roma",
        network: net,
        trajectories: trajs,
    }
}

/// **MO-gen**: Brinkhoff-style moving objects traveling shortest paths
/// between random origin/destination pairs (paper H0(φ)=2.8, d̄=8.8 —
/// the most entropic of the real-ish datasets).
pub fn mo_gen(scale: f64) -> Dataset {
    let net = grid_city(32, 32, 11);
    let gen = TripGenerator {
        min_edges: 10,
        max_attempts: 8,
    };
    // Half purposeful trips, half near-uniform wandering (Brinkhoff objects
    // re-route and idle-cruise): together they reach the paper's H0(φ)≈2.8,
    // the most entropic of the real-ish datasets.
    let mut trajs = gen.generate(&net, scaled(6_000, scale), 301);
    let wander = WalkConfig {
        straight_bias: 1.0,
        min_len: 20,
        max_len: 80,
    };
    trajs.extend(wander.generate(&net, scaled(6_000, scale), 302));
    // Interleave deterministically so corpus order doesn't separate modes.
    let mut rng = StdRng::seed_from_u64(303);
    for i in (1..trajs.len()).rev() {
        let j = rng.gen_range(0..=i);
        trajs.swap(i, j);
    }
    Dataset {
        name: "MO-gen",
        network: net,
        trajectories: trajs,
    }
}

/// **Chess**: opening prefixes (10 plies) over a sparse game DAG with a
/// huge alphabet and d̄ ≈ 1.6 (each position has few popular continuations).
pub fn chess(scale: f64) -> Dataset {
    let net = layered_dag(10, 2_000, 10, 13);
    let mut rng = StdRng::seed_from_u64(401);
    let n_games = scaled(100_000, scale);
    let mut trajs = Vec::with_capacity(n_games);
    for _ in 0..n_games {
        // A game follows out-edges from the start node, preferring the
        // first (most popular) continuation — Zipf-like opening theory.
        let mut cur = {
            let first = net.out_edges(0);
            first[zipf_pick(&mut rng, first.len())]
        };
        let mut game = vec![cur];
        loop {
            let succ = net.successors(cur);
            if succ.is_empty() {
                break;
            }
            cur = succ[zipf_pick(&mut rng, succ.len())];
            game.push(cur);
        }
        trajs.push(game);
    }
    Dataset {
        name: "Chess",
        network: net,
        trajectories: trajs,
    }
}

/// Zipf(1) pick over `0..k`.
fn zipf_pick(rng: &mut StdRng, k: usize) -> usize {
    debug_assert!(k >= 1);
    let harmonic: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
    let mut u = rng.gen::<f64>() * harmonic;
    for i in 0..k {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    k - 1
}

/// **RandWalk** (Figs. 12–13): uniform random walks on a Poisson random
/// digraph with `n_edges` segments and average out-degree `d`; `walk_len`
/// edges per trajectory, enough trajectories to reach `total_symbols`.
pub fn randwalk(n_edges: usize, d: f64, total_symbols: usize, seed: u64) -> Dataset {
    let net = poisson_digraph(n_edges, d, seed);
    let walk_len = 50usize;
    let n_walks = (total_symbols / walk_len).max(10);
    let cfg = WalkConfig {
        straight_bias: 1.0, // uniform successor choice
        min_len: walk_len,
        max_len: walk_len,
    };
    let trajs = cfg.generate(&net, n_walks, seed ^ 0xABCD);
    Dataset {
        name: "RandWalk",
        network: net,
        trajectories: trajs,
    }
}

/// The paper's five evaluation datasets at the given scale.
pub fn all_table_datasets(scale: f64) -> Vec<Dataset> {
    vec![
        singapore(scale),
        singapore2(scale),
        roma(scale),
        mo_gen(scale),
        chess(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_network::travel::is_connected_path;

    #[test]
    fn singapore_has_gaps_singapore2_does_not() {
        let sg = singapore(0.05);
        let broken = sg
            .trajectories
            .iter()
            .filter(|t| !is_connected_path(&sg.network, t))
            .count();
        assert!(broken > 0, "Singapore should contain gapped transitions");
        let sg2 = singapore2(0.05);
        for t in &sg2.trajectories {
            assert!(is_connected_path(&sg2.network, t));
        }
        // Interpolation grows the corpus (53M → 75M in the paper).
        assert!(sg2.total_symbols() > sg.total_symbols());
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = roma(0.05);
        let b = roma(0.05);
        assert_eq!(a.trajectories, b.trajectories);
    }

    #[test]
    fn chess_paths_follow_the_dag() {
        let ds = chess(0.02);
        for t in ds.trajectories.iter().take(100) {
            assert!(is_connected_path(&ds.network, t));
            assert_eq!(t.len(), 10); // 10 plies
        }
    }

    #[test]
    fn randwalk_respects_parameters() {
        let ds = randwalk(4096, 4.0, 50_000, 3);
        assert_eq!(ds.n_edges(), 4096);
        let sym = ds.total_symbols();
        assert!((45_000..=55_000).contains(&sym), "{sym}");
        for t in ds.trajectories.iter().take(50) {
            assert!(is_connected_path(&ds.network, t));
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = roma(0.02);
        let large = roma(0.08);
        assert!(large.total_symbols() > small.total_symbols() * 2);
    }

    #[test]
    fn all_five_present() {
        let all = all_table_datasets(0.01);
        let names: Vec<&str> = all.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["Singapore", "Singapore-2", "Roma", "MO-gen", "Chess"]
        );
        for d in &all {
            assert!(!d.trajectories.is_empty(), "{} is empty", d.name);
        }
    }
}
