//! A bzip2-like block compressor: BWT → move-to-front → zero run-length
//! encoding → Huffman. Table IV's "bzip2" row analogue, built entirely on
//! this workspace's own substrates (SA-IS BWT, Huffman).
//!
//! Works on integer sequences over any alphabet (bzip2 itself is byte
//! oriented; the pipeline is identical).

use crate::CompressedSize;
use cinct_bwt::{bwt, inverse_bwt};
use cinct_succinct::HuffmanCode;

/// Default block size in symbols (bzip2 uses 900 kB byte blocks).
pub const DEFAULT_BLOCK: usize = 900_000;

/// One compressed block.
#[derive(Clone, Debug)]
pub struct BwzBlock {
    /// RLE0-coded MTF stream (see [`rle0_encode`] for the token scheme).
    tokens: Vec<u32>,
    /// Symbols in first-seen order for the MTF alphabet (dense remap).
    alphabet: Vec<u32>,
    /// Original (pre-BWT) block length.
    len: usize,
}

/// A compressed sequence: blocks + coding metadata.
#[derive(Clone, Debug)]
pub struct Bwz {
    blocks: Vec<BwzBlock>,
}

/// Move-to-front transform over a dense alphabet `0..sigma`.
fn mtf_encode(seq: &[u32], sigma: usize) -> Vec<u32> {
    let mut table: Vec<u32> = (0..sigma as u32).collect();
    seq.iter()
        .map(|&s| {
            let pos = table.iter().position(|&t| t == s).expect("dense symbol") as u32;
            let v = table.remove(pos as usize);
            table.insert(0, v);
            pos
        })
        .collect()
}

fn mtf_decode(codes: &[u32], sigma: usize) -> Vec<u32> {
    let mut table: Vec<u32> = (0..sigma as u32).collect();
    codes
        .iter()
        .map(|&p| {
            let v = table.remove(p as usize);
            table.insert(0, v);
            v
        })
        .collect()
}

/// RLE0: a run of `k` zeros becomes tokens over {RUNA=0, RUNB=1} via the
/// bijective base-2 coding bzip2 uses; nonzero values `v` are shifted to
/// `v + 1`.
fn rle0_encode(mtf: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(mtf.len());
    let mut zero_run = 0u64;
    let flush = |run: &mut u64, out: &mut Vec<u32>| {
        let mut k = *run;
        while k > 0 {
            // bijective base 2: digits in {1, 2} encoded as RUNA/RUNB
            let d = if k % 2 == 1 { 0u32 } else { 1u32 };
            out.push(d);
            k = (k - if d == 0 { 1 } else { 2 }) / 2;
        }
        *run = 0;
    };
    for &c in mtf {
        if c == 0 {
            zero_run += 1;
        } else {
            flush(&mut zero_run, &mut out);
            out.push(c + 1);
        }
    }
    flush(&mut zero_run, &mut out);
    out
}

fn rle0_decode(tokens: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i] <= 1 {
            // Collect a maximal RUNA/RUNB group.
            let mut k: u64 = 0;
            let mut place: u64 = 1;
            while i < tokens.len() && tokens[i] <= 1 {
                k += place * if tokens[i] == 0 { 1 } else { 2 };
                place *= 2;
                i += 1;
            }
            out.extend(std::iter::repeat(0u32).take(k as usize));
        } else {
            out.push(tokens[i] - 1);
            i += 1;
        }
    }
    out
}

/// Compress with the given block size.
pub fn compress_with_block(input: &[u32], block: usize) -> Bwz {
    let mut blocks = Vec::new();
    for chunk in input.chunks(block.max(2)) {
        // Dense remap (first-seen order) so BWT alphabets stay small.
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut alphabet: Vec<u32> = Vec::new();
        let dense: Vec<u32> = chunk
            .iter()
            .map(|&s| {
                *remap.entry(s).or_insert_with(|| {
                    alphabet.push(s);
                    alphabet.len() as u32 - 1
                })
            })
            .collect();
        // Shift +1 and append sentinel 0 for the BWT.
        let mut text: Vec<u32> = dense.iter().map(|&d| d + 1).collect();
        text.push(0);
        let sigma = alphabet.len() + 1;
        let (_, tbwt) = bwt(&text, sigma);
        let mtf = mtf_encode(&tbwt, sigma);
        let tokens = rle0_encode(&mtf);
        blocks.push(BwzBlock {
            tokens,
            alphabet,
            len: chunk.len(),
        });
    }
    Bwz { blocks }
}

/// Compress with [`DEFAULT_BLOCK`].
pub fn compress(input: &[u32]) -> Bwz {
    compress_with_block(input, DEFAULT_BLOCK)
}

/// Invert the whole pipeline.
pub fn decompress(bwz: &Bwz) -> Vec<u32> {
    let mut out = Vec::new();
    for b in &bwz.blocks {
        let sigma = b.alphabet.len() + 1;
        let mtf = rle0_decode(&b.tokens);
        let tbwt = mtf_decode(&mtf, sigma);
        let text = inverse_bwt(&tbwt, sigma);
        debug_assert_eq!(text.len(), b.len + 1);
        out.extend(text[..b.len].iter().map(|&d| b.alphabet[(d - 1) as usize]));
    }
    out
}

impl Bwz {
    /// Huffman-coded token size plus per-block alphabet tables.
    pub fn compressed_size(&self) -> CompressedSize {
        let mut payload = 0u64;
        let mut model = 0u64;
        for b in &self.blocks {
            if b.tokens.is_empty() {
                continue;
            }
            let sigma = b.tokens.iter().copied().max().unwrap() as usize + 1;
            let mut freqs = vec![0u64; sigma];
            for &t in &b.tokens {
                freqs[t as usize] += 1;
            }
            let code = HuffmanCode::from_freqs(&freqs);
            payload += code.encoded_bits(&freqs);
            model += code.model_bits() + b.alphabet.len() as u64 * 32;
        }
        CompressedSize {
            payload_bits: payload,
            model_bits: model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtf_roundtrip() {
        let seq = vec![3u32, 3, 3, 1, 0, 0, 2, 3, 1, 1];
        let codes = mtf_encode(&seq, 4);
        assert_eq!(mtf_decode(&codes, 4), seq);
        // Repeats become zeros.
        assert_eq!(codes[1], 0);
        assert_eq!(codes[2], 0);
    }

    #[test]
    fn rle0_roundtrip_various_runs() {
        for run in [0usize, 1, 2, 3, 4, 7, 8, 100] {
            let mut seq = vec![5u32];
            seq.extend(std::iter::repeat(0u32).take(run));
            seq.push(7);
            seq.extend(std::iter::repeat(0u32).take(run * 2 + 1));
            let enc = rle0_encode(&seq);
            assert_eq!(rle0_decode(&enc), seq, "run={run}");
        }
    }

    #[test]
    fn full_roundtrip() {
        let mut x = 11u64;
        let input: Vec<u32> = (0..5000)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if i % 7 < 4 {
                    (i % 9) as u32 * 1000 // structured, repetitive
                } else {
                    ((x >> 33) as u32) % 50
                }
            })
            .collect();
        let c = compress_with_block(&input, 1024); // multiple blocks
        assert_eq!(c.blocks.len(), 5);
        assert_eq!(decompress(&c), input);
    }

    #[test]
    fn compresses_repetitive_trajectories() {
        let motif: Vec<u32> = (100..130).collect();
        let mut input = Vec::new();
        for _ in 0..300 {
            input.extend_from_slice(&motif);
        }
        let c = compress(&input);
        assert_eq!(decompress(&c), input);
        let ratio = c.compressed_size().ratio(input.len());
        assert!(ratio > 10.0, "bwz ratio {ratio}");
    }

    #[test]
    fn empty_and_tiny() {
        for input in [vec![], vec![9u32], vec![9u32, 9]] {
            let c = compress(&input);
            assert_eq!(decompress(&c), input);
        }
    }
}
