//! A zip-like LZ77 compressor over integer sequences: hash-chain match
//! finding within a sliding window, then Huffman coding of the
//! literal/length/distance token stream. Table IV's "zip" row analogue.

use crate::CompressedSize;
use cinct_succinct::HuffmanCode;
use std::collections::HashMap;

/// Sliding window size (like DEFLATE's 32 KiB, in symbols).
pub const WINDOW: usize = 32 * 1024;
/// Minimum match length worth emitting (DEFLATE uses 3).
pub const MIN_MATCH: usize = 3;
/// Maximum match length per token.
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A single symbol.
    Literal(u32),
    /// Copy `len` symbols from `dist` positions back.
    Match {
        /// Copy length (≥ [`MIN_MATCH`]).
        len: u32,
        /// Backwards distance (≥ 1).
        dist: u32,
    },
}

/// LZ77-parse the input with hash chains (greedy, like gzip level ~4).
pub fn tokenize(input: &[u32]) -> Vec<Token> {
    let n = input.len();
    let mut tokens = Vec::new();
    // Chains keyed by the 3-gram at each position.
    let mut head: HashMap<(u32, u32, u32), u32> = HashMap::new();
    let mut chain: Vec<u32> = vec![u32::MAX; n];
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let key = (input[i], input[i + 1], input[i + 2]);
            let mut cand = head.get(&key).copied().unwrap_or(u32::MAX);
            let mut probes = 0;
            while cand != u32::MAX && probes < 32 {
                let c = cand as usize;
                if i - c > WINDOW {
                    break;
                }
                // Extend the match.
                let mut l = 0usize;
                let max_l = MAX_MATCH.min(n - i);
                while l < max_l && input[c + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l == max_l {
                        break;
                    }
                }
                cand = chain[c];
                probes += 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u32,
                dist: best_dist as u32,
            });
            // Insert hash entries for every covered position.
            for k in i..(i + best_len).min(n.saturating_sub(MIN_MATCH - 1)) {
                if k + MIN_MATCH <= n {
                    let key = (input[k], input[k + 1], input[k + 2]);
                    chain[k] = head.insert(key, k as u32).unwrap_or(u32::MAX);
                }
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(input[i]));
            if i + MIN_MATCH <= n {
                let key = (input[i], input[i + 1], input[i + 2]);
                chain[i] = head.insert(key, i as u32).unwrap_or(u32::MAX);
            }
            i += 1;
        }
    }
    tokens
}

/// Expand tokens back to the input.
pub fn detokenize(tokens: &[Token]) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(s) => out.push(s),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    out.push(out[start + k]); // may overlap, like DEFLATE
                }
            }
        }
    }
    out
}

/// Compress and account bits: literals/length-class symbols share one
/// Huffman code (as in DEFLATE); distances get `log2` bucket codes plus raw
/// extra bits.
pub fn compressed_size(input: &[u32]) -> CompressedSize {
    let tokens = tokenize(input);
    if tokens.is_empty() {
        return CompressedSize::default();
    }
    // Stream 1: literal symbols (dense-remapped) and length classes.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut lit_stream: Vec<u32> = Vec::new();
    let mut extra_bits = 0u64;
    const LEN_CLASS_BASE: u32 = 1 << 30;
    for &t in &tokens {
        match t {
            Token::Literal(s) => {
                let next = remap.len() as u32;
                lit_stream.push(*remap.entry(s).or_insert(next));
            }
            Token::Match { len, dist } => {
                let len_class = 32 - (len.max(1)).leading_zeros();
                lit_stream.push(LEN_CLASS_BASE + len_class);
                extra_bits += len_class.saturating_sub(1) as u64; // len residual
                let dist_class = 32 - (dist.max(1)).leading_zeros();
                extra_bits += 5 + dist_class.saturating_sub(1) as u64; // class + residual
            }
        }
    }
    // Dense remap of the combined stream for the Huffman table.
    let mut remap2: HashMap<u32, u32> = HashMap::new();
    let dense: Vec<u32> = lit_stream
        .iter()
        .map(|&s| {
            let next = remap2.len() as u32;
            *remap2.entry(s).or_insert(next)
        })
        .collect();
    let mut freqs = vec![0u64; remap2.len()];
    for &d in &dense {
        freqs[d as usize] += 1;
    }
    let code = HuffmanCode::from_freqs(&freqs);
    CompressedSize {
        payload_bits: code.encoded_bits(&freqs) + extra_bits,
        model_bits: code.model_bits() + remap.len() as u64 * 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_repetitive() {
        let motif: Vec<u32> = (0..40).collect();
        let mut input = Vec::new();
        for _ in 0..100 {
            input.extend_from_slice(&motif);
        }
        let tokens = tokenize(&input);
        assert!(tokens.len() < input.len() / 5, "{} tokens", tokens.len());
        assert_eq!(detokenize(&tokens), input);
    }

    #[test]
    fn roundtrip_random() {
        let mut x = 5u64;
        let input: Vec<u32> = (0..3000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % 30
            })
            .collect();
        let tokens = tokenize(&input);
        assert_eq!(detokenize(&tokens), input);
    }

    #[test]
    fn overlapping_match() {
        // "aaaaa..." forces dist=1 overlapping copies.
        let input = vec![7u32; 100];
        let tokens = tokenize(&input);
        assert_eq!(detokenize(&tokens), input);
        assert!(matches!(tokens[1], Token::Match { dist: 1, .. }));
    }

    #[test]
    fn tiny_inputs() {
        for input in [vec![], vec![1u32], vec![1u32, 2], vec![1u32, 1, 1]] {
            let tokens = tokenize(&input);
            assert_eq!(detokenize(&tokens), input);
        }
    }

    #[test]
    fn size_beats_raw_on_redundant_data() {
        let motif: Vec<u32> = (0..25).collect();
        let mut input = Vec::new();
        for _ in 0..200 {
            input.extend_from_slice(&motif);
        }
        let ratio = compressed_size(&input).ratio(input.len());
        assert!(ratio > 8.0, "lz ratio {ratio}");
    }

    #[test]
    fn size_reasonable_on_random_data() {
        let mut x = 5u64;
        let input: Vec<u32> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % 1000
            })
            .collect();
        // ~10 bits entropy: lz shouldn't blow up beyond raw 32-bit size.
        let ratio = compressed_size(&input).ratio(input.len());
        assert!(ratio > 1.5, "lz ratio {ratio}");
    }
}
