#![warn(missing_docs)]
//! Baseline compressors for the paper's Table IV comparison.
//!
//! All are lossless spatial-path compressors over sequences of edge IDs;
//! each reports a compressed size in **bits** (payload + model) so the
//! harness can compute the paper's compression ratio — uncompressed size
//! (32-bit integers) divided by compressed size.
//!
//! * [`mel`] — Minimum Entropy Labeling (Han et al., TODS'17 \[1\]) +
//!   Huffman, the strongest published NCT compressor before CiNCT.
//! * [`repair`] — Re-Pair grammar compression (Larsson & Moffat \[23\]),
//!   the stringology benchmark.
//! * [`bwz`] — a bzip2-like block compressor (BWT + MTF + RLE0 + Huffman).
//! * [`lz`] — a zip-like LZ77 + Huffman compressor.
//! * [`sp`] — a PRESS-like shortest-path encoder (Song et al., PVLDB'14
//!   \[24\]): maximal shortest-path runs collapse to their endpoints.
//!
//! Every module exposes a round-trippable `compress`/`decompress` pair plus
//! bit-exact size accounting.

pub mod bwz;
pub mod lz;
pub mod mel;
pub mod repair;
pub mod sp;

/// A compression result: payload + model accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompressedSize {
    /// Entropy-coded payload bits.
    pub payload_bits: u64,
    /// Model/dictionary bits (code tables, grammars, ...).
    pub model_bits: u64,
}

impl CompressedSize {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.payload_bits + self.model_bits
    }

    /// Paper Table IV ratio: `32n / total_bits` for an `n`-symbol input
    /// (the uncompressed representation is a binary file of 32-bit ints).
    pub fn ratio(&self, n_symbols: usize) -> f64 {
        32.0 * n_symbols as f64 / self.total_bits() as f64
    }
}

/// Serialize a `u32` sequence to its little-endian byte stream (each byte
/// as a `u32` symbol over alphabet 256). The paper's bzip2/zip baselines
/// compressed the trajectory file at byte granularity; running our
/// bzip2-like and zip-like pipelines over this stream reproduces that
/// setting instead of giving them an unrealistic whole-symbol alphabet.
pub fn as_byte_stream(stream: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(stream.len() * 4);
    for &s in stream {
        out.extend_from_slice(&[
            s & 0xFF,
            (s >> 8) & 0xFF,
            (s >> 16) & 0xFF,
            (s >> 24) & 0xFF,
        ]);
    }
    out
}
