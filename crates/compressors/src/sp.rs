//! A PRESS-like shortest-path spatial coder (Song et al., PVLDB'14 — the
//! paper's reference \[24\]).
//!
//! PRESS's spatial compression removes sub-paths that coincide with network
//! shortest paths, keeping only the endpoints: a decoder with the same map
//! re-derives the removed edges. We implement the same principle as a
//! greedy window coder:
//!
//! * scan the trajectory, growing a window while the path inside it is
//!   *the* shortest path between its endpoints (verified against a lazily
//!   expanded Dijkstra from the window start);
//! * when the window breaks, emit the endpoint reached so far and restart.
//!
//! The output is the sequence of window-boundary edges, Huffman coded.
//! Decoding replays shortest paths between consecutive boundary edges.
//! Like PRESS, compression is lossless only when shortest paths are unique
//! — our generator networks jitter weights to guarantee that.

use crate::CompressedSize;
use cinct_network::{EdgeId, RoadNetwork};
use cinct_succinct::HuffmanCode;

/// The SP coding of one trajectory: the first edge plus the boundary edges
/// of each maximal shortest-path window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpCode {
    /// Window boundary edges; always starts with the trajectory's first edge.
    pub boundary_edges: Vec<EdgeId>,
}

/// Encode one trajectory.
#[allow(clippy::needless_range_loop)] // `k` is the window-end index, clearer explicit
pub fn encode(net: &RoadNetwork, traj: &[EdgeId]) -> SpCode {
    let mut sp = cinct_network::graph::LazyDijkstra::new(net, net.edge(traj[0]).from);
    encode_with(net, traj, &mut sp)
}

/// Encode with a caller-provided (reusable) lazy-Dijkstra scratch space.
pub fn encode_with(
    net: &RoadNetwork,
    traj: &[EdgeId],
    sp: &mut cinct_network::graph::LazyDijkstra,
) -> SpCode {
    assert!(!traj.is_empty());
    let mut boundary_edges = vec![traj[0]];
    let mut w_start = 0usize; // window start (index into traj)
    while w_start + 1 < traj.len() {
        // Grow the window from traj[w_start] as far as the path stays
        // shortest. Distances are measured from the head of the start edge;
        // the lazy Dijkstra expands its ball only as far as the window's
        // accumulated weight, so short windows stay cheap.
        let origin = net.edge(traj[w_start]).to;
        sp.reset(origin);
        let mut acc = 0.0f64;
        let mut w_end = w_start; // last edge index included in the window
        for (k, &edge_id) in traj.iter().enumerate().skip(w_start + 1) {
            let e = net.edge(edge_id);
            acc += e.weight;
            sp.settle_to(net, acc + 1e-9);
            // The window [w_start..=k] is a shortest path iff the
            // accumulated weight equals the Dijkstra distance to e.to AND
            // the SP tree reaches e.to via traj[k] (unique-SP networks make
            // the weight check sufficient; the parent check guards ties).
            let is_sp = (acc - sp.dist(e.to)).abs() < 1e-9 && sp.parent_edge(e.to) == edge_id;
            if is_sp {
                w_end = k;
            } else {
                break;
            }
        }
        if w_end == w_start {
            // No progress: the very next edge is not on a shortest path
            // (e.g. a detour). Emit it verbatim and move one step.
            boundary_edges.push(traj[w_start + 1]);
            w_start += 1;
        } else {
            boundary_edges.push(traj[w_end]);
            w_start = w_end;
        }
    }
    SpCode { boundary_edges }
}

/// Decode back to the full edge sequence.
pub fn decode(net: &RoadNetwork, code: &SpCode) -> Vec<EdgeId> {
    let mut out = vec![code.boundary_edges[0]];
    for win in code.boundary_edges.windows(2) {
        let (from_e, to_e) = (win[0], win[1]);
        if net.connected(from_e, to_e) || from_e == to_e {
            // Adjacent boundaries (verbatim step) — but they may also be
            // endpoints of a length-1 SP window; both cases append to_e
            // after any SP fill of length 0.
        }
        let from = net.edge(from_e).to;
        let to = net.edge(to_e).from;
        let fill = net
            .shortest_path_edges(from, to)
            .expect("decoder must reach the next boundary");
        out.extend(fill);
        out.push(to_e);
    }
    out
}

/// Encode a corpus and account bits: boundary edges at Huffman-coded
/// symbol cost plus per-trajectory length headers.
pub fn compressed_size(net: &RoadNetwork, trajectories: &[Vec<EdgeId>]) -> CompressedSize {
    let mut scratch = cinct_network::graph::LazyDijkstra::new(net, 0);
    let codes: Vec<SpCode> = trajectories
        .iter()
        .filter(|t| !t.is_empty())
        .map(|t| encode_with(net, t, &mut scratch))
        .collect();
    let stream: Vec<u32> = codes
        .iter()
        .flat_map(|c| c.boundary_edges.iter().copied())
        .collect();
    if stream.is_empty() {
        return CompressedSize::default();
    }
    let sigma = net.num_edges();
    let mut freqs = vec![0u64; sigma];
    for &e in &stream {
        freqs[e as usize] += 1;
    }
    let code = HuffmanCode::from_freqs(&freqs);
    let header_bits = codes.len() as u64 * 16; // boundary-count headers
    CompressedSize {
        payload_bits: code.encoded_bits(&freqs) + header_bits,
        model_bits: code.model_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_network::generators::grid_city;
    use cinct_network::{TripGenerator, WalkConfig};

    #[test]
    fn shortest_path_trips_collapse_to_endpoints() {
        let net = grid_city(10, 10, 3);
        let trips = TripGenerator::default().generate(&net, 30, 7);
        for t in &trips {
            let code = encode(&net, t);
            // A pure shortest-path trip should shrink to very few
            // boundaries (first edge + a couple of windows).
            assert!(
                code.boundary_edges.len() <= 1 + t.len().div_ceil(4),
                "trip len {} → {} boundaries",
                t.len(),
                code.boundary_edges.len()
            );
            assert_eq!(decode(&net, &code), *t, "roundtrip failed");
        }
    }

    #[test]
    fn random_walks_roundtrip() {
        // Walks are not shortest paths; windows will be short but decoding
        // must still be exact.
        let net = grid_city(8, 8, 1);
        let trajs = WalkConfig::default().generate(&net, 60, 11);
        for t in &trajs {
            let code = encode(&net, t);
            assert_eq!(decode(&net, &code), *t);
        }
    }

    #[test]
    fn single_edge_trajectory() {
        let net = grid_city(4, 4, 5);
        let code = encode(&net, &[3]);
        assert_eq!(code.boundary_edges, vec![3]);
        assert_eq!(decode(&net, &code), vec![3]);
    }

    #[test]
    fn compression_ratio_on_trips() {
        let net = grid_city(12, 12, 9);
        let trips = TripGenerator {
            min_edges: 10,
            max_attempts: 8,
        }
        .generate(&net, 100, 13);
        let n: usize = trips.iter().map(Vec::len).sum();
        let ratio = compressed_size(&net, &trips).ratio(n);
        assert!(ratio > 3.0, "SP ratio {ratio}");
    }
}
