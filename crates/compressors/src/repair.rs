//! Re-Pair grammar compression (Larsson & Moffat, DCC'99 — the paper's
//! reference \[23\] and Table IV's stringology benchmark).
//!
//! Repeatedly replaces the most frequent adjacent symbol pair with a fresh
//! nonterminal until no pair occurs twice. Implemented with the classic
//! doubly-linked sequence + pair-occurrence table + frequency bucket queue,
//! giving roughly linear behaviour on our dataset sizes.
//!
//! Size accounting: the final sequence and the rule right-hand sides are
//! charged at `ceil(log2(#symbols + #rules))` bits per entry, plus the
//! entropy-coded option used by `compressed_size` (Huffman over the final
//! sequence, as Re-Pair implementations commonly do).

use crate::CompressedSize;
use cinct_succinct::HuffmanCode;
use std::collections::{BinaryHeap, HashMap};

/// A Re-Pair grammar: rules + compressed sequence.
#[derive(Clone, Debug)]
pub struct RePair {
    /// Rule `i` (nonterminal `first_rule_id + i`) expands to the pair.
    pub rules: Vec<(u32, u32)>,
    /// The compressed top-level sequence.
    pub sequence: Vec<u32>,
    /// Nonterminal IDs start here (= input alphabet size).
    pub first_rule_id: u32,
}

const GAP: u32 = u32::MAX;

/// Run Re-Pair until no pair repeats. `sigma` is the input alphabet size.
///
/// Large inputs use a frequency floor (`max(2, n/50_000)`): pairs rarer
/// than that are not worth a replacement pass (each pass costs a token-list
/// traversal), a standard cap in practical Re-Pair implementations. The
/// grammar stays valid — rare pairs simply remain in the top-level
/// sequence for the entropy coder.
pub fn compress(input: &[u32], sigma: usize) -> RePair {
    compress_with_floor(input, sigma, (input.len() / 50_000).max(2) as i64)
}

/// Re-Pair with an explicit replacement-frequency floor (`>= 2`).
pub fn compress_with_floor(input: &[u32], sigma: usize, min_count: i64) -> RePair {
    let min_count = min_count.max(2);
    let n = input.len();
    let first_rule_id = sigma as u32;
    if n < 2 {
        return RePair {
            rules: Vec::new(),
            sequence: input.to_vec(),
            first_rule_id,
        };
    }
    // Working array with tombstones; prev/next skip links over gaps.
    let mut seq: Vec<u32> = input.to_vec();
    let mut next: Vec<u32> = (1..=n as u32).collect();
    let mut prev: Vec<u32> = (0..n as u32).map(|i| i.wrapping_sub(1)).collect();
    let at = |seq: &Vec<u32>, i: u32| -> Option<u32> {
        if i == GAP || i as usize >= seq.len() {
            None
        } else {
            Some(seq[i as usize])
        }
    };
    // Pair counts plus a lazily-updated max-heap over them: heap entries
    // are (count-at-push, pair) snapshots; stale entries are discarded on
    // pop by re-checking the live table. Keeps each round O(log #pairs)
    // instead of a full table scan.
    let mut counts: HashMap<(u32, u32), i64> = HashMap::new();
    for w in input.windows(2) {
        *counts.entry((w[0], w[1])).or_insert(0) += 1;
    }
    let mut heap: BinaryHeap<(i64, (u32, u32))> = counts.iter().map(|(&p, &c)| (c, p)).collect();
    let mut rules: Vec<(u32, u32)> = Vec::new();

    while let Some((snap, pair)) = heap.pop() {
        let cnt = counts.get(&pair).copied().unwrap_or(0);
        if cnt != snap {
            // Stale snapshot: reinsert at the live count if still viable.
            if cnt >= min_count {
                heap.push((cnt, pair));
            }
            continue;
        }
        if cnt < min_count {
            break;
        }
        let new_sym = first_rule_id + rules.len() as u32;
        rules.push(pair);
        counts.remove(&pair);

        // Replace every occurrence left-to-right.
        let mut i: u32 = 0;
        // Skip leading gap.
        while (i as usize) < n && seq[i as usize] == GAP {
            i += 1;
        }
        while (i as usize) < n {
            let j = next[i as usize];
            let (a, b) = (at(&seq, i), at(&seq, j));
            if a == Some(pair.0) && b == Some(pair.1) {
                // Update neighbour pair counts.
                let p = prev[i as usize];
                let k = if j == GAP || j as usize >= n {
                    GAP
                } else {
                    next[j as usize]
                };
                if let Some(x) = at(&seq, p) {
                    *counts.entry((x, pair.0)).or_insert(0) -= 1;
                    let c = counts.entry((x, new_sym)).or_insert(0);
                    *c += 1;
                    heap.push((*c, (x, new_sym)));
                }
                if let Some(y) = at(&seq, k) {
                    *counts.entry((pair.1, y)).or_insert(0) -= 1;
                    let c = counts.entry((new_sym, y)).or_insert(0);
                    *c += 1;
                    heap.push((*c, (new_sym, y)));
                }
                // Merge: i holds new symbol; j becomes a gap.
                seq[i as usize] = new_sym;
                seq[j as usize] = GAP;
                let k_ok = k != GAP && (k as usize) < n;
                next[i as usize] = if k_ok { k } else { n as u32 };
                if k_ok {
                    prev[k as usize] = i;
                }
                // Advance past the merged token (avoid overlapping aaa case
                // double-merge at the same spot).
                i = next[i as usize];
            } else {
                i = j;
            }
            if i == GAP || i as usize >= n {
                break;
            }
        }
        counts.remove(&pair);
    }

    let sequence: Vec<u32> = seq.into_iter().filter(|&s| s != GAP).collect();
    RePair {
        rules,
        sequence,
        first_rule_id,
    }
}

/// Expand a Re-Pair grammar back to the original sequence.
pub fn decompress(g: &RePair) -> Vec<u32> {
    let mut out = Vec::with_capacity(g.sequence.len() * 2);
    let mut stack: Vec<u32> = Vec::new();
    for &s in &g.sequence {
        stack.push(s);
        while let Some(top) = stack.pop() {
            if top >= g.first_rule_id {
                let (a, b) = g.rules[(top - g.first_rule_id) as usize];
                stack.push(b);
                stack.push(a);
            } else {
                out.push(top);
            }
        }
    }
    out
}

impl RePair {
    /// Size: Huffman-coded final sequence + rules at fixed width + model.
    pub fn compressed_size(&self) -> CompressedSize {
        let total_syms = self.first_rule_id as u64 + self.rules.len() as u64;
        let width = 64 - (total_syms.max(2) - 1).leading_zeros() as u64;
        let model_bits = self.rules.len() as u64 * 2 * width;
        let payload_bits = if self.sequence.is_empty() {
            0
        } else {
            // Huffman over the (remapped) final sequence; remap to a dense
            // alphabet to keep the code table proportional to live symbols.
            let mut remap: HashMap<u32, u32> = HashMap::new();
            let dense: Vec<u32> = self
                .sequence
                .iter()
                .map(|&s| {
                    let next_id = remap.len() as u32;
                    *remap.entry(s).or_insert(next_id)
                })
                .collect();
            let mut freqs = vec![0u64; remap.len()];
            for &d in &dense {
                freqs[d as usize] += 1;
            }
            let code = HuffmanCode::from_freqs(&freqs);
            code.encoded_bits(&freqs) + remap.len() as u64 * (6 + width)
        };
        CompressedSize {
            payload_bits,
            model_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let input = vec![1u32, 2, 1, 2, 1, 2, 3, 1, 2];
        let g = compress(&input, 4);
        assert!(!g.rules.is_empty());
        assert_eq!(decompress(&g), input);
    }

    #[test]
    fn roundtrip_runs() {
        // aaaa... exercises the overlapping-pair rule.
        let input = vec![5u32; 37];
        let g = compress(&input, 6);
        assert_eq!(decompress(&g), input);
        assert!(g.sequence.len() < input.len() / 2);
    }

    #[test]
    fn roundtrip_random() {
        let mut x = 3u64;
        for sigma in [2u32, 5, 40] {
            let input: Vec<u32> = (0..2000)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 33) as u32) % sigma
                })
                .collect();
            let g = compress(&input, sigma as usize);
            assert_eq!(decompress(&g), input, "sigma={sigma}");
        }
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let motif = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let mut input = Vec::new();
        for _ in 0..500 {
            input.extend_from_slice(&motif);
        }
        let g = compress(&input, 9);
        assert_eq!(decompress(&g), input);
        let size = g.compressed_size();
        assert!(
            size.ratio(input.len()) > 20.0,
            "ratio {}",
            size.ratio(input.len())
        );
    }

    #[test]
    fn tiny_inputs() {
        for input in [vec![], vec![7u32], vec![7u32, 8]] {
            let g = compress(&input, 9);
            assert_eq!(decompress(&g), input);
        }
    }

    #[test]
    fn no_repeated_pair_means_no_rules() {
        let input = vec![1u32, 2, 3, 4, 5];
        let g = compress(&input, 6);
        assert!(g.rules.is_empty());
        assert_eq!(g.sequence, input);
    }
}
