//! Minimum Entropy Labeling (MEL) + Huffman (Han et al., TODS'17 — the
//! paper's reference \[1\], compared against in §V-D, Table IV and Table V).
//!
//! MEL relabels each road segment `w` with a small integer `ψ(w)`: segments
//! sharing a **head node** form a group, and within each group labels
//! `1..k` are assigned in descending *unigram* frequency. Unlike RML, the
//! label does not depend on the previous segment — the comparison of
//! Fig. 9. `ψ` is invertible given the previous segment's head node, so
//! MEL-coded trajectories decode losslessly along the network.

use crate::CompressedSize;
use cinct_network::RoadNetwork;
use cinct_succinct::HuffmanCode;

/// The MEL function ψ plus its decoder tables.
#[derive(Clone, Debug)]
pub struct Mel {
    /// ψ(w) per edge (1-based labels).
    label_of: Vec<u32>,
    /// Per head node, edges sorted by descending frequency: decode table.
    members: Vec<Vec<u32>>,
}

impl Mel {
    /// Build ψ from unigram frequencies of the trajectories over `net`.
    pub fn build(net: &RoadNetwork, trajectories: &[Vec<u32>]) -> Self {
        let mut freqs = vec![0u64; net.num_edges()];
        for t in trajectories {
            for &e in t {
                freqs[e as usize] += 1;
            }
        }
        // Group edges sharing node v — the head node of the *previous*
        // segment, i.e. the node they emanate from (Fig. 9(b): A and B are
        // the possible continuations after v). Distinct labels within the
        // group make decoding along the network unambiguous.
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); net.num_nodes()];
        for e in 0..net.num_edges() as u32 {
            groups[net.edge(e).from as usize].push(e);
        }
        let mut label_of = vec![0u32; net.num_edges()];
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); net.num_nodes()];
        for (v, group) in groups.into_iter().enumerate() {
            let mut g = group;
            g.sort_by_key(|&e| (std::cmp::Reverse(freqs[e as usize]), e));
            for (k, &e) in g.iter().enumerate() {
                label_of[e as usize] = k as u32 + 1;
            }
            members[v] = g;
        }
        Self { label_of, members }
    }

    /// `ψ(w)` (1-based).
    #[inline]
    pub fn label(&self, e: u32) -> u32 {
        self.label_of[e as usize]
    }

    /// Invert ψ: the edge leaving node `v` with the given label.
    #[inline]
    pub fn decode(&self, v: u32, label: u32) -> u32 {
        self.members[v as usize][(label - 1) as usize]
    }

    /// Label an entire trajectory: `ψ(w_1) ψ(w_2) … ψ(w_n)` (paper Eq. (13)).
    pub fn label_trajectory(&self, t: &[u32]) -> Vec<u32> {
        t.iter().map(|&e| self.label(e)).collect()
    }

    /// The label stream over a whole corpus (trajectories are
    /// concatenated; a 0 separator marks boundaries so decoding can reset).
    pub fn label_stream(&self, trajectories: &[Vec<u32>]) -> Vec<u32> {
        let total: usize = trajectories.iter().map(|t| t.len() + 1).sum();
        let mut out = Vec::with_capacity(total);
        for t in trajectories {
            out.extend(self.label_trajectory(t));
            out.push(0); // separator
        }
        out
    }

    /// Decode a label stream back to trajectories. Each trajectory's first
    /// edge cannot be recovered from ψ alone (its group is unknown), so —
    /// as in \[1\] — first edges are carried verbatim via `first_edges`.
    pub fn decode_stream(
        &self,
        net: &RoadNetwork,
        stream: &[u32],
        first_edges: &[u32],
    ) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut cur: Vec<u32> = Vec::new();
        let mut traj_idx = 0usize;
        for &l in stream {
            if l == 0 {
                out.push(std::mem::take(&mut cur));
                traj_idx += 1;
                continue;
            }
            if cur.is_empty() {
                cur.push(first_edges[traj_idx]);
                continue;
            }
            let v = net.edge(*cur.last().expect("non-empty")).to;
            // The next edge leaves node `v`; the label picks it directly
            // from v's group.
            cur.push(self.decode(v, l));
        }
        out
    }

    /// Huffman-code the label stream and account the size (paper Table IV's
    /// MEL row used Huffman coding after labeling). First edges are charged
    /// at `ceil(lg σ)` bits each.
    pub fn compressed_size(&self, net: &RoadNetwork, trajectories: &[Vec<u32>]) -> CompressedSize {
        let stream = self.label_stream(trajectories);
        let sigma = stream.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut freqs = vec![0u64; sigma];
        for &l in &stream {
            freqs[l as usize] += 1;
        }
        let code = HuffmanCode::from_freqs(&freqs);
        let lg_sigma = (net.num_edges().max(2) as f64).log2().ceil() as u64;
        CompressedSize {
            payload_bits: code.encoded_bits(&freqs) + trajectories.len() as u64 * lg_sigma,
            model_bits: code.model_bits(),
        }
    }

    /// `H0` of the MEL label stream (Table V's MEL column). Separators are
    /// excluded to mirror the RML entropy computation.
    pub fn label_entropy(&self, trajectories: &[Vec<u32>]) -> f64 {
        let labels: Vec<u32> = trajectories
            .iter()
            .flat_map(|t| t.iter().map(|&e| self.label(e)))
            .collect();
        cinct_bwt::entropy_h0(&labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct_network::generators::grid_city;
    use cinct_network::WalkConfig;

    fn setup() -> (RoadNetwork, Vec<Vec<u32>>) {
        let net = grid_city(8, 8, 3);
        let trajs = WalkConfig::default().generate(&net, 120, 5);
        (net, trajs)
    }

    #[test]
    fn labels_are_small_and_distinct_per_group() {
        let (net, trajs) = setup();
        let mel = Mel::build(&net, &trajs);
        for v in 0..net.num_nodes() as u32 {
            let leaving = net.out_edges(v);
            let mut seen = std::collections::HashSet::new();
            for &e in leaving {
                let l = mel.label(e);
                assert!(l >= 1 && l as usize <= leaving.len());
                assert!(seen.insert(l), "duplicate label at node {v}");
                assert_eq!(mel.decode(v, l), e);
            }
        }
    }

    #[test]
    fn stream_roundtrip() {
        let (net, trajs) = setup();
        let mel = Mel::build(&net, &trajs);
        let stream = mel.label_stream(&trajs);
        let first_edges: Vec<u32> = trajs.iter().map(|t| t[0]).collect();
        let back = mel.decode_stream(&net, &stream, &first_edges);
        assert_eq!(back, trajs);
    }

    #[test]
    fn mel_entropy_above_rml_entropy() {
        // Theorem 6: RML ≤ MEL in 0th-order entropy of the label stream.
        let (net, trajs) = setup();
        let mel = Mel::build(&net, &trajs);
        let h_mel = mel.label_entropy(&trajs);

        let ts = cinct_bwt::TrajectoryString::build(&trajs, net.num_edges());
        let (_, tbwt) = cinct_bwt::bwt(ts.text(), ts.sigma());
        let c = cinct_bwt::CArray::new(ts.text(), ts.sigma());
        let rml =
            cinct::Rml::from_text(ts.text(), ts.sigma(), cinct::LabelingStrategy::BigramSorted);
        let h_rml = cinct_bwt::entropy_h0(&rml.label_bwt(&tbwt, &c));
        assert!(
            h_rml <= h_mel + 0.05,
            "RML {h_rml:.3} should be <= MEL {h_mel:.3}"
        );
    }

    #[test]
    fn compression_beats_raw() {
        let (net, trajs) = setup();
        let mel = Mel::build(&net, &trajs);
        let size = mel.compressed_size(&net, &trajs);
        let n: usize = trajs.iter().map(|t| t.len() + 1).sum();
        assert!(size.ratio(n) > 4.0, "MEL ratio {}", size.ratio(n));
    }

    #[test]
    fn empty_trajectory_set() {
        let net = grid_city(3, 3, 1);
        let mel = Mel::build(&net, &[]);
        assert_eq!(mel.label_stream(&[]), Vec::<u32>::new());
    }
}
