//! Property-based round-trip tests for every compressor on arbitrary
//! integer sequences (and network-constrained inputs for the NCT-specific
//! coders).

use cinct_compressors::{bwz, lz, repair};
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = Vec<u32>> {
    (2u32..50).prop_flat_map(|sigma| proptest::collection::vec(0..sigma, 0..800))
}

/// Repetitive streams: motifs repeated with noise — the regime grammar and
/// LZ compressors must handle without breaking alignment.
fn repetitive_strategy() -> impl Strategy<Value = Vec<u32>> {
    (
        proptest::collection::vec(0u32..10, 1..12),
        1usize..40,
        proptest::collection::vec((0usize..400, 0u32..10), 0..20),
    )
        .prop_map(|(motif, reps, edits)| {
            let mut out = Vec::with_capacity(motif.len() * reps);
            for _ in 0..reps {
                out.extend_from_slice(&motif);
            }
            for (pos, val) in edits {
                if !out.is_empty() {
                    let p = pos % out.len();
                    out[p] = val;
                }
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn repair_roundtrip(stream in stream_strategy()) {
        let g = repair::compress(&stream, 50);
        prop_assert_eq!(repair::decompress(&g), stream);
    }

    #[test]
    fn repair_roundtrip_repetitive(stream in repetitive_strategy()) {
        let g = repair::compress(&stream, 10);
        prop_assert_eq!(repair::decompress(&g), stream);
    }

    #[test]
    fn bwz_roundtrip(stream in stream_strategy(), block in 8usize..300) {
        let c = bwz::compress_with_block(&stream, block);
        prop_assert_eq!(bwz::decompress(&c), stream);
    }

    #[test]
    fn lz_roundtrip(stream in stream_strategy()) {
        let tokens = lz::tokenize(&stream);
        prop_assert_eq!(lz::detokenize(&tokens), stream);
    }

    #[test]
    fn lz_roundtrip_repetitive(stream in repetitive_strategy()) {
        let tokens = lz::tokenize(&stream);
        prop_assert_eq!(lz::detokenize(&tokens), stream);
    }

    #[test]
    fn sizes_are_positive_and_finite(stream in stream_strategy()) {
        if !stream.is_empty() {
            let r = repair::compress(&stream, 50).compressed_size();
            prop_assert!(r.total_bits() > 0);
            let b = bwz::compress(&stream).compressed_size();
            prop_assert!(b.total_bits() > 0);
            let l = lz::compressed_size(&stream);
            prop_assert!(l.total_bits() > 0);
        }
    }
}

#[test]
fn sp_roundtrip_on_random_networks() {
    // SP coding needs a network; exercise several seeds deterministically.
    use cinct_network::generators::grid_city;
    use cinct_network::WalkConfig;
    for seed in 0..5u64 {
        let net = grid_city(6, 6, seed);
        let trajs = WalkConfig {
            straight_bias: 2.0,
            min_len: 3,
            max_len: 25,
        }
        .generate(&net, 30, seed + 100);
        for t in &trajs {
            let code = cinct_compressors::sp::encode(&net, t);
            assert_eq!(
                cinct_compressors::sp::decode(&net, &code),
                *t,
                "seed {seed}"
            );
        }
    }
}
