//! Fixed-bucket, log-scale histograms for nanosecond-granularity
//! latencies.
//!
//! # Bucket layout
//!
//! Values `0..32` get one **exact** bucket each; every larger value lands
//! in one of four log-linear sub-buckets per power of two (the value's
//! octave, split by its next two significant bits). That is 32 + 59×4 =
//! [`NUM_BUCKETS`] buckets covering the full `u64` range with a relative
//! resolution of ≤ 25% per bucket (quantile estimates err by at most one
//! bucket's width) — the HdrHistogram idea, shrunk to a fixed array with
//! no configuration.
//!
//! # Cost model
//!
//! [`Histogram::record`] is branch-light integer arithmetic plus three
//! relaxed atomic RMWs (bucket, sum, max) — no locks, no allocation,
//! safe to leave on a query hot path measured in microseconds. Reading
//! ([`Histogram::snapshot`]) scans the bucket array and is meant for
//! exposition endpoints, not hot paths.
//!
//! Snapshots taken while writers are running are statistically, not
//! atomically, consistent: each bucket is exact, but the set may straddle
//! in-flight samples. Once writers quiesce, totals are exact.

use crate::metric::Gauge;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Values below this get one exact bucket each.
const EXACT: u64 = 32;
/// log2 of [`EXACT`] — the first octave that is sub-bucketed.
const FIRST_OCTAVE: u32 = 5;
/// Sub-buckets per octave above the exact range.
const SUBS: usize = 4;
/// Total bucket count: 32 exact + 4 per octave for octaves 5..=63.
pub const NUM_BUCKETS: usize = EXACT as usize + (64 - FIRST_OCTAVE as usize) * SUBS;

/// Bucket index of value `v`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= FIRST_OCTAVE
    let sub = ((v >> (octave - 2)) & 3) as usize;
    EXACT as usize + (octave - FIRST_OCTAVE) as usize * SUBS + sub
}

/// Smallest value that lands in bucket `i` (buckets partition `u64`:
/// bucket `i` holds `bucket_lo(i) ..= bucket_hi(i)`).
pub fn bucket_lo(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if (i as u64) < EXACT {
        return i as u64;
    }
    let octave = (i - EXACT as usize) / SUBS + FIRST_OCTAVE as usize;
    let sub = ((i - EXACT as usize) % SUBS) as u64;
    (4 + sub) << (octave - 2)
}

/// Largest value that lands in bucket `i`.
pub fn bucket_hi(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        bucket_lo(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A concurrent log-scale histogram (see the [module docs](self)).
///
/// ```
/// let h = cinct_obs::Histogram::new();
/// for ns in [120, 130, 140, 9_000] {
///     h.record(ns);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.max, 9_000);
/// assert!(s.p50 >= 96 && s.p50 <= 160); // one bucket's resolution
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: Gauge,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time read of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed). Zero when empty.
    pub max: u64,
    /// Estimated median (lower bound of the covering bucket).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean value, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array from a const item
        // (each use of a const is a fresh value).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            max: Gauge::new(),
        }
    }

    /// Record one sample (typically nanoseconds, but any `u64` scale
    /// works as long as one histogram sticks to one unit).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.set_max(v);
    }

    /// Record a [`Duration`] as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Read counts, sum, max and the p50/p90/p99 estimates in one pass.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile sample, 1-based, clamped into range.
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return bucket_lo(i);
                }
            }
            bucket_lo(NUM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.get(),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    /// Non-empty buckets as `(upper_bound_inclusive, cumulative_count)`
    /// pairs — the shape a Prometheus histogram exposition wants.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_hi(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_are_exact() {
        for v in 0..EXACT {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
            assert_eq!(bucket_hi(v as usize), v.max(31).min(v));
        }
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every bucket's lo is the previous bucket's hi + 1.
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_lo(i), bucket_hi(i - 1) + 1, "bucket {i}");
        }
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn boundary_values_land_in_their_bucket() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
        }
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn resolution_is_at_most_a_quarter() {
        // Above the exact range, hi/lo per bucket stays under 1.25.
        for i in EXACT as usize..NUM_BUCKETS - 1 {
            let (lo, hi) = (bucket_lo(i) as f64, bucket_hi(i) as f64);
            assert!(hi / lo < 1.25 + 1e-9, "bucket {i}: {lo}..{hi}");
        }
    }

    #[test]
    fn snapshot_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // Estimates are bucket lower bounds: within 25% below the true
        // quantile, never above it.
        for (est, truth) in [(s.p50, 500u64), (s.p90, 900), (s.p99, 990)] {
            assert!(est <= truth, "estimate {est} above true {truth}");
            assert!(
                est as f64 >= truth as f64 * 0.75,
                "estimate {est} vs {truth}"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn cumulative_bucket_export() {
        let h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (3, 2));
        assert_eq!(buckets[1].1, 3);
        assert!(buckets[1].0 >= 100);
    }
}
