//! The two scalar metric primitives: monotone [`Counter`]s and
//! last-write-wins [`Gauge`]s.
//!
//! Both are a single `AtomicU64` manipulated with `Ordering::Relaxed` —
//! one uncontended atomic RMW (a handful of cycles on x86/ARM) per
//! sample, no locks, no allocation. Relaxed ordering is deliberate:
//! metrics need each sample to be *counted*, not *ordered* relative to
//! other memory traffic, and exposition reads are statistical snapshots,
//! not synchronization points.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// ```
/// let queries = cinct_obs::Counter::new();
/// queries.inc();
/// queries.add(41);
/// assert_eq!(queries.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total. Exact once all writers have quiesced; a statistical
    /// snapshot while they are running.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (a level, not a rate): thread counts, shard
/// counts, bytes resident. Last write wins.
///
/// ```
/// let threads = cinct_obs::Gauge::new();
/// threads.set(8);
/// assert_eq!(threads.get(), 8);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Read the current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Record `v` if it exceeds the current value (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Raise the level by one (in-flight request counts and other
    /// up/down levels; pair with [`Gauge::dec`]).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower the level by one, saturating at zero (an unmatched `dec`
    /// is a bug upstream, but a metric must never wrap to 2^64).
    #[inline]
    pub fn dec(&self) {
        // Saturating fetch_sub: CAS loop, uncontended in practice.
        let mut cur = self.0.load(Ordering::Relaxed);
        while cur > 0 {
            match self
                .0
                .compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_overwrites_and_maxes() {
        let g = Gauge::new();
        g.set(5);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.set_max(2);
        assert_eq!(g.get(), 3);
        g.set_max(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn gauge_levels_saturate_at_zero() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // unmatched: must not wrap
        assert_eq!(g.get(), 0);
    }
}
