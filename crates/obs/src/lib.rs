//! Zero-overhead observability for the CiNCT workspace.
//!
//! Dependency-free metrics: relaxed-atomic [`Counter`]s and [`Gauge`]s,
//! fixed-bucket log-scale [`Histogram`]s with p50/p90/p99 snapshots,
//! scoped [`Span`] timers, and a [`Registry`] that renders everything as
//! Prometheus text or JSON. Every sample is one or a few uncontended
//! relaxed atomic adds — cheap enough to leave on in a query hot path
//! (the workspace bench gate enforces that this stays true).
//!
//! # Quickstart
//!
//! Resolve handles once (at startup or in a `OnceLock`), record freely:
//!
//! ```
//! use cinct_obs::{Registry, Span};
//!
//! let registry = Registry::new(); // or cinct_obs::global()
//! let queries = registry.counter("app_queries_total", "Queries served");
//! let latency = registry.histogram("app_query_ns", "Query latency (ns)");
//!
//! for _ in 0..3 {
//!     let _span = Span::enter(&latency); // records on drop
//!     queries.inc();
//!     // ... serve the query ...
//! }
//!
//! let text = registry.render_prometheus();
//! assert!(text.contains("app_queries_total 3"));
//! assert!(registry.render_json().contains("\"app_query_ns\""));
//! ```
//!
//! Library code in this workspace records into [`global()`] so that the
//! CLI (`cinct stats --metrics`) and any long-lived server expose one
//! coherent view. The idiom for a component is a lazily initialised
//! handle struct:
//!
//! ```
//! use std::sync::{Arc, OnceLock};
//!
//! struct EngineMetrics {
//!     queries: Arc<cinct_obs::Counter>,
//! }
//!
//! fn metrics() -> &'static EngineMetrics {
//!     static M: OnceLock<EngineMetrics> = OnceLock::new();
//!     M.get_or_init(|| EngineMetrics {
//!         queries: cinct_obs::global().counter("engine_queries_total", "Queries"),
//!     })
//! }
//!
//! metrics().queries.inc(); // hot path: one OnceLock load + one relaxed add
//! ```
#![warn(missing_docs)]

pub mod histogram;
pub mod metric;
pub mod registry;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{global, Registry};
pub use span::{timed, Span};
