//! Scoped timers that record into a [`Histogram`](crate::Histogram) when
//! dropped.

use crate::histogram::Histogram;
use std::time::Instant;

/// A running timer tied to a histogram; its elapsed wall time is recorded
/// (in nanoseconds) when it goes out of scope.
///
/// ```
/// let latency = cinct_obs::Histogram::new();
/// {
///     let _span = cinct_obs::Span::enter(&latency);
///     // ... the timed work ...
/// } // recorded here
/// assert_eq!(latency.count(), 1);
/// ```
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'h> {
    target: &'h Histogram,
    start: Instant,
}

impl<'h> Span<'h> {
    /// Start timing; the measurement lands in `target` on drop.
    #[inline]
    pub fn enter(target: &'h Histogram) -> Self {
        Span {
            target,
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far, without ending the span.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// End the span now and return the recorded nanoseconds.
    #[inline]
    pub fn finish(self) -> u64 {
        let ns = self.elapsed_ns();
        self.target.record(ns);
        std::mem::forget(self); // Drop would record a second sample
        ns
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        self.target.record(self.elapsed_ns());
    }
}

/// Time a closure into a histogram and return its result.
///
/// ```
/// let h = cinct_obs::Histogram::new();
/// let answer = cinct_obs::timed(&h, || 6 * 7);
/// assert_eq!(answer, 42);
/// assert_eq!(h.count(), 1);
/// ```
#[inline]
pub fn timed<T>(target: &Histogram, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(target);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let h = Histogram::new();
        {
            let _s = Span::enter(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn finish_records_once_and_returns_elapsed() {
        let h = Histogram::new();
        let s = Span::enter(&h);
        let ns = s.finish();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), ns);
    }

    #[test]
    fn timed_passes_through_the_result() {
        let h = Histogram::new();
        assert_eq!(timed(&h, || "ok"), "ok");
        assert_eq!(h.count(), 1);
    }
}
