//! The process-wide metric registry and its exposition formats.
//!
//! A [`Registry`] is a name → metric map. Callers resolve a handle once
//! (`registry.counter("cinct_queries_total", "...")`), stash the returned
//! `Arc`, and from then on never touch the registry again — the mutex
//! guards only registration and rendering, never the sample path.
//!
//! [`global()`] is the conventional process-wide instance; every
//! instrumented layer in the workspace records there so one
//! [`render_prometheus`](Registry::render_prometheus) call sees the whole
//! engine. Isolated [`Registry::new`] instances exist for tests.

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Clone, Debug)]
struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A name → metric map with get-or-create registration and Prometheus /
/// JSON exposition. See the [module docs](self) for the usage pattern.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The process-wide registry all workspace instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// `true` for a valid Prometheus metric name: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// An empty registry (the [`global()`] one usually serves better).
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is not a valid metric name, or is already registered as
    /// a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, help, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge named `name` (panics like [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `name` (panics like [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, help, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// `true` when nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every metric in the Prometheus text exposition format.
    ///
    /// Counters and gauges render as their native types; histograms
    /// render as `summary` families (p50/p90/p99 quantile samples plus
    /// `_sum` and `_count`) so the output stays compact at any scale.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap().clone();
        let mut out = String::new();
        for e in &entries {
            if !e.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(out, "# TYPE {} summary", e.name);
                    for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                        let _ = writeln!(out, "{}{{quantile=\"{}\"}} {}", e.name, q, v);
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, s.sum);
                    let _ = writeln!(out, "{}_count {}", e.name, s.count);
                }
            }
        }
        out
    }

    /// Render every metric as a single JSON object. Counters and gauges
    /// map to numbers; histograms map to
    /// `{"count","sum","max","p50","p90","p99"}` objects.
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().unwrap().clone();
        let mut out = String::from("{");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": ", e.name);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = write!(
                        out,
                        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        s.count, s.sum, s.max, s.p50, s.p90, s.p99
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests");
        let b = r.counter("requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "");
        let _ = r.gauge("x_total", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let _ = Registry::new().counter("9starts_with_digit", "");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = Registry::new();
        r.counter("cinct_queries_total", "Total queries").add(7);
        r.gauge("cinct_threads", "Worker threads").set(4);
        let h = r.histogram("cinct_query_ns", "Query latency");
        h.record(100);
        h.record(200);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE cinct_queries_total counter"));
        assert!(text.contains("cinct_queries_total 7"));
        assert!(text.contains("# TYPE cinct_threads gauge"));
        assert!(text.contains("# TYPE cinct_query_ns summary"));
        assert!(text.contains("cinct_query_ns{quantile=\"0.5\"}"));
        assert!(text.contains("cinct_query_ns_count 2"));
        assert!(text.contains("cinct_query_ns_sum 300"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn json_rendering_contains_every_metric() {
        let r = Registry::new();
        r.counter("a_total", "").add(1);
        r.histogram("b_ns", "").record(5);
        let json = r.render_json();
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"b_ns\": {\"count\": 1, \"sum\": 5"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
