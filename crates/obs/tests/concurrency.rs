//! Concurrency and determinism guarantees: no sample may be lost under
//! contention, and identical workloads must produce identical registries.

use cinct_obs::{Counter, Gauge, Histogram, Registry, Span};
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn counter_loses_nothing_under_contention() {
    let c = Counter::new();
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn gauge_set_max_finds_the_global_max_under_contention() {
    let g = Gauge::new();
    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let g = &g;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    g.set_max(t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(g.get(), THREADS as u64 * PER_THREAD - 1);
}

#[test]
fn histogram_loses_nothing_under_contention() {
    let h = Histogram::new();
    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let h = &h;
            s.spawn(move || {
                // Distinct value ranges per thread so bucket contention
                // patterns differ while totals stay checkable.
                for i in 0..PER_THREAD {
                    h.record(t * 1000 + (i % 977));
                }
            });
        }
    });
    let s = h.snapshot();
    assert_eq!(s.count, THREADS as u64 * PER_THREAD);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| t * 1000 + (i % 977)).sum::<u64>())
        .sum();
    assert_eq!(s.sum, expected_sum);
    assert_eq!(s.max, (THREADS as u64 - 1) * 1000 + 976);
}

#[test]
fn concurrent_registration_yields_one_metric() {
    let r = Registry::new();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let r = &r;
            s.spawn(move || {
                for _ in 0..1000 {
                    r.counter("shared_total", "shared").inc();
                }
            });
        }
    });
    assert_eq!(r.len(), 1);
    assert_eq!(
        r.counter("shared_total", "shared").get(),
        THREADS as u64 * 1000
    );
}

#[test]
fn spans_record_under_contention() {
    let h = Histogram::new();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for _ in 0..500 {
                    let _span = Span::enter(h);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS as u64 * 500);
}

/// Two identical workloads against two fresh registries must render to
/// byte-identical output for every deterministic field. (Latency
/// histograms are excluded by construction — this workload records plain
/// values, the way the engine records batch sizes and fan-out counts.)
#[test]
fn identical_workloads_snapshot_identically() {
    let run = || {
        let r = Registry::new();
        let queries = r.counter("queries_total", "q");
        let threads = r.gauge("threads", "t");
        let sizes = r.histogram("batch_size", "b");
        thread::scope(|s| {
            for t in 0..4u64 {
                let queries = &queries;
                let sizes = &sizes;
                s.spawn(move || {
                    for i in 0..2500 {
                        queries.inc();
                        sizes.record(t * 100 + (i % 97));
                    }
                });
            }
        });
        threads.set(4);
        (r.render_prometheus(), r.render_json())
    };
    let (prom_a, json_a) = run();
    let (prom_b, json_b) = run();
    assert_eq!(prom_a, prom_b);
    assert_eq!(json_a, json_b);
}
