//! Property tests for the histogram bucket scheme: the buckets must
//! partition `u64` exactly, and snapshots must bracket true quantiles.

use cinct_obs::histogram::{bucket_hi, bucket_lo, bucket_of, NUM_BUCKETS};
use cinct_obs::Histogram;
use proptest::prelude::*;

fn mixed_value() -> impl Strategy<Value = u64> {
    // Mix small exact-bucket values, mid-range latencies, and full-range
    // u64s so every region of the bucket table gets exercised.
    (0u32..3, any::<u64>()).prop_map(|(class, raw)| match class {
        0 => raw % 64,
        1 => 64 + raw % 1_000_000,
        _ => raw,
    })
}

fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(mixed_value(), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_value_lands_inside_its_bucket_bounds(v in any::<u64>()) {
        let i = bucket_of(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lo(i) <= v);
        prop_assert!(v <= bucket_hi(i));
    }

    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
    }

    #[test]
    fn neighbouring_values_straddle_bucket_edges(i in 1usize..NUM_BUCKETS) {
        // The value just below a bucket's lower bound belongs to the
        // previous bucket: no gaps, no overlaps.
        let lo = bucket_lo(i);
        prop_assert_eq!(bucket_of(lo), i);
        prop_assert_eq!(bucket_of(lo - 1), i - 1);
        prop_assert_eq!(bucket_hi(i - 1), lo - 1);
    }

    #[test]
    fn snapshot_totals_are_exact_and_quantiles_bracket(values in values_strategy()) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(s.sum, expected_sum);
        prop_assert_eq!(s.max, *values.iter().max().unwrap());

        // Each reported quantile must be the lower bound of the bucket
        // holding the true quantile sample.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, est) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            prop_assert_eq!(est, bucket_lo(bucket_of(truth)),
                "q={} truth={} est={}", q, truth, est);
        }
    }
}
