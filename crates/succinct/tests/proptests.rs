//! Property-based tests for the succinct substrate: every structure against
//! a naive oracle on arbitrary inputs.

use cinct_succinct::{
    BitBuf, BitRank, HuffmanCode, HuffmanWaveletTree, IntVec, RankBitVec, RrrBitVec, SymbolSeq,
    WaveletMatrix,
};
use proptest::prelude::*;

fn bits_strategy() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..2000)
}

fn biased_bits_strategy() -> impl Strategy<Value = Vec<bool>> {
    // Density parameter exercises RRR's class skew handling.
    (0u32..=100).prop_flat_map(|density| {
        proptest::collection::vec(proptest::bool::weighted(density as f64 / 100.0), 0..2000)
    })
}

fn seq_strategy(sigma: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..sigma, 1..1500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_bitvec_rank_select(bits in bits_strategy()) {
        let buf = BitBuf::from_bools(bits.iter().copied());
        let rb = RankBitVec::new(buf);
        let mut ones = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(rb.rank1(i), ones);
            prop_assert_eq!(rb.get(i), b);
            if b {
                prop_assert_eq!(rb.select1(ones), Some(i));
                ones += 1;
            } else {
                prop_assert_eq!(rb.select0(i - ones), Some(i));
            }
        }
        prop_assert_eq!(rb.rank1(bits.len()), ones);
        prop_assert_eq!(rb.select1(ones), None);
    }

    #[test]
    fn rrr_equals_plain(bits in biased_bits_strategy(), b in 1usize..=63) {
        let buf = BitBuf::from_bools(bits.iter().copied());
        let rrr = RrrBitVec::new(&buf, b);
        let mut ones = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(rrr.rank1(i), ones, "rank1({}) b={}", i, b);
            prop_assert_eq!(rrr.get(i), bit, "get({}) b={}", i, b);
            ones += bit as usize;
        }
        prop_assert_eq!(rrr.count_ones(), ones);
    }

    #[test]
    fn rrr_fast_rank_matches_naive_and_reference(
        bits in biased_bits_strategy(),
        b in prop::sample::select(vec![15usize, 31, 63]),
    ) {
        // The optimized hot path (three-level directory, table-driven
        // scan, pipelined/fused decodes) against both the naive bit count
        // and the seed-equivalent reference algorithms, at every paper
        // block size.
        let buf = BitBuf::from_bools(bits.iter().copied());
        let rrr = RrrBitVec::new(&buf, b);
        let n = bits.len();
        let mut ones = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(rrr.rank1(i), ones, "rank1({}) b={}", i, b);
            prop_assert_eq!(rrr.rank1_reference(i), ones, "reference({}) b={}", i, b);
            let (g, r) = rrr.get_and_rank1(i);
            prop_assert_eq!((g, r), (bit, ones), "get_and_rank1({}) b={}", i, b);
            ones += bit as usize;
        }
        prop_assert_eq!(rrr.rank1(n), ones);
        // Paired ranks at pseudo-random position pairs (same-block,
        // cross-block and boundary shapes all occur across cases).
        let mut x = 0x2545_f491_4f6c_dd1du64 ^ (n as u64);
        for _ in 0..32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % (n + 1);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (n + 1);
            let (a, bb) = rrr.rank1_pair(i, j);
            prop_assert_eq!((a, bb), (rrr.rank1_reference(i), rrr.rank1_reference(j)),
                "pair({}, {}) b={}", i, j, b);
        }
    }

    #[test]
    fn hwt_equals_naive(seq in seq_strategy(25), b in prop::sample::select(vec![15usize, 31, 63])) {
        let wt = HuffmanWaveletTree::<RrrBitVec>::with_params(&seq, b);
        for (i, &s) in seq.iter().enumerate() {
            prop_assert_eq!(wt.access(i), s);
        }
        for w in 0..25u32 {
            let i = seq.len();
            let expected = seq.iter().filter(|&&s| s == w).count();
            prop_assert_eq!(wt.rank(w, i), expected);
        }
        // Mid-point ranks.
        let mid = seq.len() / 2;
        for w in 0..25u32 {
            let expected = seq[..mid].iter().filter(|&&s| s == w).count();
            prop_assert_eq!(wt.rank(w, mid), expected);
        }
    }

    #[test]
    fn wm_equals_naive(seq in seq_strategy(40)) {
        let wm = WaveletMatrix::<RankBitVec>::new(&seq);
        for (i, &s) in seq.iter().enumerate() {
            prop_assert_eq!(wm.access(i), s);
        }
        let mid = seq.len() / 2;
        for w in 0..40u32 {
            let expected = seq[..mid].iter().filter(|&&s| s == w).count();
            prop_assert_eq!(wm.rank(w, mid), expected);
        }
    }

    #[test]
    fn huffman_roundtrip(seq in seq_strategy(30)) {
        let code = HuffmanCode::from_seq(&seq);
        let bits = code.encode(&seq);
        let (back, end) = code.decode(&bits, 0, seq.len());
        prop_assert_eq!(back, seq);
        prop_assert_eq!(end, bits.len());
    }

    #[test]
    fn intvec_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..500), width_sel in 0usize..4) {
        // Mask values to assorted widths including 64.
        let width = [7usize, 23, 41, 64][width_sel];
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let vals: Vec<u64> = values.iter().map(|v| v & mask).collect();
        let mut iv = IntVec::new(width);
        for &v in &vals {
            iv.push(v);
        }
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(iv.get(i), v);
        }
    }

    #[test]
    fn bitbuf_push_bits_roundtrip(chunks in proptest::collection::vec((any::<u64>(), 0usize..=64), 0..100)) {
        let mut buf = BitBuf::new();
        let norm: Vec<(u64, usize)> = chunks
            .iter()
            .map(|&(v, w)| (if w == 64 { v } else { v & ((1u64 << w) - 1) }, w))
            .collect();
        for &(v, w) in &norm {
            buf.push_bits(v, w);
        }
        let mut pos = 0usize;
        for &(v, w) in &norm {
            prop_assert_eq!(buf.get_bits(pos, w), v);
            pos += w;
        }
        prop_assert_eq!(pos, buf.len());
    }
}
