#![warn(missing_docs)]
//! Succinct data structures underlying the CiNCT trajectory index.
//!
//! This crate provides the bit-level substrate described in Section II of the
//! CiNCT paper (Koide et al., ICDE 2018):
//!
//! * [`BitBuf`] — an append-only bit buffer with random access ([`bits`]).
//! * [`RankBitVec`] — a plain bit vector with a two-level rank directory and
//!   select support ([`rank_bits`]).
//! * [`RrrBitVec`] — the practical RRR compressed bit vector of Navarro &
//!   Providel (SEA'12) with a runtime block-size parameter `b` ([`rrr`]).
//! * [`HuffmanCode`] / [`HuffmanTree`] — Huffman coding over `u32` alphabets
//!   ([`huffman`]).
//! * [`HuffmanWaveletTree`] — a Huffman-shaped wavelet tree (HWT), generic
//!   over the bit-vector backend ([`wavelet_tree`]).
//! * [`WaveletMatrix`] — a wavelet matrix (Claude & Navarro, SPIRE'12), also
//!   generic over the backend ([`wavelet_matrix`]).
//! * [`IntVec`] — fixed-width packed integer vectors ([`int_vec`]).
//!
//! All sequence structures implement [`SymbolSeq`], the symbol-level
//! rank/access interface consumed by the FM-index variants and by CiNCT
//! itself, and every structure reports its heap footprint through
//! [`SpaceUsage`].

pub mod bits;
pub mod huffman;
pub mod int_vec;
mod parbuild;
pub mod rank_bits;
pub mod rrr;
pub mod serial;
pub mod traits;
pub mod wavelet_matrix;
pub mod wavelet_tree;

pub use bits::BitBuf;
pub use huffman::{HuffmanCode, HuffmanTree};
pub use int_vec::IntVec;
pub use rank_bits::RankBitVec;
pub use rrr::RrrBitVec;
pub use serial::Persist;
pub use traits::{BitRank, BitVecBuild, SpaceUsage, Symbol, SymbolSeq};
pub use wavelet_matrix::WaveletMatrix;
pub use wavelet_tree::HuffmanWaveletTree;
