//! Huffman-shaped wavelet tree (HWT), generic over the bit-vector backend.
//!
//! The paper's CiNCT index stores the labeled BWT `φ(T_bwt)` in an HWT whose
//! bit vectors are RRR-compressed (`HuffmanWaveletTree<RrrBitVec>`); the
//! ICB-Huff baseline stores the *unlabeled* BWT in the same structure
//! (§II-B2, Table II). Space is at most `n(1 + H0(S)) + o(n)` bits and
//! `rank_w(S, j)` costs one bit-level rank per code bit of `w` —
//! `O(1 + H0(S))` on average (Theorem 1), which is why shrinking `H0`
//! via RML makes CiNCT both smaller *and* faster.
//!
//! All node bitmaps are **concatenated into a single backend bit vector**
//! (as sdsl-lite does): per node we keep only its start offset and the
//! number of ones before it, so a node-local `rank1(p)` is one global
//! `rank1(start + p)` minus a stored constant. This avoids the paper's
//! problem P2 (per-block storage overhead) for large alphabets.

use crate::bits::BitBuf;
use crate::huffman::{Child, CodeTable, HuffmanTree};
use crate::int_vec::IntVec;
use crate::serial::{read_usize, write_usize, Persist};
use crate::traits::{BitVecBuild, SpaceUsage, Symbol, SymbolSeq};

/// Packed per-node metadata: bitmap start offsets, ones-before counters and
/// child links, each stored at the minimal bit width. With large alphabets
/// (σ internal nodes) a naive struct-of-u64s would cost 32 bytes per node —
/// a visible fraction of the whole index; packing brings it to a few bytes.
///
/// Start and ones-before are *interleaved* (`[start0, ones0, start1, …]`)
/// so every descent level fetches both with one packed read — a hot-path
/// constant, since each wavelet rank/access touches them once per level.
#[derive(Clone, Debug)]
struct NodeTable {
    /// Interleaved per-node pairs: even slots = first bit of the node's
    /// bitmap in the global vector, odd slots = ones before it.
    meta: IntVec,
    /// Child links: `(x << 1) | 1` = leaf with symbol `x`; `x << 1` =
    /// internal node `x`. Left children at even slots, right at odd.
    children: IntVec,
}

impl NodeTable {
    #[inline]
    fn child(&self, node: usize, right: bool) -> Child {
        let v = self.children.get(node * 2 + right as usize);
        if v & 1 == 1 {
            Child::Leaf((v >> 1) as Symbol)
        } else {
            Child::Node((v >> 1) as u32)
        }
    }

    /// `(start, ones_before)` of `node`, one fetch when the pair fits a
    /// word (always, until a single wavelet tree exceeds 2³² bits).
    #[inline]
    fn start_and_ones(&self, node: usize) -> (usize, usize) {
        let w = self.meta.width();
        if 2 * w <= 64 {
            let packed = self.meta.raw_bits().get_bits(2 * node * w, 2 * w);
            (
                (packed & ((1u64 << w) - 1)) as usize,
                (packed >> w) as usize,
            )
        } else {
            (
                self.meta.get(2 * node) as usize,
                self.meta.get(2 * node + 1) as usize,
            )
        }
    }

    #[inline]
    fn start(&self, node: usize) -> usize {
        self.meta.get(2 * node) as usize
    }
}

/// A Huffman-shaped wavelet tree over a `u32` alphabet.
#[derive(Clone, Debug)]
pub struct HuffmanWaveletTree<B: BitVecBuild> {
    /// All node bitmaps, concatenated in node-index order.
    bits: B,
    nodes: NodeTable,
    /// Codeword per symbol (root-to-leaf path bits).
    codes: CodeTable,
    len: usize,
    alphabet_size: usize,
}

impl<B: BitVecBuild> HuffmanWaveletTree<B> {
    /// Build from a sequence with the backend's default parameters.
    pub fn new(seq: &[Symbol]) -> Self {
        Self::with_params(seq, B::default_params())
    }

    /// Build from a sequence; `params` configures the backend bit vector
    /// (for RRR this is the block size `b`).
    pub fn with_params(seq: &[Symbol], params: B::Params) -> Self {
        Self::with_params_mt(seq, params, 1)
    }

    /// [`Self::with_params`] with up to `threads` workers (`0` = available
    /// parallelism). Each node's bit-partitioning is sharded into
    /// contiguous chunks stitched back in order, and the backend builds
    /// through [`BitVecBuild::build_mt`] — so the finished tree (and its
    /// serialized bytes) is **identical** to a sequential build at any
    /// thread count; only wall-clock differs.
    pub fn with_params_mt(seq: &[Symbol], params: B::Params, threads: usize) -> Self {
        assert!(!seq.is_empty(), "wavelet tree over empty sequence");
        // Resolve the `0 = all cores` knob once, not per Huffman node.
        let threads = crate::parbuild::effective_threads(threads);
        let alphabet_size = seq.iter().copied().max().unwrap() as usize + 1;
        let mut freqs = vec![0u64; alphabet_size];
        for &s in seq {
            freqs[s as usize] += 1;
        }
        let tree = HuffmanTree::from_freqs(&freqs);
        let n_nodes = tree.nodes.len();

        // Depths propagate root-down (parents precede children by
        // construction of the re-rooted Huffman tree).
        let mut depths = vec![0usize; n_nodes];
        for node in 0..n_nodes {
            let (l, r) = tree.nodes[node];
            for child in [l, r] {
                if let Child::Node(i) = child {
                    depths[i as usize] = depths[node] + 1;
                }
            }
        }

        // Build per-node raw bitmaps top-down; each node owns the
        // subsequence of symbols whose codes pass through it. Partitioning
        // a node is shard-parallel (the work per depth sums to ~n, so big
        // nodes dominate and shard well; small ones run sequentially under
        // the partition helper's threshold).
        let mut raw: Vec<BitBuf> = (0..n_nodes).map(|_| BitBuf::new()).collect();
        let mut owned: Vec<Vec<Symbol>> = vec![Vec::new(); n_nodes];
        {
            // Flat per-symbol code cache: the partition predicate becomes
            // two array loads and a shift instead of a packed-table lookup
            // per symbol per level.
            let mut code_bits = vec![0u64; alphabet_size];
            let mut code_lens = vec![0u8; alphabet_size];
            for s in 0..alphabet_size as u32 {
                if let Some(cw) = tree.code(s) {
                    code_bits[s as usize] = cw.bits;
                    code_lens[s as usize] = cw.len;
                }
            }
            let (code_bits, code_lens) = (&code_bits, &code_lens);
            let fill_node = |node: usize, node_seq: &[Symbol]| {
                let (l, r) = tree.nodes[node];
                let depth = depths[node];
                crate::parbuild::partition_by(
                    node_seq,
                    // Bit `depth` of the root-to-leaf path (Codeword::path_bit,
                    // unpacked): only symbols with codes reach any node.
                    |s| {
                        let len = code_lens[s as usize] as usize;
                        debug_assert!(depth < len, "symbol has a code through this node");
                        (code_bits[s as usize] >> (len - 1 - depth)) & 1 == 1
                    },
                    matches!(l, Child::Node(_)),
                    matches!(r, Child::Node(_)),
                    threads,
                )
            };
            let mut install = |node: usize,
                               parts: (BitBuf, Vec<Symbol>, Vec<Symbol>),
                               owned: &mut Vec<Vec<Symbol>>| {
                let (bits, lseq, rseq) = parts;
                raw[node] = bits;
                if let Child::Node(i) = tree.nodes[node].0 {
                    owned[i as usize] = lseq;
                }
                if let Child::Node(i) = tree.nodes[node].1 {
                    owned[i as usize] = rseq;
                }
            };
            install(0, fill_node(0, seq), &mut owned);
            for node in 1..n_nodes {
                let node_seq = std::mem::take(&mut owned[node]);
                install(node, fill_node(node, &node_seq), &mut owned);
            }
        }

        // Concatenate into one bitmap, recording starts and ones-before.
        let total: usize = raw.iter().map(BitBuf::len).sum();
        let mut global = BitBuf::with_capacity(total);
        let pos_width = IntVec::width_for(total.max(1) as u64);
        let child_width = IntVec::width_for(((alphabet_size.max(n_nodes)) as u64) << 1 | 1);
        let mut meta = IntVec::with_capacity(pos_width, n_nodes * 2);
        let mut children = IntVec::with_capacity(child_width, n_nodes * 2);
        let encode_child = |c: Child| -> u64 {
            match c {
                Child::Leaf(s) => ((s as u64) << 1) | 1,
                Child::Node(i) => (i as u64) << 1,
            }
        };
        let mut ones: u64 = 0;
        for (i, nb) in raw.iter().enumerate() {
            meta.push(global.len() as u64);
            meta.push(ones);
            children.push(encode_child(tree.nodes[i].0));
            children.push(encode_child(tree.nodes[i].1));
            global.append(nb);
            ones += nb.count_ones() as u64;
        }
        let bits = B::build_mt(&global, params, threads);

        Self {
            bits,
            nodes: NodeTable { meta, children },
            codes: tree.codes,
            len: seq.len(),
            alphabet_size,
        }
    }

    /// Node-local rank1 of prefix length `p` within `node`.
    #[inline]
    fn node_rank1(&self, node: usize, p: usize) -> usize {
        let (start, before) = self.nodes.start_and_ones(node);
        self.bits.rank1(start + p) - before
    }

    /// Average code length = total stored bits / sequence length; equals
    /// the expected number of bit-level ranks per symbol rank.
    pub fn avg_code_len(&self) -> f64 {
        self.bits.len() as f64 / self.len as f64
    }

    /// The concatenated backend bit vector (diagnostics / microbenches).
    pub fn backend(&self) -> &B {
        &self.bits
    }

    /// Node-local `(rank1(p), rank1(q))` through the backend's paired
    /// bit rank.
    #[inline]
    fn node_rank1_pair(&self, node: usize, p: usize, q: usize) -> (usize, usize) {
        let (start, before) = self.nodes.start_and_ones(node);
        let (a, b) = self.bits.rank1_pair(start + p, start + q);
        (a - before, b - before)
    }

    /// Node-local rank1 via the backend's seed-equivalent bit rank.
    #[inline]
    fn node_rank1_reference(&self, node: usize, p: usize) -> usize {
        let (start, before) = self.nodes.start_and_ones(node);
        self.bits.rank1_reference(start + p) - before
    }

    /// [`SymbolSeq::rank`] over the backend's seed-equivalent bit ranks
    /// ([`crate::BitRank::rank1_reference`]) — the baseline path the `hotpath`
    /// bench times against the optimized one in the same binary.
    pub fn rank_reference(&self, w: Symbol, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let Some(code) = self.codes.get(w) else {
            return 0;
        };
        let mut node = 0usize;
        let mut pos = i;
        for k in 0..code.len as usize {
            let bit = code.path_bit(k);
            let r1 = self.node_rank1_reference(node, pos);
            let child = self.nodes.child(node, bit);
            pos = if bit { r1 } else { pos - r1 };
            match child {
                Child::Leaf(_) => return pos,
                Child::Node(i) => node = i as usize,
            }
        }
        pos
    }

    /// [`SymbolSeq::access`] over the backend's seed-equivalent bit
    /// operations; see [`Self::rank_reference`].
    pub fn access_reference(&self, i: usize) -> Symbol {
        debug_assert!(i < self.len);
        let mut node = 0usize;
        let mut pos = i;
        loop {
            let bit = self.bits.get_reference(self.nodes.start(node) + pos);
            let r1 = self.node_rank1_reference(node, pos);
            let child = self.nodes.child(node, bit);
            pos = if bit { r1 } else { pos - r1 };
            match child {
                Child::Leaf(s) => return s,
                Child::Node(i) => node = i as usize,
            }
        }
    }
}

impl<B: BitVecBuild> SymbolSeq for HuffmanWaveletTree<B> {
    fn len(&self) -> usize {
        self.len
    }

    fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// One descent for both positions: per level the two node-local bit
    /// ranks are independent, so pairing them ([`crate::BitRank::rank1_pair`])
    /// overlaps their dependency chains — the backward-search `sp`/`ep`
    /// fast path.
    #[inline]
    fn rank_pair(&self, w: Symbol, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i <= self.len && j <= self.len);
        let Some(code) = self.codes.get(w) else {
            return (0, 0);
        };
        let mut node = 0usize;
        let (mut a, mut b) = (i, j);
        for k in 0..code.len as usize {
            let bit = code.path_bit(k);
            let (ra, rb) = self.node_rank1_pair(node, a, b);
            let child = self.nodes.child(node, bit);
            if bit {
                a = ra;
                b = rb;
            } else {
                a -= ra;
                b -= rb;
            }
            match child {
                Child::Leaf(_) => return (a, b),
                Child::Node(i) => node = i as usize,
            }
        }
        (a, b)
    }

    #[inline]
    fn rank(&self, w: Symbol, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let Some(code) = self.codes.get(w) else {
            return 0; // symbol never occurs
        };
        let mut node = 0usize;
        let mut pos = i;
        for k in 0..code.len as usize {
            let bit = code.path_bit(k);
            let r1 = self.node_rank1(node, pos);
            let child = self.nodes.child(node, bit);
            pos = if bit { r1 } else { pos - r1 };
            match child {
                Child::Leaf(_) => return pos,
                Child::Node(i) => node = i as usize,
            }
        }
        pos
    }

    #[inline]
    fn access(&self, i: usize) -> Symbol {
        self.access_and_rank(i).0
    }

    /// One descent answers both: per level a single fused
    /// [`crate::BitRank::get_and_rank1`] (one block decode instead of the
    /// seed's three prefix walks) steers the walk, and the leaf position
    /// is `rank(symbol, i)` by the wavelet invariant — the whole second
    /// rank descent of an LF step disappears.
    #[inline]
    fn access_and_rank(&self, i: usize) -> (Symbol, usize) {
        debug_assert!(i < self.len);
        let mut node = 0usize;
        let mut pos = i;
        loop {
            let (start, before) = self.nodes.start_and_ones(node);
            let (bit, r1_abs) = self.bits.get_and_rank1(start + pos);
            let r1 = r1_abs - before;
            let child = self.nodes.child(node, bit);
            pos = if bit { r1 } else { pos - r1 };
            match child {
                Child::Leaf(s) => return (s, pos),
                Child::Node(i) => node = i as usize,
            }
        }
    }
}

impl<B: BitVecBuild + Persist> Persist for HuffmanWaveletTree<B> {
    fn persist(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        self.bits.persist(w)?;
        self.nodes.meta.persist(w)?;
        self.nodes.children.persist(w)?;
        self.codes.persist(w)?;
        write_usize(w, self.len)?;
        write_usize(w, self.alphabet_size)
    }

    fn restore(r: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let bits = B::restore(r)?;
        let meta = IntVec::restore(r)?;
        let children = IntVec::restore(r)?;
        let codes = CodeTable::restore(r)?;
        let len = read_usize(r)?;
        let alphabet_size = read_usize(r)?;
        if meta.len() != children.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "wavelet-tree node tables disagree",
            ));
        }
        Ok(Self {
            bits,
            nodes: NodeTable { meta, children },
            codes,
            len,
            alphabet_size,
        })
    }
}

impl<B: BitVecBuild> SpaceUsage for HuffmanWaveletTree<B> {
    fn size_in_bytes(&self) -> usize {
        self.bits.size_in_bytes()
            + self.nodes.meta.size_in_bytes()
            + self.nodes.children.size_in_bytes()
            + self.codes.size_in_bytes()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indices appear in assertion messages
mod tests {
    use super::*;
    use crate::rank_bits::RankBitVec;
    use crate::rrr::RrrBitVec;

    fn pseudo_seq(n: usize, sigma: u32, seed: u64) -> Vec<Symbol> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Skewed: favour small symbols (like RML labels).
                let r = (x >> 33) as u32;
                (r % sigma).min(r % (sigma / 2 + 1))
            })
            .collect()
    }

    fn naive_rank(seq: &[Symbol], w: Symbol, i: usize) -> usize {
        seq[..i].iter().filter(|&&s| s == w).count()
    }

    fn check_backend<B: BitVecBuild>(params: B::Params) {
        let seq = pseudo_seq(800, 12, 99);
        let wt = HuffmanWaveletTree::<B>::with_params(&seq, params);
        assert_eq!(wt.len(), seq.len());
        for i in 0..seq.len() {
            assert_eq!(wt.access(i), seq[i], "access({i})");
        }
        for w in 0..12u32 {
            for &i in &[0usize, 1, 5, 100, 400, 799, 800] {
                assert_eq!(wt.rank(w, i), naive_rank(&seq, w, i), "rank({w},{i})");
            }
        }
    }

    #[test]
    fn rank_access_plain_backend() {
        check_backend::<RankBitVec>(());
    }

    #[test]
    fn rank_access_rrr_backend() {
        for &b in &[15usize, 31, 63] {
            check_backend::<RrrBitVec>(b);
        }
    }

    #[test]
    fn rank_of_absent_symbol_is_zero() {
        let seq = vec![1u32, 2, 3, 1, 2];
        let wt = HuffmanWaveletTree::<RankBitVec>::new(&seq);
        assert_eq!(wt.rank(7, 5), 0);
        assert_eq!(wt.rank(0, 5), 0); // in range but absent
    }

    #[test]
    fn single_symbol_sequence() {
        let seq = vec![5u32; 64];
        let wt = HuffmanWaveletTree::<RrrBitVec>::with_params(&seq, 63);
        assert_eq!(wt.access(13), 5);
        assert_eq!(wt.rank(5, 64), 64);
        assert_eq!(wt.rank(5, 10), 10);
    }

    #[test]
    fn low_entropy_sequence_is_small() {
        // ~95% label 1: the HWT must approach H0 ≈ 0.3 bits/symbol, i.e. be
        // far below the 2 bits/symbol a plain code would need.
        let mut seq = vec![1u32; 100_000];
        for i in (0..seq.len()).step_by(25) {
            seq[i] = 2;
        }
        for i in (0..seq.len()).step_by(101) {
            seq[i] = 3;
        }
        let wt = HuffmanWaveletTree::<RrrBitVec>::with_params(&seq, 63);
        let bps = wt.size_in_bits() as f64 / seq.len() as f64;
        assert!(bps < 0.8, "HWT used {bps:.3} bits/symbol");
    }

    #[test]
    fn large_alphabet_overhead_is_amortised() {
        // 4000 distinct symbols over 200k positions: the concatenated
        // layout must keep total size near H0 + small per-symbol tables,
        // far below the ~100+ bits/symbol a per-node layout would cost.
        let sigma = 4000u32;
        let seq = pseudo_seq(200_000, sigma, 17);
        let wt = HuffmanWaveletTree::<RrrBitVec>::with_params(&seq, 63);
        let bps = wt.size_in_bits() as f64 / seq.len() as f64;
        assert!(bps < 16.0, "HWT used {bps:.2} bits/symbol");
        // Spot-check correctness at this size.
        for &i in &[0usize, 77_777, 199_999] {
            assert_eq!(wt.access(i), seq[i]);
        }
        let w = seq[1234];
        assert_eq!(wt.rank(w, 200_000), naive_rank(&seq, w, 200_000));
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        // Large enough that node partitions and the RRR backend both cross
        // their parallel thresholds; skewed so node sizes vary.
        let seq = pseudo_seq(200_000, 50, 31);
        for &b in &[15usize, 63] {
            let seq_wt = HuffmanWaveletTree::<RrrBitVec>::with_params(&seq, b);
            let mut seq_bytes = Vec::new();
            seq_wt.persist(&mut seq_bytes).unwrap();
            for threads in [2usize, 4, 0] {
                let par_wt = HuffmanWaveletTree::<RrrBitVec>::with_params_mt(&seq, b, threads);
                let mut par_bytes = Vec::new();
                par_wt.persist(&mut par_bytes).unwrap();
                assert_eq!(par_bytes, seq_bytes, "b={b} threads={threads}");
            }
        }
    }

    #[test]
    fn avg_code_len_tracks_entropy() {
        let mut seq = vec![1u32; 10_000];
        for i in (0..seq.len()).step_by(4) {
            seq[i] = 2;
        }
        let wt = HuffmanWaveletTree::<RankBitVec>::new(&seq);
        // Two symbols → every code is exactly 1 bit.
        assert!((wt.avg_code_len() - 1.0).abs() < 1e-9);
    }
}
