//! RRR compressed bit vector (Raman–Raman–Rao, practical variant).
//!
//! This is the "practical RRR" of Navarro & Providel (SEA'12, paper
//! reference \[19\]) that CiNCT uses inside its Huffman-shaped wavelet tree:
//! the bit vector is cut into blocks of `b` bits; each block is represented
//! by its *class* `c` (popcount, fixed width `ceil(log2(b+1))` bits) and an
//! *offset* (index of the block among all `C(b, c)` blocks of that class,
//! variable width `ceil(log2(C(b, c)))` bits). A sampled directory stores
//! cumulative ranks and offset-stream positions every `SAMPLE_RATE` blocks.
//!
//! The supported block sizes are `1 ..= 63` — the paper evaluates
//! `b ∈ {15, 31, 63}` (Fig. 10) and defaults to `b = 63`. Space per bit is
//! `H0(B) + h(b)` with `h(b) = log2(b+1) / b` overhead (paper Eq. (11)),
//! and in-block rank costs `O(b)` time (Theorem 5 footnote).

use crate::bits::BitBuf;
use crate::traits::{BitRank, BitVecBuild, SpaceUsage};

/// Directory sampling rate, in blocks. Space/time knob internal to the
/// structure; the paper only exposes `b`.
const SAMPLE_RATE: usize = 32;

/// Binomial coefficient table `C(n, k)` for `n, k <= 64`.
///
/// `C(63, 31) < 2^63`, so every entry used by block sizes `<= 63` fits in a
/// `u64` without overflow.
#[derive(Debug)]
struct BinomialTable {
    /// `binom[n][k]`, saturating (never actually saturates for n <= 63).
    table: Vec<[u64; 65]>,
}

impl BinomialTable {
    fn new() -> Self {
        let mut table = vec![[0u64; 65]; 65];
        for n in 0..=64usize {
            table[n][0] = 1;
            for k in 1..=n {
                let a = table[n - 1][k - 1];
                let b = if k < n { table[n - 1][k] } else { 0 };
                table[n][k] = a.saturating_add(b);
            }
        }
        Self { table }
    }

    #[inline]
    fn get(&self, n: usize, k: usize) -> u64 {
        if k > n {
            0
        } else {
            self.table[n][k]
        }
    }
}

thread_local! {
    static BINOM: BinomialTable = BinomialTable::new();
}

/// Offset width in bits for class `c` of block size `b`.
#[inline]
fn offset_width(b: usize, c: usize, binom: &BinomialTable) -> usize {
    let count = binom.get(b, c);
    if count <= 1 {
        0
    } else {
        64 - (count - 1).leading_zeros() as usize
    }
}

/// Encode a block of `b` bits (LSB-first in `block`) with class `c` into its
/// enumerative offset.
#[inline]
fn encode_block(block: u64, b: usize, mut c: usize, binom: &BinomialTable) -> u64 {
    let mut offset = 0u64;
    for pos in 0..b {
        if c == 0 {
            break;
        }
        if (block >> pos) & 1 == 1 {
            // Skip all combinations whose bit at `pos` is 0: C(b-1-pos, c).
            offset += binom.get(b - 1 - pos, c);
            c -= 1;
        }
    }
    offset
}

/// Count ones among the first `p` bits of the block encoded by
/// `(c, offset)`. `p <= b`. Runs in `O(p)` — the `O(b)` in-block rank of the
/// paper's practical RRR.
#[inline]
fn decode_prefix_rank(
    mut offset: u64,
    b: usize,
    mut c: usize,
    p: usize,
    binom: &BinomialTable,
) -> usize {
    let mut ones = 0usize;
    for pos in 0..p {
        if c == 0 {
            break;
        }
        let skip = binom.get(b - 1 - pos, c);
        if offset >= skip {
            offset -= skip;
            c -= 1;
            ones += 1;
        }
    }
    ones
}

/// Decode the single bit at position `p` within the block.
#[inline]
fn decode_bit(offset: u64, b: usize, c: usize, p: usize, binom: &BinomialTable) -> bool {
    decode_prefix_rank(offset, b, c, p + 1, binom) > decode_prefix_rank(offset, b, c, p, binom)
}

/// RRR compressed bit vector with runtime block size `b ∈ 1..=63`.
#[derive(Clone, Debug)]
pub struct RrrBitVec {
    /// Block size in bits.
    b: usize,
    /// Bits needed to store a class value: ceil(log2(b+1)).
    class_width: usize,
    /// Total bits represented.
    len: usize,
    /// Packed classes, `class_width` bits each.
    classes: BitBuf,
    /// Concatenated variable-width offsets.
    offsets: BitBuf,
    /// Every SAMPLE_RATE blocks: cumulative ones before the block.
    sample_ranks: Vec<u64>,
    /// Every SAMPLE_RATE blocks: bit position in `offsets` of the block.
    sample_ptrs: Vec<u64>,
    ones: usize,
}

impl RrrBitVec {
    /// Compress `bits` with block size `b` (clamped to `1..=63`).
    pub fn new(bits: &BitBuf, b: usize) -> Self {
        let b = b.clamp(1, 63);
        BINOM.with(|binom| Self::build_with(bits, b, binom))
    }

    fn build_with(bits: &BitBuf, b: usize, binom: &BinomialTable) -> Self {
        let len = bits.len();
        let n_blocks = len.div_ceil(b);
        let class_width = (64 - (b as u64).leading_zeros() as usize).max(1);
        let mut classes = BitBuf::with_capacity(n_blocks * class_width);
        let mut offsets = BitBuf::new();
        let mut sample_ranks = Vec::with_capacity(n_blocks / SAMPLE_RATE + 1);
        let mut sample_ptrs = Vec::with_capacity(n_blocks / SAMPLE_RATE + 1);
        let mut ones = 0u64;
        for blk in 0..n_blocks {
            if blk % SAMPLE_RATE == 0 {
                sample_ranks.push(ones);
                sample_ptrs.push(offsets.len() as u64);
            }
            let start = blk * b;
            let width = b.min(len - start);
            // Bits beyond `len` in the last block are implicit zeros.
            let word = bits.get_bits(start, width);
            let c = word.count_ones() as usize;
            classes.push_bits(c as u64, class_width);
            let ow = offset_width(b, c, binom);
            let off = encode_block(word, b, c, binom);
            offsets.push_bits(off, ow);
            ones += c as u64;
        }
        classes.shrink_to_fit();
        offsets.shrink_to_fit();
        Self {
            b,
            class_width,
            len,
            classes,
            offsets,
            sample_ranks,
            sample_ptrs,
            ones: ones as usize,
        }
    }

    /// The block size `b` this vector was built with.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Decompose into raw fields (persistence support): `(b, len, classes,
    /// offsets, sample_ranks, sample_ptrs, ones)`.
    pub fn raw_parts(&self) -> (usize, usize, &BitBuf, &BitBuf, &[u64], &[u64], usize) {
        (
            self.b,
            self.len,
            &self.classes,
            &self.offsets,
            &self.sample_ranks,
            &self.sample_ptrs,
            self.ones,
        )
    }

    /// Reassemble from raw fields; `None` on obviously inconsistent shapes.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        b: usize,
        len: usize,
        classes: BitBuf,
        offsets: BitBuf,
        sample_ranks: Vec<u64>,
        sample_ptrs: Vec<u64>,
        ones: usize,
    ) -> Option<Self> {
        if !(1..=63).contains(&b) || ones > len {
            return None;
        }
        let class_width = (64 - (b as u64).leading_zeros() as usize).max(1);
        let n_blocks = len.div_ceil(b);
        if classes.len() != n_blocks * class_width {
            return None;
        }
        if sample_ranks.len() != sample_ptrs.len() {
            return None;
        }
        Some(Self {
            b,
            class_width,
            len,
            classes,
            offsets,
            sample_ranks,
            sample_ptrs,
            ones,
        })
    }

    #[inline]
    fn class_of(&self, blk: usize) -> usize {
        self.classes
            .get_bits(blk * self.class_width, self.class_width) as usize
    }

    /// Walk blocks from the preceding sample to block `target_blk`, returning
    /// `(ones_before_block, offset_ptr_of_block, class_of_block)`.
    #[inline]
    fn seek(&self, target_blk: usize, binom: &BinomialTable) -> (u64, u64, usize) {
        let sample = target_blk / SAMPLE_RATE;
        let mut ones = self.sample_ranks[sample];
        let mut ptr = self.sample_ptrs[sample];
        for blk in (sample * SAMPLE_RATE)..target_blk {
            let c = self.class_of(blk);
            ones += c as u64;
            ptr += offset_width(self.b, c, binom) as u64;
        }
        (ones, ptr, self.class_of(target_blk))
    }
}

impl BitRank for RrrBitVec {
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        BINOM.with(|binom| {
            let blk = i / self.b;
            let (_, ptr, c) = self.seek(blk, binom);
            let ow = offset_width(self.b, c, binom);
            let off = self.offsets.get_bits(ptr as usize, ow);
            decode_bit(off, self.b, c, i % self.b, binom)
        })
    }

    #[inline]
    fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        if i == 0 {
            return 0;
        }
        if i == self.len {
            return self.ones;
        }
        BINOM.with(|binom| {
            let blk = i / self.b;
            let (ones, ptr, c) = self.seek(blk, binom);
            let p = i % self.b;
            if p == 0 {
                return ones as usize;
            }
            let ow = offset_width(self.b, c, binom);
            let off = self.offsets.get_bits(ptr as usize, ow);
            ones as usize + decode_prefix_rank(off, self.b, c, p, binom)
        })
    }

    fn count_ones(&self) -> usize {
        self.ones
    }
}

impl SpaceUsage for RrrBitVec {
    fn size_in_bytes(&self) -> usize {
        self.classes.size_in_bytes()
            + self.offsets.size_in_bytes()
            + self.sample_ranks.capacity() * 8
            + self.sample_ptrs.capacity() * 8
            + std::mem::size_of::<usize>() * 4
    }
}

impl BitVecBuild for RrrBitVec {
    /// The RRR block size `b` (the paper's only CiNCT parameter, §III-C).
    type Params = usize;

    fn default_params() -> Self::Params {
        63
    }

    fn build(bits: &BitBuf, params: Self::Params) -> Self {
        Self::new(bits, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bits(n: usize, density_pct: u64, seed: u64) -> BitBuf {
        let mut b = BitBuf::new();
        let mut x = seed | 1;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.push((x >> 33) % 100 < density_pct);
        }
        b
    }

    fn check(bits: &BitBuf, b: usize) {
        let rrr = RrrBitVec::new(bits, b);
        assert_eq!(rrr.len(), bits.len());
        let mut ones = 0usize;
        for i in 0..=bits.len() {
            assert_eq!(rrr.rank1(i), ones, "rank1({i}) b={b}");
            if i < bits.len() {
                assert_eq!(rrr.get(i), bits.get(i), "get({i}) b={b}");
                ones += bits.get(i) as usize;
            }
        }
        assert_eq!(rrr.count_ones(), ones);
    }

    #[test]
    fn rank_access_paper_block_sizes() {
        for &b in &[15usize, 31, 63] {
            check(&pseudo_bits(2000, 50, 7), b);
            check(&pseudo_bits(2000, 5, 11), b);
            check(&pseudo_bits(2000, 95, 13), b);
        }
    }

    #[test]
    fn odd_block_sizes_and_lengths() {
        for &b in &[1usize, 2, 3, 7, 40, 63] {
            for &n in &[0usize, 1, 62, 63, 64, 65, 1000, 1024] {
                check(&pseudo_bits(n, 30, b as u64 * 1000 + n as u64 + 1), b);
            }
        }
    }

    #[test]
    fn all_zero_and_all_one() {
        for &b in &[15usize, 63] {
            check(&BitBuf::from_bools(std::iter::repeat_n(false, 500)), b);
            check(&BitBuf::from_bools(std::iter::repeat_n(true, 500)), b);
        }
    }

    #[test]
    fn compresses_biased_bits() {
        // 2% density: RRR must be far below 1 bit/bit.
        let bits = pseudo_bits(200_000, 2, 5);
        let rrr = RrrBitVec::new(&bits, 63);
        let bits_per_bit = rrr.size_in_bits() as f64 / bits.len() as f64;
        assert!(bits_per_bit < 0.35, "RRR used {bits_per_bit:.3} bits/bit");
    }

    #[test]
    fn overhead_grows_as_block_shrinks() {
        // h(b) = lg(b+1)/b decreases with b, so b=63 must be smaller than b=15
        // on compressible data.
        let bits = pseudo_bits(100_000, 10, 3);
        let small_b = RrrBitVec::new(&bits, 15).size_in_bytes();
        let large_b = RrrBitVec::new(&bits, 63).size_in_bytes();
        assert!(large_b < small_b, "b=63 {large_b} >= b=15 {small_b}");
    }

    #[test]
    fn binomial_sanity() {
        let t = BinomialTable::new();
        assert_eq!(t.get(0, 0), 1);
        assert_eq!(t.get(63, 0), 1);
        assert_eq!(t.get(63, 63), 1);
        assert_eq!(t.get(5, 2), 10);
        assert_eq!(t.get(63, 31), 916312070471295267);
        assert_eq!(t.get(2, 3), 0);
    }

    #[test]
    fn encode_decode_block_exhaustive_small() {
        let binom = BinomialTable::new();
        let b = 10;
        for word in 0u64..(1 << b) {
            let c = word.count_ones() as usize;
            let off = encode_block(word, b, c, &binom);
            assert!(off < binom.get(b, c));
            for p in 0..=b {
                let expect = (word & ((1u64 << p) - 1)).count_ones() as usize;
                assert_eq!(decode_prefix_rank(off, b, c, p, &binom), expect);
            }
            for p in 0..b {
                assert_eq!(decode_bit(off, b, c, p, &binom), (word >> p) & 1 == 1);
            }
        }
    }
}
