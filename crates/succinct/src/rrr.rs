//! RRR compressed bit vector (Raman–Raman–Rao, practical variant).
//!
//! This is the "practical RRR" of Navarro & Providel (SEA'12, paper
//! reference \[19\]) that CiNCT uses inside its Huffman-shaped wavelet tree:
//! the bit vector is cut into blocks of `b` bits; each block is represented
//! by its *class* `c` (popcount, fixed width `ceil(log2(b+1))` bits) and an
//! *offset* (index of the block among all `C(b, c)` blocks of that class,
//! variable width `ceil(log2(C(b, c)))` bits). A sampled directory stores
//! cumulative ranks and offset-stream positions.
//!
//! The supported block sizes are `1 ..= 63` — the paper evaluates
//! `b ∈ {15, 31, 63}` (Fig. 10) and defaults to `b = 63`. Space per bit is
//! `H0(B) + h(b)` with `h(b) = log2(b+1) / b` overhead (paper Eq. (11)),
//! and in-block rank costs `O(b)` time (Theorem 5 footnote).
//!
//! # Hot-path engineering (vs the straightforward implementation)
//!
//! `rank1`/`get` sit at the bottom of every wavelet-tree rank, i.e. of
//! every CiNCT query, so several constant-factor layers are applied:
//!
//! 1. **Three-level directory in seed-equal space** — absolute 64-bit
//!    counters every [`SUPER_RATE`] blocks, 16+16-bit relative counters
//!    packed in a `u32` every [`SAMPLE_RATE`] blocks, and packed minor
//!    entries every [`MINOR_RATE`] blocks. The seed spent the same ≈ 4
//!    bits/block on two plain `u64` arrays every 32 blocks and then
//!    scanned up to 31 block classes per query; this layout scans at most
//!    `MINOR_RATE − 1 = 7`.
//! 2. **Table-driven scan** — the residual class scan reads all ≤ 7 packed
//!    classes with a *single* `get_bits` word fetch and adds offset widths
//!    from a process-wide `u8` lookup table ([`offset_width_table`])
//!    instead of probing the binomial table per block.
//! 3. **Transposed binomial rows** — the enumerative in-block walk probes
//!    `C(rem − 1, c)` with `rem` descending and `c` fixed until a one is
//!    consumed; [`binom_rows`]`[c][rem − 1]` makes those probes consecutive
//!    `u64`s (≈ 8 per cache line) where the natural `[n][k]` layout touched
//!    a fresh 520-byte-strided line per step.
//! 4. **Branchless / fused decodes** — in-block rank reconstructs the
//!    prefix in a branchless walk (dense blocks make a per-bit conditional
//!    mispredict every other step), jumps zero runs by binary search when
//!    the block is sparse, answers `sp`/`ep` pairs that narrow into one
//!    block with a single decode + two popcounts
//!    ([`RrrBitVec::rank1_pair`]), and serves wavelet `access` descents
//!    `(bit, rank)` from one decode ([`RrrBitVec::get_and_rank1`]).
//!
//! The binomial table itself is a process-wide [`OnceLock`] static shared
//! by builds and queries on every thread.
//!
//! The straightforward seed algorithms survive as
//! [`RrrBitVec::rank1_reference`] / [`RrrBitVec::get_reference`]; property
//! tests pin the fast path to them and `cinct_bench`'s `hotpath` binary
//! measures both in one build (see `PERFORMANCE.md`).

use crate::bits::BitBuf;
use crate::int_vec::IntVec;
use crate::traits::{BitRank, BitVecBuild, SpaceUsage};
use std::sync::OnceLock;

/// Super sample rate, in blocks: absolute 64-bit `(ones, offset-bits)`.
const SUPER_RATE: usize = 128;

/// Major sample rate, in blocks: 16+16-bit counters relative to the super
/// sample, packed in one `u32`. `(SUPER_RATE − SAMPLE_RATE) · 63 < 2¹⁶`
/// keeps the halves in range for every supported `b`.
const SAMPLE_RATE: usize = 32;

/// Minor directory rate, in blocks. Must divide [`SAMPLE_RATE`]; entries
/// at major boundaries are implicit (always zero) and not stored, so each
/// major group stores `SAMPLE_RATE / MINOR_RATE − 1` packed entries.
const MINOR_RATE: usize = 8;

/// Stored minor entries per major sample group.
const MINORS_PER_SAMPLE: usize = SAMPLE_RATE / MINOR_RATE - 1;

/// Binomial coefficient table `C(n, k)` for `n, k <= 64`.
///
/// `C(63, 31) < 2^63`, so every entry used by block sizes `<= 63` fits in a
/// `u64` without overflow.
#[derive(Debug)]
struct BinomialTable {
    /// `binom[n][k]`, saturating (never actually saturates for n <= 63).
    table: Vec<[u64; 65]>,
}

impl BinomialTable {
    fn new() -> Self {
        let mut table = vec![[0u64; 65]; 65];
        for n in 0..=64usize {
            table[n][0] = 1;
            for k in 1..=n {
                let a = table[n - 1][k - 1];
                let b = if k < n { table[n - 1][k] } else { 0 };
                table[n][k] = a.saturating_add(b);
            }
        }
        Self { table }
    }

    #[inline]
    fn get(&self, n: usize, k: usize) -> u64 {
        if k > n {
            0
        } else {
            self.table[n][k]
        }
    }
}

/// Process-wide binomial table: built once, shared by every build and query
/// on every thread (the seed kept a copy per thread via `thread_local!`,
/// re-materializing the 65×65 table for each new thread).
static BINOM: OnceLock<BinomialTable> = OnceLock::new();

#[inline]
fn binom() -> &'static BinomialTable {
    BINOM.get_or_init(BinomialTable::new)
}

thread_local! {
    /// The seed's per-thread binomial table, kept so the `*_reference`
    /// paths reproduce the seed's cost profile exactly (one TLS access per
    /// bit-level query, a fresh 65×65 materialization per thread).
    static BINOM_TLS: BinomialTable = BinomialTable::new();
}

/// Process-wide offset-width lookup: `offset_width_table()[b][c]` =
/// `ceil(log2(C(b, c)))` for `b, c <= 63`. 4 KiB, cache-resident; turns the
/// per-block width computation of a directory scan into one `u8` load.
static WIDTHS: OnceLock<[[u8; 64]; 64]> = OnceLock::new();

#[inline]
fn offset_width_table() -> &'static [[u8; 64]; 64] {
    WIDTHS.get_or_init(|| {
        let binom = binom();
        let mut t = [[0u8; 64]; 64];
        for (b, row) in t.iter_mut().enumerate() {
            for (c, w) in row.iter_mut().enumerate().take(b + 1) {
                *w = offset_width(b, c, binom) as u8;
            }
        }
        t
    })
}

/// Process-wide **transposed** binomial table: `binom_rows()[k][n] =
/// C(n, k)` for `n, k <= 63` (0 where `n < k`). See module docs, layer 3.
static BINOM_T: OnceLock<[[u64; 64]; 64]> = OnceLock::new();

#[inline]
fn binom_rows() -> &'static [[u64; 64]; 64] {
    BINOM_T.get_or_init(|| {
        let binom = binom();
        let mut t = [[0u64; 64]; 64];
        for (k, row) in t.iter_mut().enumerate() {
            for (n, v) in row.iter_mut().enumerate() {
                *v = binom.get(n, k);
            }
        }
        t
    })
}

/// Offset width in bits for class `c` of block size `b`.
#[inline]
fn offset_width(b: usize, c: usize, binom: &BinomialTable) -> usize {
    let count = binom.get(b, c);
    if count <= 1 {
        0
    } else {
        64 - (count - 1).leading_zeros() as usize
    }
}

/// Encode a block of `b` bits (LSB-first in `block`) with class `c` into
/// its enumerative offset. Only set bits contribute (skipping a zero at
/// `pos` adds `C(b-1-pos, c)` exactly when the bit at `pos` is one), so
/// the walk is popcount-guided — `c` table adds per block, not `b` — and
/// the skewed wavelet bitmaps CiNCT builds (H0 ≪ 1) encode in a handful
/// of steps. `c` must equal `block.count_ones()`.
#[inline]
fn encode_block(mut block: u64, b: usize, mut c: usize) -> u64 {
    let rows = binom_rows();
    let mut offset = 0u64;
    while block != 0 {
        let pos = block.trailing_zeros() as usize;
        offset += rows[c & 63][(b - 1 - pos) & 63];
        c -= 1;
        block &= block - 1;
    }
    offset
}

/// Count ones among the first `p` bits of the block encoded by
/// `(c, offset)`. `p <= b`. Runs in `O(p)` — the `O(b)` in-block rank of the
/// paper's practical RRR, one table probe and one branch per bit. Kept as
/// the reference the fast path is property-tested against.
#[inline]
fn decode_prefix_rank(
    mut offset: u64,
    b: usize,
    mut c: usize,
    p: usize,
    binom: &BinomialTable,
) -> usize {
    let mut ones = 0usize;
    for pos in 0..p {
        if c == 0 {
            break;
        }
        let skip = binom.get(b - 1 - pos, c);
        if offset >= skip {
            offset -= skip;
            c -= 1;
            ones += 1;
        }
    }
    ones
}

/// Per-iteration strategy switch for the fast decodes: jump zero runs when
/// the expected run (`remaining / (c + 1)`) dwarfs a ~log₂ b binary
/// search, i.e. when `c * JUMP_FACTOR ≤ remaining`.
const JUMP_FACTOR: usize = 8;

/// Position of the next one from `pos` on, given the walk state, found by
/// binary-searching the increasing row `binom_rows()[c]`: a one sits at the
/// first `pos'` with `offset ≥ C(b−1−pos', c)`, and `row[c−1] = 0`
/// guarantees a valid lower bound. Returns `(one_pos, row_index)`.
#[inline]
fn next_one_position(offset: u64, b: usize, c: usize, pos: usize) -> (usize, usize) {
    let row = &binom_rows()[c & 63];
    let (mut lo, mut hi) = (c - 1, b - 1 - pos);
    while lo < hi {
        let mid = hi - (hi - lo) / 2;
        if row[mid & 63] <= offset {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (b - 1 - lo, lo)
}

/// Reconstruct the first `p` bits of the block encoded by `(c, offset)` as
/// a machine word (bit `k` of the result = block bit `k`), hybrid walk:
/// branchless linear steps on dense stretches (a per-bit conditional would
/// mispredict every other step), zero-run jumps when the block is sparse.
/// In-block rank/get are then popcount/bit-test on the word. Two
/// structural properties avoid special cases: a consumed lane (`c == 0`)
/// has `offset == 0 < C(m, 0) = 1`, so it no-ops, and an all-ones suffix
/// (`remaining == c`) has `C(remaining − 1, c) = 0 ≤ offset`, so every
/// remaining step takes a one. Indexes are masked to 6 bits (`c`, `m` ≤ 63
/// by construction) so the loops carry no panic branches.
#[inline]
fn decode_prefix_word(mut offset: u64, b: usize, mut c: usize, p: usize) -> u64 {
    debug_assert!(p <= b && b <= 63);
    let rows = binom_rows();
    let mut word = 0u64;
    let mut pos = 0usize;
    // Strategy picked once per block (not per step — the check would tax
    // every dense iteration): dense blocks take the pipelined branchless
    // walk, sparse ones jump zero runs.
    if c * JUMP_FACTOR > p {
        // Software-pipelined: the next step's class is this step's `c` or
        // `c − 1`, so both table candidates are loaded with addresses that
        // depend only on the already-resolved class and the taken one is
        // selected by a conditional move — the L1 load latency sits off
        // the loop-carried `offset`/`take` chain. A wrapped `c − 1` when
        // `c` hits 0 reads a harmless in-bounds garbage candidate (never
        // selected: a consumed lane's skip is C(m, 0) = 1 > offset = 0).
        let mut a = rows[c & 63][(b - 1) & 63];
        while c > 0 && pos < p {
            let mnext = (b.wrapping_sub(2 + pos)) & 63;
            let l_keep = rows[c & 63][mnext];
            let l_down = rows[c.wrapping_sub(1) & 63][mnext];
            let take = (offset >= a) as u64;
            offset -= a & take.wrapping_neg();
            word |= take << pos;
            c -= take as usize;
            a = if take == 1 { l_down } else { l_keep };
            pos += 1;
        }
        return word;
    }
    while c > 0 && pos < p {
        let (one_pos, m) = next_one_position(offset, b, c, pos);
        if one_pos >= p {
            return word; // next one is beyond the prefix
        }
        word |= 1u64 << one_pos;
        offset -= rows[c & 63][m & 63];
        c -= 1;
        pos = one_pos + 1;
    }
    word
}

/// Dense pipelined tally from a mid-walk state `(offset, c)` at position
/// `pos`, counting ones in `[pos, p)`. Same software pipeline as
/// [`decode_prefix_word`], minus the word. Returns the tally plus the walk
/// state at `p` so a caller can resume (the state is live loop state —
/// returning it is free).
#[inline]
fn dense_ones_walk(
    mut offset: u64,
    b: usize,
    mut c: usize,
    mut pos: usize,
    p: usize,
) -> (usize, u64, usize) {
    let rows = binom_rows();
    let mut ones = 0usize;
    let mut a = rows[c & 63][(b.wrapping_sub(1 + pos)) & 63];
    // No `c > 0` early exit: a consumed lane no-ops (skip = C(m, 0) = 1 >
    // offset = 0), and the fixed trip count lets the compiler unroll.
    while pos < p {
        let mnext = (b.wrapping_sub(2 + pos)) & 63;
        let l_keep = rows[c & 63][mnext];
        let l_down = rows[c.wrapping_sub(1) & 63][mnext];
        let take = (offset >= a) as usize;
        offset -= a & (take as u64).wrapping_neg();
        c -= take;
        ones += take;
        a = if take == 1 { l_down } else { l_keep };
        pos += 1;
    }
    (ones, offset, c)
}

/// [`dense_ones_walk`] when only the tally is needed.
#[inline]
fn dense_ones_tail(offset: u64, b: usize, c: usize, pos: usize, p: usize) -> usize {
    dense_ones_walk(offset, b, c, pos, p).0
}

/// Ones among the first `p1` and first `p2 >= p1` bits of one block, in a
/// single resumed walk (no word is materialized) — the same-block
/// `sp`/`ep` rank pair.
#[inline]
fn decode_prefix_ones2(offset: u64, b: usize, c: usize, p1: usize, p2: usize) -> (usize, usize) {
    debug_assert!(p1 <= p2 && p2 <= b);
    if c * JUMP_FACTOR > p2 {
        let (ones1, off_mid, c_mid) = dense_ones_walk(offset, b, c, 0, p1);
        let ones2 = ones1 + dense_ones_tail(off_mid, b, c_mid, p1, p2);
        return (ones1, ones2);
    }
    let word = decode_prefix_word(offset, b, c, p2);
    (
        (word & low_mask(p1)).count_ones() as usize,
        (word & low_mask(p2)).count_ones() as usize,
    )
}

/// [`decode_prefix_word`] specialized to the count of ones (no word is
/// materialized — pure `rank1` lanes don't need the bits, only the tally).
#[inline]
fn decode_prefix_ones(mut offset: u64, b: usize, mut c: usize, p: usize) -> usize {
    debug_assert!(p <= b && b <= 63);
    if c * JUMP_FACTOR > p {
        return dense_ones_tail(offset, b, c, 0, p);
    }
    let rows = binom_rows();
    let mut ones = 0usize;
    let mut pos = 0usize;
    while c > 0 && pos < p {
        let (one_pos, m) = next_one_position(offset, b, c, pos);
        if one_pos >= p {
            return ones;
        }
        offset -= rows[c & 63][m & 63];
        c -= 1;
        ones += 1;
        pos = one_pos + 1;
    }
    ones
}

/// Two [`decode_prefix_ones`] walks fused into one lockstep loop when both
/// lanes are dense (independent chains overlap in the out-of-order core);
/// sparse lanes fall back to their own zero-run-jumping walks.
#[inline]
fn decode_prefix_ones_pair(
    mut off1: u64,
    mut c1: usize,
    p1: usize,
    mut off2: u64,
    mut c2: usize,
    p2: usize,
    b: usize,
) -> (usize, usize) {
    debug_assert!(p1 <= b && p2 <= b && b <= 63);
    if c1 * JUMP_FACTOR <= p1 || c2 * JUMP_FACTOR <= p2 {
        return (
            decode_prefix_ones(off1, b, c1, p1),
            decode_prefix_ones(off2, b, c2, p2),
        );
    }
    let rows = binom_rows();
    let (mut ones1, mut ones2) = (0usize, 0usize);
    // Phase 1: both lanes to the shorter prefix, two software-pipelined
    // lanes in lockstep (see [`decode_prefix_word`]) with no per-lane
    // bound checks. Phase 2: the longer lane finishes alone.
    let pmin = p1.min(p2);
    let mut pos = 0usize;
    let mut a1 = rows[c1 & 63][(b - 1) & 63];
    let mut a2 = rows[c2 & 63][(b - 1) & 63];
    // Fixed trip count (consumed lanes no-op; see `dense_ones_tail`).
    while pos < pmin {
        let mnext = (b.wrapping_sub(2 + pos)) & 63;
        let l1_keep = rows[c1 & 63][mnext];
        let l1_down = rows[c1.wrapping_sub(1) & 63][mnext];
        let l2_keep = rows[c2 & 63][mnext];
        let l2_down = rows[c2.wrapping_sub(1) & 63][mnext];
        let t1 = (off1 >= a1) as usize;
        let t2 = (off2 >= a2) as usize;
        off1 -= a1 & (t1 as u64).wrapping_neg();
        off2 -= a2 & (t2 as u64).wrapping_neg();
        c1 -= t1;
        c2 -= t2;
        ones1 += t1;
        ones2 += t2;
        a1 = if t1 == 1 { l1_down } else { l1_keep };
        a2 = if t2 == 1 { l2_down } else { l2_keep };
        pos += 1;
    }
    if p1 > pos {
        ones1 += dense_ones_tail(off1, b, c1, pos, p1);
    } else if p2 > pos {
        ones2 += dense_ones_tail(off2, b, c2, pos, p2);
    }
    (ones1, ones2)
}

/// The low `p < 64` bits set.
#[inline]
fn low_mask(p: usize) -> u64 {
    (1u64 << p) - 1
}

/// Decode the single bit at position `p` within the block (reference
/// implementation, two prefix-rank walks like the seed's).
#[inline]
fn decode_bit_reference(offset: u64, b: usize, c: usize, p: usize, binom: &BinomialTable) -> bool {
    decode_prefix_rank(offset, b, c, p + 1, binom) > decode_prefix_rank(offset, b, c, p, binom)
}

/// The derived rank directory over the packed classes; rebuilt on load,
/// never persisted.
#[derive(Clone, Debug)]
struct Directory {
    /// Every SUPER_RATE blocks: absolute cumulative ones before the block.
    super_ranks: Vec<u64>,
    /// Every SUPER_RATE blocks: absolute bit position in `offsets`.
    super_ptrs: Vec<u64>,
    /// Every SAMPLE_RATE blocks: `(offset_bits << 16) | ones`, relative to
    /// the enclosing super sample.
    majors: Vec<u32>,
    /// Every MINOR_RATE blocks not on a major boundary:
    /// `(offset_bits << minor_ones_bits) | ones`, relative to the
    /// enclosing major sample.
    minors: IntVec,
    /// Low-bit width of the `ones` half of a packed minor entry.
    minor_ones_bits: usize,
}

/// Packed widths of a minor directory entry for block size `b`:
/// `(ones_bits, total_entry_bits)`. A stored entry covers at most
/// `SAMPLE_RATE − MINOR_RATE` blocks of cumulative counts.
#[inline]
fn minor_entry_shape(b: usize) -> (usize, usize) {
    let max_blocks = (SAMPLE_RATE - MINOR_RATE) as u64;
    let ones_bits = IntVec::width_for(max_blocks * b as u64);
    let max_ow = offset_width_table()[b][b / 2] as u64;
    let ptr_bits = IntVec::width_for(max_blocks * max_ow);
    (ones_bits, ones_bits + ptr_bits)
}

/// Build the three-level directory over packed `classes` (`n_blocks`
/// entries of `class_width` bits). Also returns the totals the classes
/// imply: `(ones, offset_bits)` — callers validate stored payloads
/// against them.
fn build_directory(
    b: usize,
    n_blocks: usize,
    classes: &BitBuf,
    class_width: usize,
) -> (Directory, u64, u64) {
    let (ones_bits, entry_bits) = minor_entry_shape(b);
    let widths = offset_width_table();
    let mut super_ranks = Vec::with_capacity(n_blocks / SUPER_RATE + 1);
    let mut super_ptrs = Vec::with_capacity(n_blocks / SUPER_RATE + 1);
    let mut majors = Vec::with_capacity(n_blocks / SAMPLE_RATE + 1);
    let mut minors = IntVec::with_capacity(
        entry_bits,
        n_blocks / SAMPLE_RATE * MINORS_PER_SAMPLE + MINORS_PER_SAMPLE,
    );
    let (mut ones, mut ptr) = (0u64, 0u64);
    let (mut sup_ones, mut sup_ptr) = (0u64, 0u64);
    let (mut maj_ones, mut maj_ptr) = (0u64, 0u64);
    for blk in 0..n_blocks {
        if blk % SUPER_RATE == 0 {
            super_ranks.push(ones);
            super_ptrs.push(ptr);
            sup_ones = ones;
            sup_ptr = ptr;
        }
        if blk % SAMPLE_RATE == 0 {
            debug_assert!(ptr - sup_ptr < (1 << 16) && ones - sup_ones < (1 << 16));
            majors.push((((ptr - sup_ptr) as u32) << 16) | (ones - sup_ones) as u32);
            maj_ones = ones;
            maj_ptr = ptr;
        } else if blk % MINOR_RATE == 0 {
            minors.push(((ptr - maj_ptr) << ones_bits) | (ones - maj_ones));
        }
        let c = classes.get_bits(blk * class_width, class_width) as usize;
        ones += c as u64;
        ptr += widths[b][c & 63] as u64;
    }
    minors.shrink_to_fit();
    (
        Directory {
            super_ranks,
            super_ptrs,
            majors,
            minors,
            minor_ones_bits: ones_bits,
        },
        ones,
        ptr,
    )
}

impl SpaceUsage for Directory {
    fn size_in_bytes(&self) -> usize {
        self.super_ranks.capacity() * 8
            + self.super_ptrs.capacity() * 8
            + self.majors.capacity() * 4
            + self.minors.size_in_bytes()
    }
}

/// RRR compressed bit vector with runtime block size `b ∈ 1..=63`.
#[derive(Clone, Debug)]
pub struct RrrBitVec {
    /// Block size in bits.
    b: usize,
    /// Bits needed to store a class value: ceil(log2(b+1)).
    class_width: usize,
    /// Total bits represented.
    len: usize,
    /// Packed classes, `class_width` bits each.
    classes: BitBuf,
    /// Concatenated variable-width offsets.
    offsets: BitBuf,
    /// Derived rank directory (see [`Directory`]).
    dir: Directory,
    ones: usize,
}

/// Below this many blocks a sharded build costs more in thread spawns than
/// the encode saves.
const PAR_BUILD_MIN_BLOCKS: usize = 1 << 13;

/// Encode blocks `[start_blk, end_blk)` of `bits` into packed classes +
/// offsets; the shard kernel of both the sequential and the parallel build
/// (identical output streams by construction). Returns the shard's ones.
fn encode_blocks(
    bits: &BitBuf,
    b: usize,
    class_width: usize,
    start_blk: usize,
    end_blk: usize,
    binom: &BinomialTable,
) -> (BitBuf, BitBuf, u64) {
    let len = bits.len();
    let mut classes = BitBuf::with_capacity((end_blk - start_blk) * class_width);
    let mut offsets = BitBuf::new();
    let mut ones = 0u64;
    for blk in start_blk..end_blk {
        let start = blk * b;
        let width = b.min(len - start);
        // Bits beyond `len` in the last block are implicit zeros.
        let word = bits.get_bits(start, width);
        let c = word.count_ones() as usize;
        classes.push_bits(c as u64, class_width);
        let ow = offset_width(b, c, binom);
        let off = encode_block(word, b, c);
        offsets.push_bits(off, ow);
        ones += c as u64;
    }
    (classes, offsets, ones)
}

impl RrrBitVec {
    /// Compress `bits` with block size `b` (clamped to `1..=63`).
    pub fn new(bits: &BitBuf, b: usize) -> Self {
        let b = b.clamp(1, 63);
        Self::build_with(bits, b, binom())
    }

    /// [`RrrBitVec::new`] with block classification + enumerative encoding
    /// sharded across up to `threads` workers (`0` = available
    /// parallelism). Shards are contiguous block ranges stitched back in
    /// block order, so the packed class/offset streams — and therefore the
    /// serialized bytes — are **identical** to a sequential build's at any
    /// thread count (pinned by tests).
    pub fn with_threads(bits: &BitBuf, b: usize, threads: usize) -> Self {
        let b = b.clamp(1, 63);
        let threads = crate::parbuild::effective_threads(threads);
        let n_blocks = bits.len().div_ceil(b);
        if threads <= 1 || n_blocks < PAR_BUILD_MIN_BLOCKS {
            return Self::build_with(bits, b, binom());
        }
        let binom = binom();
        let per = n_blocks.div_ceil(threads);
        let n_shards = n_blocks.div_ceil(per);
        let class_width = (64 - (b as u64).leading_zeros() as usize).max(1);
        let mut shards: Vec<Option<(BitBuf, BitBuf, u64)>> = vec![None; n_shards];
        rayon::scope(|s| {
            for (k, slot) in shards.iter_mut().enumerate() {
                s.spawn(move |_| {
                    let start_blk = k * per;
                    let end_blk = ((k + 1) * per).min(n_blocks);
                    *slot = Some(encode_blocks(
                        bits,
                        b,
                        class_width,
                        start_blk,
                        end_blk,
                        binom,
                    ));
                });
            }
        });
        let mut classes = BitBuf::with_capacity(n_blocks * class_width);
        let mut offsets = BitBuf::new();
        let mut ones = 0u64;
        for shard in shards {
            let (c, o, n1) = shard.expect("every shard spawned");
            classes.append(&c);
            offsets.append(&o);
            ones += n1;
        }
        Self::assemble(bits.len(), b, class_width, classes, offsets, ones)
    }

    fn build_with(bits: &BitBuf, b: usize, binom: &BinomialTable) -> Self {
        let n_blocks = bits.len().div_ceil(b);
        let class_width = (64 - (b as u64).leading_zeros() as usize).max(1);
        let (classes, offsets, ones) = encode_blocks(bits, b, class_width, 0, n_blocks, binom);
        Self::assemble(bits.len(), b, class_width, classes, offsets, ones)
    }

    /// Final assembly shared by the sequential and sharded builds: shrink
    /// the streams, derive the rank directory, cross-check totals.
    fn assemble(
        len: usize,
        b: usize,
        class_width: usize,
        mut classes: BitBuf,
        mut offsets: BitBuf,
        ones: u64,
    ) -> Self {
        let n_blocks = len.div_ceil(b);
        classes.shrink_to_fit();
        offsets.shrink_to_fit();
        let (dir, dir_ones, dir_ptr) = build_directory(b, n_blocks, &classes, class_width);
        debug_assert_eq!(ones, dir_ones);
        debug_assert_eq!(offsets.len() as u64, dir_ptr);
        Self {
            b,
            class_width,
            len,
            classes,
            offsets,
            dir,
            ones: ones as usize,
        }
    }

    /// The block size `b` this vector was built with.
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Decompose into the persisted fields: `(b, len, classes, offsets,
    /// ones)`. The rank directory is derived state and not part of the
    /// persisted shape (it is rebuilt by [`RrrBitVec::from_raw_parts`]).
    pub fn raw_parts(&self) -> (usize, usize, &BitBuf, &BitBuf, usize) {
        (self.b, self.len, &self.classes, &self.offsets, self.ones)
    }

    /// Reassemble from raw fields; `None` on inconsistent shapes (including
    /// an `ones` count that disagrees with the classes). Rebuilds the rank
    /// directory.
    pub fn from_raw_parts(
        b: usize,
        len: usize,
        classes: BitBuf,
        offsets: BitBuf,
        ones: usize,
    ) -> Option<Self> {
        if !(1..=63).contains(&b) || ones > len {
            return None;
        }
        let class_width = (64 - (b as u64).leading_zeros() as usize).max(1);
        let n_blocks = len.div_ceil(b);
        if classes.len() != n_blocks * class_width {
            return None;
        }
        let (dir, dir_ones, dir_ptr) = build_directory(b, n_blocks, &classes, class_width);
        // The classes imply exact totals; a payload that disagrees (e.g. a
        // truncated offsets stream) is corrupt.
        if dir_ones != ones as u64 || dir_ptr != offsets.len() as u64 {
            return None;
        }
        Some(Self {
            b,
            class_width,
            len,
            classes,
            offsets,
            dir,
            ones,
        })
    }

    #[inline]
    fn class_of(&self, blk: usize) -> usize {
        self.classes
            .get_bits(blk * self.class_width, self.class_width) as usize
    }

    /// Directory seek to block `target_blk`: super + major + minor lookups,
    /// then one register-chunked scan of at most `MINOR_RATE − 1` classes
    /// against the caller-provided width row (`offset_width_table()[b]`).
    /// Returns `(ones_before_block, offset_ptr_of_block, class_of_block)`.
    #[inline]
    fn seek(&self, target_blk: usize, widths: &[u8; 64]) -> (u64, u64, usize) {
        let major = self.dir.majors[target_blk / SAMPLE_RATE];
        let mut ones = self.dir.super_ranks[target_blk / SUPER_RATE] + (major & 0xFFFF) as u64;
        let mut ptr = self.dir.super_ptrs[target_blk / SUPER_RATE] + (major >> 16) as u64;
        let within = (target_blk % SAMPLE_RATE) / MINOR_RATE;
        if within > 0 {
            // Boundaries at major samples are implicitly zero, so entry
            // `within - 1` of this group holds the cumulative.
            let entry = self
                .dir
                .minors
                .get(target_blk / SAMPLE_RATE * MINORS_PER_SAMPLE + within - 1);
            ones += entry & low_mask(self.dir.minor_ones_bits);
            ptr += entry >> self.dir.minor_ones_bits;
        }
        // ≤ 7 residual classes + the target's own, ≤ 8 × 6 bits: one
        // ≤ 48-bit fetch covers the whole scan and the returned class.
        let first = target_blk / MINOR_RATE * MINOR_RATE;
        let count = target_blk - first;
        let cw = self.class_width;
        let mut chunk = self.classes.get_bits(first * cw, (count + 1) * cw);
        let cmask = low_mask(cw);
        for _ in 0..count {
            let c = (chunk & cmask) as usize;
            ones += c as u64;
            ptr += widths[c & 63] as u64;
            chunk >>= cw;
        }
        (ones, ptr, (chunk & cmask) as usize)
    }

    /// The seed's seek: scan every block since the enclosing 32-block
    /// sample, probing the binomial table for each width.
    #[inline]
    fn seek_reference(&self, target_blk: usize, binom: &BinomialTable) -> (u64, u64, usize) {
        let major = self.dir.majors[target_blk / SAMPLE_RATE];
        let mut ones = self.dir.super_ranks[target_blk / SUPER_RATE] + (major & 0xFFFF) as u64;
        let mut ptr = self.dir.super_ptrs[target_blk / SUPER_RATE] + (major >> 16) as u64;
        for blk in (target_blk / SAMPLE_RATE * SAMPLE_RATE)..target_blk {
            let c = self.class_of(blk);
            ones += c as u64;
            ptr += offset_width(self.b, c, binom) as u64;
        }
        (ones, ptr, self.class_of(target_blk))
    }

    /// `(get(i), rank1(i))` from one directory seek and one block decode:
    /// the prefix word up to bit `i % b` inclusive yields the bit (its top
    /// position) and the rank (popcount below it) together. This is the
    /// wavelet-tree access descent's primitive — the seed paid a seek plus
    /// up to three prefix walks for the same pair.
    pub fn get_and_rank1(&self, i: usize) -> (bool, usize) {
        debug_assert!(i < self.len);
        let widths = &offset_width_table()[self.b];
        let blk = i / self.b;
        let (ones, ptr, c) = self.seek(blk, widths);
        let ow = widths[c & 63] as usize;
        let off = self.offsets.get_bits(ptr as usize, ow);
        let p = i % self.b;
        let word = decode_prefix_word(off, self.b, c, p + 1);
        (
            (word >> p) & 1 == 1,
            ones as usize + (word & low_mask(p)).count_ones() as usize,
        )
    }

    /// `(rank1(i), rank1(j))` with the two in-block decode walks fused
    /// (same block: one decode + two popcounts; different blocks: lockstep
    /// interleaved walks). Backward-search callers rank `sp` and `ep`
    /// together through this; it is answer-identical to two
    /// [`BitRank::rank1`] calls.
    pub fn rank1_pair(&self, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i <= self.len && j <= self.len);
        if i == 0 || i == self.len || j == 0 || j == self.len {
            return (self.rank1(i), self.rank1(j));
        }
        let widths = &offset_width_table()[self.b];
        if i / self.b == j / self.b {
            // Narrowed backward-search ranges usually land `sp` and `ep`
            // in one block: a single seek + decode answers both ranks.
            let (ones, ptr, c) = self.seek(i / self.b, widths);
            let off = self.offsets.get_bits(ptr as usize, widths[c & 63] as usize);
            let (p1, p2) = (i % self.b, j % self.b);
            let (r1, r2) = decode_prefix_ones2(off, self.b, c, p1.min(p2), p1.max(p2));
            return if p1 <= p2 {
                (ones as usize + r1, ones as usize + r2)
            } else {
                (ones as usize + r2, ones as usize + r1)
            };
        }
        let (ones1, ptr1, c1) = self.seek(i / self.b, widths);
        let (ones2, ptr2, c2) = self.seek(j / self.b, widths);
        let off1 = self
            .offsets
            .get_bits(ptr1 as usize, widths[c1 & 63] as usize);
        let off2 = self
            .offsets
            .get_bits(ptr2 as usize, widths[c2 & 63] as usize);
        let (r1, r2) = decode_prefix_ones_pair(off1, c1, i % self.b, off2, c2, j % self.b, self.b);
        (ones1 as usize + r1, ones2 as usize + r2)
    }

    /// Seed-equivalent `rank1`: per-block directory walk from the 32-block
    /// sample and a per-bit enumerative prefix rank. Kept (and exercised by
    /// property tests + the `hotpath` bench) as the baseline the optimized
    /// [`BitRank::rank1`] is measured against.
    pub fn rank1_reference(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        if i == 0 {
            return 0;
        }
        if i == self.len {
            return self.ones;
        }
        BINOM_TLS.with(|binom| {
            let blk = i / self.b;
            let (ones, ptr, c) = self.seek_reference(blk, binom);
            let p = i % self.b;
            if p == 0 {
                return ones as usize;
            }
            let ow = offset_width(self.b, c, binom);
            let off = self.offsets.get_bits(ptr as usize, ow);
            ones as usize + decode_prefix_rank(off, self.b, c, p, binom)
        })
    }

    /// Seed-equivalent `get`: reference seek + two prefix-rank decodes.
    pub fn get_reference(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        BINOM_TLS.with(|binom| {
            let blk = i / self.b;
            let (_, ptr, c) = self.seek_reference(blk, binom);
            let ow = offset_width(self.b, c, binom);
            let off = self.offsets.get_bits(ptr as usize, ow);
            decode_bit_reference(off, self.b, c, i % self.b, binom)
        })
    }
}

impl BitRank for RrrBitVec {
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let widths = &offset_width_table()[self.b];
        let blk = i / self.b;
        let (_, ptr, c) = self.seek(blk, widths);
        let ow = widths[c & 63] as usize;
        let off = self.offsets.get_bits(ptr as usize, ow);
        let p = i % self.b;
        (decode_prefix_word(off, self.b, c, p + 1) >> p) & 1 == 1
    }

    #[inline]
    fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        if i == 0 {
            return 0;
        }
        if i == self.len {
            return self.ones;
        }
        let widths = &offset_width_table()[self.b];
        let blk = i / self.b;
        let (ones, ptr, c) = self.seek(blk, widths);
        let p = i % self.b;
        if p == 0 {
            return ones as usize;
        }
        let ow = widths[c & 63] as usize;
        let off = self.offsets.get_bits(ptr as usize, ow);
        ones as usize + decode_prefix_ones(off, self.b, c, p)
    }

    fn count_ones(&self) -> usize {
        self.ones
    }

    #[inline]
    fn rank1_pair(&self, i: usize, j: usize) -> (usize, usize) {
        RrrBitVec::rank1_pair(self, i, j)
    }

    #[inline]
    fn get_and_rank1(&self, i: usize) -> (bool, usize) {
        RrrBitVec::get_and_rank1(self, i)
    }

    #[inline]
    fn rank1_reference(&self, i: usize) -> usize {
        RrrBitVec::rank1_reference(self, i)
    }

    #[inline]
    fn get_reference(&self, i: usize) -> bool {
        RrrBitVec::get_reference(self, i)
    }
}

impl SpaceUsage for RrrBitVec {
    fn size_in_bytes(&self) -> usize {
        self.classes.size_in_bytes()
            + self.offsets.size_in_bytes()
            + self.dir.size_in_bytes()
            + std::mem::size_of::<usize>() * 4
    }
}

impl BitVecBuild for RrrBitVec {
    /// The RRR block size `b` (the paper's only CiNCT parameter, §III-C).
    type Params = usize;

    fn default_params() -> Self::Params {
        63
    }

    fn build(bits: &BitBuf, params: Self::Params) -> Self {
        Self::new(bits, params)
    }

    fn build_mt(bits: &BitBuf, params: Self::Params, threads: usize) -> Self {
        Self::with_threads(bits, params, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bits(n: usize, density_pct: u64, seed: u64) -> BitBuf {
        let mut b = BitBuf::new();
        let mut x = seed | 1;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.push((x >> 33) % 100 < density_pct);
        }
        b
    }

    fn check(bits: &BitBuf, b: usize) {
        let rrr = RrrBitVec::new(bits, b);
        assert_eq!(rrr.len(), bits.len());
        let mut ones = 0usize;
        for i in 0..=bits.len() {
            assert_eq!(rrr.rank1(i), ones, "rank1({i}) b={b}");
            assert_eq!(rrr.rank1_reference(i), ones, "rank1_reference({i}) b={b}");
            if i < bits.len() {
                assert_eq!(rrr.get(i), bits.get(i), "get({i}) b={b}");
                assert_eq!(rrr.get_reference(i), bits.get(i), "get_reference({i})");
                let (bit, rank) = rrr.get_and_rank1(i);
                assert_eq!((bit, rank), (bits.get(i), ones), "get_and_rank1({i})");
                ones += bits.get(i) as usize;
            }
        }
        assert_eq!(rrr.count_ones(), ones);
        // Paired ranks across the whole position spectrum, including
        // same-block and cross-directory-stratum pairs.
        let n = bits.len();
        for (i, j) in [
            (0, n),
            (n / 3, (n / 3 + 1).min(n)),
            (n / 2, (n / 2 + b / 2).min(n)),
            (1.min(n), n.saturating_sub(1)),
            (n / 4, 3 * n / 4),
        ] {
            let (a, bb) = rrr.rank1_pair(i, j);
            assert_eq!((a, bb), (rrr.rank1(i), rrr.rank1(j)), "pair({i},{j}) b={b}");
        }
    }

    #[test]
    fn rank_access_paper_block_sizes() {
        for &b in &[15usize, 31, 63] {
            check(&pseudo_bits(2000, 50, 7), b);
            check(&pseudo_bits(2000, 5, 11), b);
            check(&pseudo_bits(2000, 95, 13), b);
        }
    }

    #[test]
    fn odd_block_sizes_and_lengths() {
        for &b in &[1usize, 2, 3, 7, 40, 63] {
            for &n in &[0usize, 1, 62, 63, 64, 65, 1000, 1024] {
                check(&pseudo_bits(n, 30, b as u64 * 1000 + n as u64 + 1), b);
            }
        }
    }

    #[test]
    fn all_zero_and_all_one() {
        for &b in &[15usize, 63] {
            check(&BitBuf::from_bools(std::iter::repeat(false).take(500)), b);
            check(&BitBuf::from_bools(std::iter::repeat(true).take(500)), b);
        }
    }

    #[test]
    fn spans_every_directory_stratum() {
        // Long enough for several super (128-block), major (32-block) and
        // minor (8-block) groups at b = 63; checks ranks across them all.
        let bits = pseudo_bits(63 * 128 * 3 + 17, 40, 21);
        let rrr = RrrBitVec::new(&bits, 63);
        let mut ones = 0usize;
        for i in 0..bits.len() {
            if i % 251 == 0 {
                assert_eq!(rrr.rank1(i), ones, "rank1({i})");
                assert_eq!(rrr.rank1_reference(i), ones, "rank1_reference({i})");
            }
            ones += bits.get(i) as usize;
        }
        assert_eq!(rrr.rank1(bits.len()), ones);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let bits = pseudo_bits(10_000, 35, 3);
        let rrr = RrrBitVec::new(&bits, 63);
        let (b, len, classes, offsets, ones) = rrr.raw_parts();
        let back =
            RrrBitVec::from_raw_parts(b, len, classes.clone(), offsets.clone(), ones).unwrap();
        for i in (0..len).step_by(97) {
            assert_eq!(back.rank1(i), rrr.rank1(i), "rank1({i})");
            assert_eq!(back.get(i), rrr.get(i), "get({i})");
        }
        // A corrupted ones count is rejected (directory disagrees).
        assert!(
            RrrBitVec::from_raw_parts(b, len, classes.clone(), offsets.clone(), ones + 1).is_none()
        );
        // ... and so is a truncated offsets stream.
        let truncated = BitBuf::from_bools(offsets.iter().take(offsets.len() - 1));
        assert!(RrrBitVec::from_raw_parts(b, len, classes.clone(), truncated, ones).is_none());
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        use crate::serial::Persist;
        // Long enough to clear PAR_BUILD_MIN_BLOCKS at every block size,
        // with an odd tail block.
        let bits = pseudo_bits(63 * (1 << 13) + 41, 37, 9);
        for &b in &[15usize, 31, 63] {
            let seq = RrrBitVec::new(&bits, b);
            let mut seq_bytes = Vec::new();
            seq.persist(&mut seq_bytes).unwrap();
            for threads in [2usize, 3, 4, 8] {
                let par = RrrBitVec::with_threads(&bits, b, threads);
                let mut par_bytes = Vec::new();
                par.persist(&mut par_bytes).unwrap();
                assert_eq!(par_bytes, seq_bytes, "b={b} threads={threads}");
            }
            // Answers agree too (spot check across directory strata).
            let par = RrrBitVec::with_threads(&bits, b, 4);
            for i in (0..bits.len()).step_by(997) {
                assert_eq!(par.rank1(i), seq.rank1(i), "rank1({i}) b={b}");
            }
        }
    }

    #[test]
    fn compresses_biased_bits() {
        // 2% density: RRR must be far below 1 bit/bit.
        let bits = pseudo_bits(200_000, 2, 5);
        let rrr = RrrBitVec::new(&bits, 63);
        let bits_per_bit = rrr.size_in_bits() as f64 / bits.len() as f64;
        assert!(bits_per_bit < 0.35, "RRR used {bits_per_bit:.3} bits/bit");
    }

    #[test]
    fn overhead_grows_as_block_shrinks() {
        // h(b) = lg(b+1)/b decreases with b, so b=63 must be smaller than b=15
        // on compressible data.
        let bits = pseudo_bits(100_000, 10, 3);
        let small_b = RrrBitVec::new(&bits, 15).size_in_bytes();
        let large_b = RrrBitVec::new(&bits, 63).size_in_bytes();
        assert!(large_b < small_b, "b=63 {large_b} >= b=15 {small_b}");
    }

    #[test]
    fn binomial_sanity() {
        let t = BinomialTable::new();
        assert_eq!(t.get(0, 0), 1);
        assert_eq!(t.get(63, 0), 1);
        assert_eq!(t.get(63, 63), 1);
        assert_eq!(t.get(5, 2), 10);
        assert_eq!(t.get(63, 31), 916312070471295267);
        assert_eq!(t.get(2, 3), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (b, c) pairs index two tables
    fn width_table_matches_direct_computation() {
        let binom = binom();
        let table = offset_width_table();
        for b in 1..=63usize {
            for c in 0..=b {
                assert_eq!(
                    table[b][c] as usize,
                    offset_width(b, c, binom),
                    "width({b},{c})"
                );
            }
        }
    }

    #[test]
    fn encode_decode_block_exhaustive_small() {
        let binom = BinomialTable::new();
        let b = 10;
        for word in 0u64..(1 << b) {
            let c = word.count_ones() as usize;
            let off = encode_block(word, b, c);
            assert!(off < binom.get(b, c));
            for p in 0..=b {
                let expect = (word & ((1u64 << p) - 1)).count_ones() as usize;
                assert_eq!(decode_prefix_rank(off, b, c, p, &binom), expect);
                assert_eq!(decode_prefix_ones(off, b, c, p), expect, "ones p={p}");
                assert_eq!(
                    decode_prefix_word(off, b, c, p),
                    word & ((1u64 << p) - 1),
                    "prefix word off={off} c={c} p={p}"
                );
                let p2 = (p + 3).min(b);
                let expect2 = (word & ((1u64 << p2) - 1)).count_ones() as usize;
                assert_eq!(
                    decode_prefix_ones2(off, b, c, p, p2),
                    (expect, expect2),
                    "ones2 p={p} p2={p2}"
                );
            }
            for p in 0..b {
                let bit = (word >> p) & 1 == 1;
                assert_eq!(decode_bit_reference(off, b, c, p, &binom), bit);
            }
        }
    }

    #[test]
    fn paired_decode_matches_singles_exhaustive_small() {
        let b = 9;
        for w1 in 0u64..(1 << b) {
            // A shifted partner pattern exercises unequal classes/offsets.
            let w2 = (w1.wrapping_mul(0x9e37) ^ (w1 >> 3)) & ((1 << b) - 1);
            let (c1, c2) = (w1.count_ones() as usize, w2.count_ones() as usize);
            let o1 = encode_block(w1, b, c1);
            let o2 = encode_block(w2, b, c2);
            for p1 in 0..=b {
                let p2 = (p1 * 5 + 3) % (b + 1);
                let got = decode_prefix_ones_pair(o1, c1, p1, o2, c2, p2, b);
                let want = (
                    (w1 & ((1u64 << p1) - 1)).count_ones() as usize,
                    (w2 & ((1u64 << p2) - 1)).count_ones() as usize,
                );
                assert_eq!(got, want, "w1={w1:b} w2={w2:b} p1={p1} p2={p2}");
            }
        }
    }
}
