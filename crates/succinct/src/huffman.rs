//! Huffman coding over `u32` alphabets.
//!
//! Two consumers:
//! * [`crate::HuffmanWaveletTree`] takes the *tree shape* (the HWT of the
//!   paper, §II-A4) — each internal node becomes a wavelet-tree node.
//! * The baseline compressors (`cinct-compressors`) take the *code table*
//!   to entropy-code label streams (MEL + Huffman, bzip2-like, zip-like).
//!
//! Ties are broken deterministically (by symbol id, then node creation
//! order) so builds are reproducible across runs.

use crate::bits::BitBuf;
use crate::traits::{SpaceUsage, Symbol};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One Huffman codeword: up to 64 bits, MSB-first semantics (bit `len-1-k`
/// of `bits` is the `k`-th bit on the root-to-leaf path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Codeword {
    /// Code bits; bit 0 is the *last* edge on the path.
    pub bits: u64,
    /// Code length in bits.
    pub len: u8,
}

impl Codeword {
    /// The `k`-th bit on the root-to-leaf path (k = 0 is at the root).
    #[inline]
    pub fn path_bit(&self, k: usize) -> bool {
        debug_assert!(k < self.len as usize);
        (self.bits >> (self.len as usize - 1 - k)) & 1 == 1
    }
}

/// Compact codeword table: per-symbol code bits packed at the width of the
/// deepest code, plus one length byte. Keeps the per-alphabet-symbol
/// overhead near `max_len + 8` bits instead of the 24 bytes a
/// `Vec<Option<Codeword>>` would cost — this matters because the wavelet
/// tree's size accounting feeds the paper's bits-per-symbol plots.
#[derive(Clone, Debug)]
pub struct CodeTable {
    bits: crate::int_vec::IntVec,
    /// Code length per symbol; 0 = symbol has no code.
    lens: Vec<u8>,
}

impl CodeTable {
    fn from_options(codes: &[Option<Codeword>]) -> Self {
        let max_len = codes
            .iter()
            .flatten()
            .map(|c| c.len as usize)
            .max()
            .unwrap_or(1)
            .max(1);
        let mut bits = crate::int_vec::IntVec::with_capacity(max_len, codes.len());
        let mut lens = Vec::with_capacity(codes.len());
        for c in codes {
            match c {
                Some(cw) => {
                    bits.push(cw.bits);
                    lens.push(cw.len);
                }
                None => {
                    bits.push(0);
                    lens.push(0);
                }
            }
        }
        Self { bits, lens }
    }

    /// The codeword for `sym`, or `None` if it had zero frequency.
    #[inline]
    pub fn get(&self, sym: Symbol) -> Option<Codeword> {
        let len = *self.lens.get(sym as usize)?;
        if len == 0 {
            return None;
        }
        Some(Codeword {
            bits: self.bits.get(sym as usize),
            len,
        })
    }

    /// Number of alphabet slots.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// `true` iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Raw fields (persistence support).
    pub fn raw_parts(&self) -> (&crate::int_vec::IntVec, &[u8]) {
        (&self.bits, &self.lens)
    }

    /// Reassemble; `None` if the arrays disagree in length.
    pub fn from_raw_parts(bits: crate::int_vec::IntVec, lens: Vec<u8>) -> Option<Self> {
        if bits.len() != lens.len() {
            return None;
        }
        Some(Self { bits, lens })
    }
}

impl SpaceUsage for CodeTable {
    fn size_in_bytes(&self) -> usize {
        self.bits.size_in_bytes() + self.lens.capacity()
    }
}

/// Explicit Huffman tree. Node 0 is the root (when `symbols >= 2`).
#[derive(Clone, Debug)]
pub struct HuffmanTree {
    /// For each internal node: (left child, right child). Children are
    /// either `Node(i)` or `Leaf(symbol)`.
    pub nodes: Vec<(Child, Child)>,
    /// Codeword per symbol (compact).
    pub codes: CodeTable,
    /// Number of symbols with nonzero frequency.
    pub live_symbols: usize,
}

/// A child edge in the Huffman tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Child {
    /// Internal node index.
    Node(u32),
    /// Leaf holding a symbol.
    Leaf(Symbol),
}

impl HuffmanTree {
    /// Build from per-symbol frequencies (index = symbol). Symbols with zero
    /// frequency get no code. Requires at least one nonzero frequency.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        #[derive(PartialEq, Eq)]
        struct HeapItem {
            weight: u64,
            tiebreak: u64,
            child: Child,
        }
        impl Ord for HeapItem {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                (self.weight, self.tiebreak).cmp(&(other.weight, other.tiebreak))
            }
        }
        impl PartialOrd for HeapItem {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
        let mut live = 0usize;
        for (sym, &f) in freqs.iter().enumerate() {
            if f > 0 {
                live += 1;
                heap.push(Reverse(HeapItem {
                    weight: f,
                    tiebreak: sym as u64,
                    child: Child::Leaf(sym as Symbol),
                }));
            }
        }
        assert!(live > 0, "Huffman tree needs at least one symbol");

        let mut nodes: Vec<(Child, Child)> = Vec::with_capacity(live.saturating_sub(1));
        if live == 1 {
            // Degenerate alphabet: give the lone symbol a 1-bit code under a
            // synthetic root so downstream consumers need no special case.
            let Reverse(item) = heap.pop().expect("one item");
            nodes.push((item.child, item.child));
        } else {
            let mut next_tiebreak = freqs.len() as u64;
            while heap.len() >= 2 {
                let Reverse(a) = heap.pop().expect("len >= 2");
                let Reverse(b) = heap.pop().expect("len >= 2");
                let id = nodes.len() as u32;
                nodes.push((a.child, b.child));
                heap.push(Reverse(HeapItem {
                    weight: a.weight + b.weight,
                    tiebreak: next_tiebreak,
                    child: Child::Node(id),
                }));
                next_tiebreak += 1;
            }
        }
        // The last created node is the root; re-root to index 0 by reversing
        // node order.
        let n = nodes.len();
        let remap = |c: Child| match c {
            Child::Node(i) => Child::Node((n - 1 - i as usize) as u32),
            leaf => leaf,
        };
        let nodes: Vec<(Child, Child)> = nodes
            .into_iter()
            .rev()
            .map(|(l, r)| (remap(l), remap(r)))
            .collect();

        // Assign codes by DFS.
        let mut codes: Vec<Option<Codeword>> = vec![None; freqs.len()];
        let mut stack: Vec<(u32, u64, u8)> = vec![(0, 0, 0)];
        while let Some((node, bits, len)) = stack.pop() {
            let (l, r) = nodes[node as usize];
            for (child, bit) in [(l, 0u64), (r, 1u64)] {
                let nbits = (bits << 1) | bit;
                let nlen = len + 1;
                assert!(nlen <= 64, "Huffman code longer than 64 bits");
                match child {
                    Child::Leaf(s) => {
                        codes[s as usize] = Some(Codeword {
                            bits: nbits,
                            len: nlen,
                        });
                    }
                    Child::Node(i) => stack.push((i, nbits, nlen)),
                }
            }
        }
        Self {
            nodes,
            codes: CodeTable::from_options(&codes),
            live_symbols: live,
        }
    }

    /// The codeword for `sym`, or `None` if it had zero frequency.
    #[inline]
    pub fn code(&self, sym: Symbol) -> Option<Codeword> {
        self.codes.get(sym)
    }

    /// Number of internal nodes.
    pub fn internal_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A flat Huffman code table plus a decoder, for stream compression.
#[derive(Clone, Debug)]
pub struct HuffmanCode {
    tree: HuffmanTree,
}

impl HuffmanCode {
    /// Build a code for the given frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        Self {
            tree: HuffmanTree::from_freqs(freqs),
        }
    }

    /// Build from a sequence by counting symbol occurrences.
    pub fn from_seq(seq: &[Symbol]) -> Self {
        let sigma = seq.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut freqs = vec![0u64; sigma];
        for &s in seq {
            freqs[s as usize] += 1;
        }
        Self::from_freqs(&freqs)
    }

    /// The codeword for `sym`, if it had nonzero frequency.
    pub fn code(&self, sym: Symbol) -> Option<Codeword> {
        self.tree.codes.get(sym)
    }

    /// Encode a sequence into a bit buffer (path bits, root first).
    pub fn encode(&self, seq: &[Symbol]) -> BitBuf {
        let mut out = BitBuf::new();
        for &s in seq {
            let cw = self.code(s).expect("symbol not in code table");
            for k in 0..cw.len as usize {
                out.push(cw.path_bit(k));
            }
        }
        out
    }

    /// Decode `count` symbols starting at bit `pos`; returns the symbols and
    /// the bit position after the last decoded symbol.
    pub fn decode(&self, bits: &BitBuf, mut pos: usize, count: usize) -> (Vec<Symbol>, usize) {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut node = 0u32;
            loop {
                let (l, r) = self.tree.nodes[node as usize];
                let child = if bits.get(pos) { r } else { l };
                pos += 1;
                match child {
                    Child::Leaf(s) => {
                        out.push(s);
                        break;
                    }
                    Child::Node(i) => node = i,
                }
            }
        }
        (out, pos)
    }

    /// Total encoded length in bits for the given frequencies (excluding the
    /// model). This is `sum_w freq[w] * len(code(w))`.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * self.code(s as Symbol).map_or(0, |c| c.len as u64))
            .sum()
    }

    /// Access the underlying tree (for wavelet-tree construction).
    pub fn tree(&self) -> &HuffmanTree {
        &self.tree
    }

    /// Serialized model cost in bits: one length per alphabet symbol (a
    /// canonical-code table). Used by compressors for honest size accounting.
    pub fn model_bits(&self) -> u64 {
        (self.tree.codes.len() as u64) * 6 // code lengths <= 64 → 6 bits each
    }
}

impl SpaceUsage for HuffmanTree {
    fn size_in_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<(Child, Child)>() + self.codes.size_in_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kraft_equality_and_prefix_freedom() {
        let freqs = [5u64, 9, 12, 13, 16, 45, 0, 3];
        let tree = HuffmanTree::from_freqs(&freqs);
        // Kraft sum over live symbols must be exactly 1 for a full binary tree.
        let mut kraft_num = 0u128; // numerator over denominator 2^64
        for s in 0..freqs.len() as u32 {
            if let Some(code) = tree.code(s) {
                kraft_num += 1u128 << (64 - code.len as u32);
            }
        }
        assert_eq!(kraft_num, 1u128 << 64);
        // Prefix freedom.
        let live: Vec<Codeword> = (0..freqs.len() as u32)
            .filter_map(|s| tree.code(s))
            .collect();
        for (i, a) in live.iter().enumerate() {
            for (j, b) in live.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (short, long) = if a.len <= b.len { (a, b) } else { (b, a) };
                let prefix = long.bits >> (long.len - short.len);
                assert!(
                    !(prefix == short.bits && a.len != b.len) || short.len == long.len,
                    "codeword {i} is a prefix of {j}"
                );
            }
        }
    }

    #[test]
    fn optimal_code_lengths_classic_example() {
        // Classic frequencies: the most frequent symbol gets the shortest code.
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let tree = HuffmanTree::from_freqs(&freqs);
        let lens: Vec<u8> = freqs
            .iter()
            .enumerate()
            .map(|(s, _)| tree.code(s as Symbol).unwrap().len)
            .collect();
        assert_eq!(lens[0], 1);
        let total: u64 = freqs.iter().zip(&lens).map(|(&f, &l)| f * l as u64).sum();
        assert_eq!(total, 224); // known optimum for this distribution
    }

    #[test]
    fn encode_decode_roundtrip() {
        let seq: Vec<Symbol> = (0..500u32).map(|i| (i * i + i / 3) % 17).collect();
        let code = HuffmanCode::from_seq(&seq);
        let bits = code.encode(&seq);
        let (back, end) = code.decode(&bits, 0, seq.len());
        assert_eq!(back, seq);
        assert_eq!(end, bits.len());
    }

    #[test]
    fn single_symbol_alphabet() {
        let code = HuffmanCode::from_seq(&[4, 4, 4, 4]);
        let cw = code.code(4).unwrap();
        assert_eq!(cw.len, 1);
        let bits = code.encode(&[4, 4, 4]);
        assert_eq!(bits.len(), 3);
        let (back, _) = code.decode(&bits, 0, 3);
        assert_eq!(back, vec![4, 4, 4]);
    }

    #[test]
    fn zero_freq_symbols_have_no_code() {
        let code = HuffmanCode::from_freqs(&[10, 0, 7]);
        assert!(code.code(0).is_some());
        assert!(code.code(1).is_none());
        assert!(code.code(2).is_some());
    }

    #[test]
    fn deterministic_builds() {
        let freqs = [3u64, 3, 3, 3, 3, 3];
        let a = HuffmanTree::from_freqs(&freqs);
        let b = HuffmanTree::from_freqs(&freqs);
        for s in 0..freqs.len() as u32 {
            assert_eq!(a.code(s), b.code(s));
        }
    }

    #[test]
    fn expected_length_close_to_entropy() {
        // Geometric-ish distribution: avg code length within 1 bit of H0.
        let freqs = [512u64, 256, 128, 64, 32, 16, 8, 4, 2, 2];
        let n: u64 = freqs.iter().sum();
        let code = HuffmanCode::from_freqs(&freqs);
        let avg = code.encoded_bits(&freqs) as f64 / n as f64;
        let h0: f64 = freqs
            .iter()
            .map(|&f| {
                let p = f as f64 / n as f64;
                -p * p.log2()
            })
            .sum();
        assert!(avg >= h0 - 1e-9 && avg <= h0 + 1.0, "avg={avg} H0={h0}");
    }
}
