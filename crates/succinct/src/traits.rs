//! Core traits shared by all succinct structures.

/// A symbol: road-segment IDs, sentinels and RML labels are all `u32`.
///
/// The CiNCT paper reserves `# = 0` (end of string) and `$ = 1` (trajectory
/// separator); road segments occupy `2..σ`. Nothing in this crate depends on
/// that convention — the alphabet is just `0..σ`.
pub type Symbol = u32;

/// Heap-space accounting. Every succinct structure reports the number of
/// bytes it occupies so the experiment harness can reproduce the paper's
/// bits-per-symbol figures exactly (paper Fig. 10, 12, 13).
pub trait SpaceUsage {
    /// Total heap bytes owned by this structure (excluding `size_of::<Self>()`
    /// itself unless noted).
    fn size_in_bytes(&self) -> usize;

    /// Convenience: size in bits.
    fn size_in_bits(&self) -> usize {
        self.size_in_bytes() * 8
    }
}

impl<T: SpaceUsage> SpaceUsage for Vec<T> {
    fn size_in_bytes(&self) -> usize {
        self.iter().map(SpaceUsage::size_in_bytes).sum::<usize>()
            + self.capacity() * std::mem::size_of::<T>()
    }
}

/// Bit-level rank/access interface implemented by both the plain
/// ([`crate::RankBitVec`]) and the compressed ([`crate::RrrBitVec`]) bit
/// vectors. Wavelet structures are generic over this trait, which is how the
/// paper's UFMI / ICB-WM / ICB-Huff / CiNCT variants share one code base.
pub trait BitRank: SpaceUsage {
    /// Number of bits stored.
    fn len(&self) -> usize;

    /// `true` iff no bits are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bit at position `i`. Panics if `i >= len()`.
    fn get(&self, i: usize) -> bool;

    /// Number of set bits in positions `[0, i)`. `i` may equal `len()`.
    fn rank1(&self, i: usize) -> usize;

    /// Number of zero bits in positions `[0, i)`.
    fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Total number of set bits.
    fn count_ones(&self) -> usize {
        self.rank1(self.len())
    }
}

/// Construction interface: build a rank structure from a raw bit buffer.
///
/// The single generic entry point lets [`crate::HuffmanWaveletTree`] and
/// [`crate::WaveletMatrix`] be instantiated with either backend.
pub trait BitVecBuild: BitRank + Sized {
    /// Parameters controlling the build (e.g. the RRR block size `b`).
    type Params: Copy + Clone + std::fmt::Debug;

    /// Default parameters (`b = 63` for RRR, matching the paper's default).
    fn default_params() -> Self::Params;

    /// Build from a finished [`crate::BitBuf`].
    fn build(bits: &crate::BitBuf, params: Self::Params) -> Self;
}

/// Symbol-level sequence interface: the operations an FM-index needs from the
/// structure holding the (possibly labeled) BWT.
pub trait SymbolSeq: SpaceUsage {
    /// Sequence length.
    fn len(&self) -> usize;

    /// `true` iff the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of occurrences of `w` in positions `[0, i)`.
    fn rank(&self, w: Symbol, i: usize) -> usize;

    /// The symbol at position `i`.
    fn access(&self, i: usize) -> Symbol;

    /// Size of the alphabet (symbols are `0..alphabet_size`).
    fn alphabet_size(&self) -> usize;
}
