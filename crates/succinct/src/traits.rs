//! Core traits shared by all succinct structures.

/// A symbol: road-segment IDs, sentinels and RML labels are all `u32`.
///
/// The CiNCT paper reserves `# = 0` (end of string) and `$ = 1` (trajectory
/// separator); road segments occupy `2..σ`. Nothing in this crate depends on
/// that convention — the alphabet is just `0..σ`.
pub type Symbol = u32;

/// Heap-space accounting. Every succinct structure reports the number of
/// bytes it occupies so the experiment harness can reproduce the paper's
/// bits-per-symbol figures exactly (paper Fig. 10, 12, 13).
pub trait SpaceUsage {
    /// Total heap bytes owned by this structure (excluding `size_of::<Self>()`
    /// itself unless noted).
    fn size_in_bytes(&self) -> usize;

    /// Convenience: size in bits.
    fn size_in_bits(&self) -> usize {
        self.size_in_bytes() * 8
    }
}

impl<T: SpaceUsage> SpaceUsage for Vec<T> {
    fn size_in_bytes(&self) -> usize {
        self.iter().map(SpaceUsage::size_in_bytes).sum::<usize>()
            + self.capacity() * std::mem::size_of::<T>()
    }
}

/// Bit-level rank/access interface implemented by both the plain
/// ([`crate::RankBitVec`]) and the compressed ([`crate::RrrBitVec`]) bit
/// vectors. Wavelet structures are generic over this trait, which is how the
/// paper's UFMI / ICB-WM / ICB-Huff / CiNCT variants share one code base.
///
/// `Send + Sync` are supertraits: rank structures are immutable once built
/// and the parallel query engine shares indexes across threads.
pub trait BitRank: SpaceUsage + Send + Sync {
    /// Number of bits stored.
    fn len(&self) -> usize;

    /// `true` iff no bits are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bit at position `i`. Panics if `i >= len()`.
    fn get(&self, i: usize) -> bool;

    /// Number of set bits in positions `[0, i)`. `i` may equal `len()`.
    fn rank1(&self, i: usize) -> usize;

    /// Number of zero bits in positions `[0, i)`.
    fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Total number of set bits.
    fn count_ones(&self) -> usize {
        self.rank1(self.len())
    }

    /// `(get(i), rank1(i))` in one call — the per-level primitive of a
    /// wavelet-tree access descent. Backends that decode a block per query
    /// ([`crate::RrrBitVec`]) override this to answer both from a single
    /// decode. Must be answer-identical to `get` + `rank1`.
    fn get_and_rank1(&self, i: usize) -> (bool, usize) {
        (self.get(i), self.rank1(i))
    }

    /// `(rank1(i), rank1(j))` in one call. Backward search ranks two
    /// positions per step; backends with a serial per-rank dependency
    /// chain ([`crate::RrrBitVec`]) override this to interleave the two
    /// chains for instruction-level parallelism. Must be answer-identical
    /// to two [`BitRank::rank1`] calls.
    fn rank1_pair(&self, i: usize, j: usize) -> (usize, usize) {
        (self.rank1(i), self.rank1(j))
    }

    /// Seed-equivalent `rank1`: the straightforward algorithm an
    /// implementation shipped with before hot-path engineering, kept so the
    /// bench harness can measure optimized-vs-baseline *in one binary* and
    /// property tests can pin the fast path to it. Structures with no
    /// slower baseline (e.g. [`crate::RankBitVec`]) leave the default,
    /// which forwards to [`BitRank::rank1`].
    fn rank1_reference(&self, i: usize) -> usize {
        self.rank1(i)
    }

    /// Seed-equivalent `get`; see [`BitRank::rank1_reference`].
    fn get_reference(&self, i: usize) -> bool {
        self.get(i)
    }
}

/// Construction interface: build a rank structure from a raw bit buffer.
///
/// The single generic entry point lets [`crate::HuffmanWaveletTree`] and
/// [`crate::WaveletMatrix`] be instantiated with either backend.
pub trait BitVecBuild: BitRank + Sized {
    /// Parameters controlling the build (e.g. the RRR block size `b`).
    type Params: Copy + Clone + std::fmt::Debug;

    /// Default parameters (`b = 63` for RRR, matching the paper's default).
    fn default_params() -> Self::Params;

    /// Build from a finished [`crate::BitBuf`].
    fn build(bits: &crate::BitBuf, params: Self::Params) -> Self;

    /// Build with up to `threads` worker threads (`0` = the machine's
    /// available parallelism). Implementations must produce a structure
    /// **identical** to [`BitVecBuild::build`] — same serialized bytes —
    /// regardless of thread count; backends with no parallel path keep
    /// this default, which ignores the hint.
    fn build_mt(bits: &crate::BitBuf, params: Self::Params, threads: usize) -> Self {
        let _ = threads;
        Self::build(bits, params)
    }
}

/// Symbol-level sequence interface: the operations an FM-index needs from the
/// structure holding the (possibly labeled) BWT.
///
/// `Send + Sync` are supertraits for the same reason as [`BitRank`]'s: BWT
/// containers are immutable query structures shared across query threads.
pub trait SymbolSeq: SpaceUsage + Send + Sync {
    /// Sequence length.
    fn len(&self) -> usize;

    /// `true` iff the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of occurrences of `w` in positions `[0, i)`.
    fn rank(&self, w: Symbol, i: usize) -> usize;

    /// `(rank(w, i), rank(w, j))` in one call — the shape of every
    /// backward-search step (`sp`/`ep`). Wavelet backends override this to
    /// descend once and pair the bit-level ranks ([`BitRank::rank1_pair`]);
    /// must be answer-identical to two [`SymbolSeq::rank`] calls.
    fn rank_pair(&self, w: Symbol, i: usize, j: usize) -> (usize, usize) {
        (self.rank(w, i), self.rank(w, j))
    }

    /// The symbol at position `i`.
    fn access(&self, i: usize) -> Symbol;

    /// `(access(i), rank(access(i), i))` in one call — exactly the pair an
    /// LF-mapping step consumes. A wavelet descent computes the rank as a
    /// by-product of access (the leaf position *is* the rank), so wavelet
    /// backends override this to answer both in one descent; must be
    /// answer-identical to `access` + `rank`.
    fn access_and_rank(&self, i: usize) -> (Symbol, usize) {
        let s = self.access(i);
        (s, self.rank(s, i))
    }

    /// Size of the alphabet (symbols are `0..alphabet_size`).
    fn alphabet_size(&self) -> usize;
}
