//! Wavelet matrix (Claude & Navarro, SPIRE'12 — paper reference \[18\]),
//! generic over the bit-vector backend.
//!
//! The paper's baselines use it two ways (Table II):
//! * **UFMI** — wavelet matrix over *uncompressed* bitmaps
//!   (`WaveletMatrix<RankBitVec>`);
//! * **ICB-WM** — wavelet matrix over RRR bitmaps
//!   (`WaveletMatrix<RrrBitVec>`), the implicit-compression-boosting variant
//!   of Brisaboa et al. \[3\].
//!
//! Space is `n ceil(log2 σ)` bits plus backend overhead; `rank`/`access`
//! cost one bit-level rank per level, i.e. `O(log σ)` — the σ-dependence
//! CiNCT's Theorem 5 removes.

use crate::bits::BitBuf;
use crate::traits::{BitVecBuild, SpaceUsage, Symbol, SymbolSeq};

/// A wavelet matrix over a `u32` alphabet.
#[derive(Clone, Debug)]
pub struct WaveletMatrix<B: BitVecBuild> {
    /// One bit vector per level, MSB level first.
    levels: Vec<B>,
    /// Number of zeros at each level (boundary between the 0-run and 1-run
    /// at the next level).
    zeros: Vec<usize>,
    len: usize,
    alphabet_size: usize,
    bits_per_symbol: usize,
}

impl<B: BitVecBuild> WaveletMatrix<B> {
    /// Build with the backend's default parameters.
    pub fn new(seq: &[Symbol]) -> Self {
        Self::with_params(seq, B::default_params())
    }

    /// Build from a sequence; `params` configures the backend.
    pub fn with_params(seq: &[Symbol], params: B::Params) -> Self {
        Self::with_params_mt(seq, params, 1)
    }

    /// [`Self::with_params`] with up to `threads` workers (`0` =
    /// available parallelism). Each level's bit-partitioning is sharded
    /// into contiguous chunks stitched back in order and the backend
    /// builds through [`BitVecBuild::build_mt`], so the finished matrix is
    /// **identical** to a sequential build at any thread count.
    pub fn with_params_mt(seq: &[Symbol], params: B::Params, threads: usize) -> Self {
        assert!(!seq.is_empty(), "wavelet matrix over empty sequence");
        let alphabet_size = seq.iter().copied().max().unwrap() as usize + 1;
        let bits_per_symbol = if alphabet_size <= 2 {
            1
        } else {
            usize::BITS as usize - (alphabet_size - 1).leading_zeros() as usize
        };
        let threads = crate::parbuild::effective_threads(threads);
        let mut levels = Vec::with_capacity(bits_per_symbol);
        let mut zeros = Vec::with_capacity(bits_per_symbol);
        let mut cur: Vec<Symbol> = seq.to_vec();
        // Buffers for the sequential path, sized lazily on first use —
        // parallel levels replace `next` wholesale with the stitched zero
        // bucket and never touch `ones_bucket`, so eager n-word
        // allocations would be dead weight there. The ones-bucket is
        // reused across levels: the seed allocated (and grew) a fresh Vec
        // per level, a measurable slice of UFMI/ICB-WM build time at
        // log σ levels over multi-million-symbol sequences.
        let mut next: Vec<Symbol> = Vec::new();
        let mut ones_bucket: Vec<Symbol> = Vec::new();
        for level in 0..bits_per_symbol {
            let shift = bits_per_symbol - 1 - level;
            let bits = if threads > 1 && cur.len() >= crate::parbuild::PAR_MIN_ITEMS {
                // Shard-parallel partition: zero/one buckets concatenate in
                // shard order — the same stable partition as the loop below.
                // The stitched zero bucket *becomes* the next level (one
                // copy for the one-run, none for the zero-run).
                let (bits, zs, os) = crate::parbuild::partition_by(
                    &cur,
                    |s| (s >> shift) & 1 == 1,
                    true,
                    true,
                    threads,
                );
                next = zs;
                zeros.push(next.len());
                next.extend_from_slice(&os);
                bits
            } else {
                let mut bits = BitBuf::with_capacity(cur.len());
                ones_bucket.clear();
                ones_bucket.reserve(cur.len() / 2);
                next.clear();
                next.reserve(cur.len());
                for &s in &cur {
                    let bit = (s >> shift) & 1 == 1;
                    bits.push(bit);
                    if bit {
                        ones_bucket.push(s);
                    } else {
                        next.push(s);
                    }
                }
                zeros.push(next.len());
                next.extend_from_slice(&ones_bucket);
                bits
            };
            std::mem::swap(&mut cur, &mut next);
            levels.push(B::build_mt(&bits, params, threads));
        }
        Self {
            levels,
            zeros,
            len: seq.len(),
            alphabet_size,
            bits_per_symbol,
        }
    }

    /// Number of levels (= bits per symbol).
    pub fn levels(&self) -> usize {
        self.bits_per_symbol
    }
}

impl<B: BitVecBuild> SymbolSeq for WaveletMatrix<B> {
    fn len(&self) -> usize {
        self.len
    }

    fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    #[inline]
    fn rank(&self, w: Symbol, i: usize) -> usize {
        debug_assert!(i <= self.len);
        if w as usize >= self.alphabet_size {
            return 0;
        }
        let mut start = 0usize;
        let mut end = i;
        for level in 0..self.bits_per_symbol {
            let shift = self.bits_per_symbol - 1 - level;
            let bv = &self.levels[level];
            if (w >> shift) & 1 == 1 {
                let z = self.zeros[level];
                start = z + bv.rank1(start);
                end = z + bv.rank1(end);
            } else {
                start = bv.rank0(start);
                end = bv.rank0(end);
            }
            if start >= end {
                return 0;
            }
        }
        end - start
    }

    /// One descent for both positions; both ranks share the single
    /// bucket-start chain (`rank(w, ·)` maps position 0 identically for
    /// any end), and the two end positions pair up through
    /// [`crate::BitRank::rank1_pair`] (the backward-search `sp`/`ep`
    /// shape).
    #[inline]
    fn rank_pair(&self, w: Symbol, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i <= self.len && j <= self.len);
        if w as usize >= self.alphabet_size {
            return (0, 0);
        }
        let (mut s, mut e1, mut e2) = (0usize, i, j);
        for level in 0..self.bits_per_symbol {
            let shift = self.bits_per_symbol - 1 - level;
            let bv = &self.levels[level];
            let rs = bv.rank1(s);
            let (re1, re2) = bv.rank1_pair(e1, e2);
            if (w >> shift) & 1 == 1 {
                let z = self.zeros[level];
                s = z + rs;
                e1 = z + re1;
                e2 = z + re2;
            } else {
                s -= rs;
                e1 -= re1;
                e2 -= re2;
            }
            if s >= e1 && s >= e2 {
                return (0, 0);
            }
        }
        (e1.saturating_sub(s), e2.saturating_sub(s))
    }

    #[inline]
    fn access(&self, i: usize) -> Symbol {
        self.access_and_rank(i).0
    }

    /// One descent answers both: each level uses the fused
    /// [`crate::BitRank::get_and_rank1`] and the final position is
    /// `rank(symbol, i)` by the wavelet invariant.
    #[inline]
    fn access_and_rank(&self, i: usize) -> (Symbol, usize) {
        debug_assert!(i < self.len);
        let mut pos = i;
        let mut sym: Symbol = 0;
        for level in 0..self.bits_per_symbol {
            let bv = &self.levels[level];
            let (bit, r1) = bv.get_and_rank1(pos);
            sym <<= 1;
            if bit {
                sym |= 1;
                pos = self.zeros[level] + r1;
            } else {
                pos -= r1;
            }
        }
        // `pos` is the index of this occurrence within the final bucket of
        // equal symbols, offset by the bucket's start; recover the rank by
        // subtracting the bucket start = position of the first occurrence.
        let start = {
            let mut s = 0usize;
            for level in 0..self.bits_per_symbol {
                let shift = self.bits_per_symbol - 1 - level;
                let bv = &self.levels[level];
                if (sym >> shift) & 1 == 1 {
                    s = self.zeros[level] + bv.rank1(s);
                } else {
                    s -= bv.rank1(s);
                }
            }
            s
        };
        (sym, pos - start)
    }
}

impl<B: BitVecBuild> SpaceUsage for WaveletMatrix<B> {
    fn size_in_bytes(&self) -> usize {
        self.levels.iter().map(|b| b.size_in_bytes()).sum::<usize>()
            + self.zeros.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indices appear in assertion messages
mod tests {
    use super::*;
    use crate::rank_bits::RankBitVec;
    use crate::rrr::RrrBitVec;

    fn pseudo_seq(n: usize, sigma: u32, seed: u64) -> Vec<Symbol> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % sigma
            })
            .collect()
    }

    fn naive_rank(seq: &[Symbol], w: Symbol, i: usize) -> usize {
        seq[..i].iter().filter(|&&s| s == w).count()
    }

    fn check_backend<B: BitVecBuild>(params: B::Params, sigma: u32) {
        let seq = pseudo_seq(700, sigma, sigma as u64 + 5);
        let wm = WaveletMatrix::<B>::with_params(&seq, params);
        assert_eq!(wm.len(), seq.len());
        for i in 0..seq.len() {
            assert_eq!(wm.access(i), seq[i], "access({i}) sigma={sigma}");
        }
        for w in 0..sigma.min(40) {
            for &i in &[0usize, 1, 350, 699, 700] {
                assert_eq!(wm.rank(w, i), naive_rank(&seq, w, i), "rank({w},{i})");
            }
        }
    }

    #[test]
    fn rank_access_plain() {
        for sigma in [2u32, 3, 16, 17, 100] {
            check_backend::<RankBitVec>((), sigma);
        }
    }

    #[test]
    fn rank_access_rrr() {
        for &b in &[15usize, 63] {
            check_backend::<RrrBitVec>(b, 30);
        }
    }

    #[test]
    fn rank_beyond_alphabet() {
        let seq = vec![0u32, 1, 2, 3];
        let wm = WaveletMatrix::<RankBitVec>::new(&seq);
        assert_eq!(wm.rank(100, 4), 0);
    }

    #[test]
    fn binary_alphabet() {
        let seq = pseudo_seq(500, 2, 3);
        let wm = WaveletMatrix::<RankBitVec>::new(&seq);
        assert_eq!(wm.levels(), 1);
        for i in 0..seq.len() {
            assert_eq!(wm.access(i), seq[i]);
        }
        assert_eq!(wm.rank(1, 500), naive_rank(&seq, 1, 500));
    }

    #[test]
    fn levels_are_ceil_log_sigma() {
        let seq: Vec<Symbol> = (0..1000u32).map(|i| i % 1000).collect();
        let wm = WaveletMatrix::<RankBitVec>::new(&seq);
        assert_eq!(wm.levels(), 10); // ceil(log2(1000))
        assert_eq!(wm.alphabet_size(), 1000);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let seq = pseudo_seq(150_000, 300, 7);
        let wm_seq = WaveletMatrix::<RankBitVec>::with_params(&seq, ());
        for threads in [2usize, 4] {
            let wm_par = WaveletMatrix::<RankBitVec>::with_params_mt(&seq, (), threads);
            assert_eq!(wm_par.zeros, wm_seq.zeros, "{threads} threads");
            assert_eq!(wm_par.size_in_bytes(), wm_seq.size_in_bytes());
            for i in (0..seq.len()).step_by(619) {
                assert_eq!(wm_par.access(i), wm_seq.access(i), "access({i})");
                assert_eq!(
                    wm_par.rank(seq[i], i + 1),
                    wm_seq.rank(seq[i], i + 1),
                    "rank at {i}"
                );
            }
        }
    }

    #[test]
    fn size_tracks_log_sigma_not_entropy() {
        // Uniform over 256 symbols vs highly skewed over 256: the WM with a
        // plain backend uses ~8 bits/symbol for both — unlike the HWT.
        let uniform = pseudo_seq(50_000, 256, 1);
        let mut skewed = vec![0u32; 50_000];
        for i in (0..skewed.len()).step_by(100) {
            skewed[i] = 255;
        }
        let a = WaveletMatrix::<RankBitVec>::new(&uniform).size_in_bits() as f64 / 50_000.0;
        let b = WaveletMatrix::<RankBitVec>::new(&skewed).size_in_bits() as f64 / 50_000.0;
        assert!((a - b).abs() < 1.0, "uniform {a:.2} vs skewed {b:.2}");
        assert!(a > 8.0 && a < 10.5);
    }
}
