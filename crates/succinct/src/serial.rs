//! Minimal binary persistence for the succinct structures.
//!
//! A production index is built once and queried for months; [`Persist`]
//! lets every structure be written to and reloaded from a stream in a
//! stable little-endian format, without any serialization dependency.
//! `cinct::CinctIndex` composes these impls into whole-index save/load.

use crate::bits::BitBuf;
use crate::huffman::CodeTable;
use crate::int_vec::IntVec;
use crate::rank_bits::RankBitVec;
use crate::rrr::RrrBitVec;
use std::io::{self, Read, Write};

/// Stream (de)serialization in a stable little-endian layout.
pub trait Persist: Sized {
    /// Write `self` to the stream.
    fn persist(&self, w: &mut dyn Write) -> io::Result<()>;
    /// Read a value previously written with [`Persist::persist`].
    fn restore(r: &mut dyn Read) -> io::Result<Self>;
}

/// Write a `u64` little-endian.
pub fn write_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read a `u64` little-endian.
pub fn read_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Write a `usize` as `u64`.
pub fn write_usize(w: &mut dyn Write, v: usize) -> io::Result<()> {
    write_u64(w, v as u64)
}

/// Read a `usize` (written as `u64`), failing on overflow.
pub fn read_usize(r: &mut dyn Read) -> io::Result<usize> {
    usize::try_from(read_u64(r)?)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "usize overflow"))
}

impl Persist for Vec<u64> {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.len())?;
        for &v in self {
            write_u64(w, v)?;
        }
        Ok(())
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let n = read_usize(r)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read_u64(r)?);
        }
        Ok(out)
    }
}

impl Persist for Vec<u32> {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.len())?;
        for &v in self {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let n = read_usize(r)?;
        let mut out = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            out.push(u32::from_le_bytes(buf));
        }
        Ok(out)
    }
}

impl Persist for Vec<u8> {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.len())?;
        w.write_all(self)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let n = read_usize(r)?;
        let mut out = vec![0u8; n];
        r.read_exact(&mut out)?;
        Ok(out)
    }
}

impl Persist for BitBuf {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.len())?;
        self.words().to_vec().persist(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let len = read_usize(r)?;
        let words: Vec<u64> = Persist::restore(r)?;
        if words.len() != len.div_ceil(64) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "BitBuf word count mismatch",
            ));
        }
        Ok(BitBuf::from_raw_parts(words, len))
    }
}

impl Persist for IntVec {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.width())?;
        write_usize(w, self.len())?;
        self.raw_bits().persist(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let width = read_usize(r)?;
        let len = read_usize(r)?;
        let bits = BitBuf::restore(r)?;
        IntVec::from_raw_parts(bits, width, len)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "IntVec shape mismatch"))
    }
}

impl Persist for RankBitVec {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        // The directory is derived; persist only the raw bits.
        self.bits().persist(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        Ok(RankBitVec::new(BitBuf::restore(r)?))
    }
}

impl Persist for RrrBitVec {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        // The rank directory is derived state: only the compressed payload
        // is written, and `from_raw_parts` rebuilds the directory on load.
        let (b, len, classes, offsets, ones) = self.raw_parts();
        write_usize(w, b)?;
        write_usize(w, len)?;
        classes.persist(w)?;
        offsets.persist(w)?;
        write_usize(w, ones)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let b = read_usize(r)?;
        let len = read_usize(r)?;
        let classes = BitBuf::restore(r)?;
        let offsets = BitBuf::restore(r)?;
        let ones = read_usize(r)?;
        RrrBitVec::from_raw_parts(b, len, classes, offsets, ones)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "RRR shape mismatch"))
    }
}

impl Persist for CodeTable {
    fn persist(&self, w: &mut dyn Write) -> io::Result<()> {
        let (bits, lens) = self.raw_parts();
        bits.persist(w)?;
        lens.to_vec().persist(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let bits = IntVec::restore(r)?;
        let lens: Vec<u8> = Persist::restore(r)?;
        CodeTable::from_raw_parts(bits, lens)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "CodeTable mismatch"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::BitRank;

    fn roundtrip<T: Persist>(v: &T) -> T {
        let mut buf = Vec::new();
        v.persist(&mut buf).expect("write");
        let mut cur = io::Cursor::new(buf);
        let back = T::restore(&mut cur).expect("read");
        assert_eq!(
            cur.position() as usize,
            cur.get_ref().len(),
            "trailing bytes"
        );
        back
    }

    #[test]
    fn bitbuf_roundtrip() {
        let b = BitBuf::from_bools((0..777).map(|i| i % 3 == 0));
        let back = roundtrip(&b);
        assert_eq!(b, back);
    }

    #[test]
    fn intvec_roundtrip() {
        let mut v = IntVec::new(13);
        for i in 0..500u64 {
            v.push(i % 8000);
        }
        let back = roundtrip(&v);
        assert_eq!(back.len(), v.len());
        for i in 0..v.len() {
            assert_eq!(back.get(i), v.get(i));
        }
    }

    #[test]
    fn rank_bitvec_roundtrip() {
        let bits = BitBuf::from_bools((0..3000).map(|i| (i * 7) % 11 < 4));
        let rb = RankBitVec::new(bits);
        let back = roundtrip(&rb);
        assert_eq!(back.len(), rb.len());
        for i in (0..=rb.len()).step_by(97) {
            assert_eq!(back.rank1(i), rb.rank1(i));
        }
    }

    #[test]
    fn rrr_roundtrip() {
        let bits = BitBuf::from_bools((0..3000).map(|i| (i * 13) % 17 < 3));
        for b in [15usize, 63] {
            let rrr = RrrBitVec::new(&bits, b);
            let back = roundtrip(&rrr);
            assert_eq!(back.len(), rrr.len());
            for i in (0..=rrr.len()).step_by(61) {
                assert_eq!(back.rank1(i), rrr.rank1(i), "b={b} i={i}");
            }
        }
    }

    #[test]
    fn corrupt_data_is_rejected() {
        let b = BitBuf::from_bools((0..100).map(|i| i % 2 == 0));
        let mut buf = Vec::new();
        b.persist(&mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(BitBuf::restore(&mut io::Cursor::new(buf)).is_err());
    }
}
