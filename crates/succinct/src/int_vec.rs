//! Fixed-width packed integer vectors.
//!
//! Used for the C-array companion tables, SA samples, and anywhere a
//! `Vec<u32>`/`Vec<u64>` would waste bits (index size accounting must be
//! faithful for the paper's bits-per-symbol plots).

use crate::bits::BitBuf;
use crate::traits::SpaceUsage;

/// A vector of unsigned integers, each stored in exactly `width` bits.
#[derive(Clone, Debug, Default)]
pub struct IntVec {
    bits: BitBuf,
    width: usize,
    len: usize,
}

impl IntVec {
    /// An empty vector storing `width`-bit values (`width <= 64`).
    pub fn new(width: usize) -> Self {
        assert!(width <= 64);
        Self {
            bits: BitBuf::new(),
            width,
            len: 0,
        }
    }

    /// Minimal width to represent `max_value`.
    pub fn width_for(max_value: u64) -> usize {
        (64 - max_value.leading_zeros() as usize).max(1)
    }

    /// Pack a slice with the minimal width for its maximum element.
    pub fn from_slice(values: &[u64]) -> Self {
        let width = Self::width_for(values.iter().copied().max().unwrap_or(0));
        let mut v = Self::with_capacity(width, values.len());
        for &x in values {
            v.push(x);
        }
        v
    }

    /// An empty vector with room for `n` values.
    pub fn with_capacity(width: usize, n: usize) -> Self {
        assert!(width <= 64);
        Self {
            bits: BitBuf::with_capacity(width * n),
            width,
            len: 0,
        }
    }

    /// Append `value` (must fit in `width` bits).
    #[inline]
    pub fn push(&mut self, value: u64) {
        debug_assert!(self.width == 64 || value < (1u64 << self.width));
        self.bits.push_bits(value, self.width);
        self.len += 1;
    }

    /// The value at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.bits.get_bits(i * self.width, self.width)
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per stored value.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Iterator over all values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Release spare capacity.
    pub fn shrink_to_fit(&mut self) {
        self.bits.shrink_to_fit();
    }

    /// The packed bit storage (persistence support).
    pub fn raw_bits(&self) -> &BitBuf {
        &self.bits
    }

    /// Reassemble from packed bits + shape; `None` if the shape does not
    /// match the bit count.
    pub fn from_raw_parts(bits: BitBuf, width: usize, len: usize) -> Option<Self> {
        if width > 64 || bits.len() != width * len {
            return None;
        }
        Some(Self { bits, width, len })
    }
}

impl SpaceUsage for IntVec {
    fn size_in_bytes(&self) -> usize {
        self.bits.size_in_bytes() + std::mem::size_of::<usize>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [1usize, 5, 17, 32, 33, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let vals: Vec<u64> = (0..300u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & mask)
                .collect();
            let mut v = IntVec::new(width);
            for &x in &vals {
                v.push(x);
            }
            assert_eq!(v.len(), vals.len());
            for (i, &x) in vals.iter().enumerate() {
                assert_eq!(v.get(i), x, "width={width} i={i}");
            }
            let back: Vec<u64> = v.iter().collect();
            assert_eq!(back, vals);
        }
    }

    #[test]
    fn width_for_values() {
        assert_eq!(IntVec::width_for(0), 1);
        assert_eq!(IntVec::width_for(1), 1);
        assert_eq!(IntVec::width_for(2), 2);
        assert_eq!(IntVec::width_for(255), 8);
        assert_eq!(IntVec::width_for(256), 9);
        assert_eq!(IntVec::width_for(u64::MAX), 64);
    }

    #[test]
    fn from_slice_packs_minimally() {
        let v = IntVec::from_slice(&[3, 7, 0, 5]);
        assert_eq!(v.width(), 3);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![3, 7, 0, 5]);
    }

    #[test]
    fn empty_from_slice() {
        let v = IntVec::from_slice(&[]);
        assert!(v.is_empty());
        assert_eq!(v.width(), 1);
    }
}
