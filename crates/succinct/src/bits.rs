//! A growable bit buffer with word-level access.
//!
//! [`BitBuf`] is the raw material from which the rank structures are built:
//! wavelet-tree construction appends bits level by level, then hands the
//! buffer to [`crate::RankBitVec`] or [`crate::RrrBitVec`].

use crate::traits::SpaceUsage;

/// An append-only, randomly readable vector of bits, stored LSB-first in
/// `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitBuf {
    words: Vec<u64>,
    len: usize,
}

impl BitBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with capacity for `nbits` bits.
    pub fn with_capacity(nbits: usize) -> Self {
        Self {
            words: Vec::with_capacity(nbits.div_ceil(64)),
            len: 0,
        }
    }

    /// A buffer of `nbits` zero bits.
    pub fn zeros(nbits: usize) -> Self {
        Self {
            words: vec![0u64; nbits.div_ceil(64)],
            len: nbits,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Append the low `width` bits of `value`, LSB first. `width <= 64`.
    #[inline]
    pub fn push_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || value < (1u64 << width) || width == 0);
        if width == 0 {
            return;
        }
        let off = self.len % 64;
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << off;
        if off + width > 64 {
            self.words.push(value >> (64 - off));
        }
        self.len += width;
    }

    /// Read the bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set the bit at position `i`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Read `width <= 64` bits starting at position `i`, LSB first.
    #[inline]
    pub fn get_bits(&self, i: usize, width: usize) -> u64 {
        debug_assert!(width <= 64);
        debug_assert!(i + width <= self.len);
        if width == 0 {
            return 0;
        }
        let word = i / 64;
        let off = i % 64;
        let mut v = self.words[word] >> off;
        if off + width > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        }
    }

    /// The underlying words (the last word's high bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassemble from raw words + bit length (persistence support). The
    /// caller must supply exactly `len.div_ceil(64)` words.
    pub fn from_raw_parts(words: Vec<u64>, len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        Self { words, len }
    }

    /// Count of ones in the whole buffer.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Build from an iterator of bools.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut b = Self::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }

    /// Shrink the backing storage to fit.
    pub fn shrink_to_fit(&mut self) {
        self.words.shrink_to_fit();
    }

    /// Append every bit of `other`, word-chunked (64 bits per step, not
    /// bit-by-bit). This is the stitch primitive of the parallel builders:
    /// per-shard buffers concatenate in shard order, so the combined
    /// stream is identical to a sequential build's.
    pub fn append(&mut self, other: &BitBuf) {
        self.words
            .reserve((self.len + other.len).div_ceil(64) - self.words.len());
        let mut i = 0usize;
        while i + 64 <= other.len {
            self.push_bits(other.get_bits(i, 64), 64);
            i += 64;
        }
        if i < other.len {
            self.push_bits(other.get_bits(i, other.len - i), other.len - i);
        }
    }
}

impl SpaceUsage for BitBuf {
    fn size_in_bytes(&self) -> usize {
        self.words.capacity() * 8 + std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern = |i: usize| (i * 7 + 3) % 5 < 2;
        let mut b = BitBuf::new();
        for i in 0..1000 {
            b.push(pattern(i));
        }
        assert_eq!(b.len(), 1000);
        for i in 0..1000 {
            assert_eq!(b.get(i), pattern(i), "bit {i}");
        }
    }

    #[test]
    fn push_bits_matches_single_pushes() {
        let mut a = BitBuf::new();
        let mut b = BitBuf::new();
        let values = [
            (0b1011u64, 4),
            (0u64, 1),
            (u64::MAX, 64),
            (0b1, 1),
            (0x1234_5678_9abc_def0, 61),
            (0, 0),
            (0b111, 3),
        ];
        for &(v, w) in &values {
            a.push_bits(v, w);
            for k in 0..w {
                b.push((v >> k) & 1 == 1);
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn get_bits_roundtrip() {
        let mut b = BitBuf::new();
        let vals: Vec<(u64, usize)> = (0..200)
            .map(|i| {
                let w = 1 + (i * 13) % 64;
                let v = (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1))
                    & if w == 64 { u64::MAX } else { (1 << w) - 1 };
                (v, w)
            })
            .collect();
        for &(v, w) in &vals {
            b.push_bits(v, w);
        }
        let mut pos = 0;
        for &(v, w) in &vals {
            assert_eq!(b.get_bits(pos, w), v);
            pos += w;
        }
    }

    #[test]
    fn set_and_zeros() {
        let mut b = BitBuf::zeros(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
        assert!(b.get(0) && b.get(129) && !b.get(64));
    }

    #[test]
    fn from_bools_iter() {
        let bits = vec![true, false, true, true, false];
        let b = BitBuf::from_bools(bits.iter().copied());
        let back: Vec<bool> = b.iter().collect();
        assert_eq!(bits, back);
    }

    #[test]
    fn append_matches_pushes() {
        // Appends at every word-phase offset, including empty operands.
        for head_len in [0usize, 1, 63, 64, 65, 130] {
            for tail_len in [0usize, 1, 64, 100, 129] {
                let head = BitBuf::from_bools((0..head_len).map(|i| i % 3 == 0));
                let tail = BitBuf::from_bools((0..tail_len).map(|i| i % 5 < 2));
                let mut joined = head.clone();
                joined.append(&tail);
                let expect = BitBuf::from_bools(head.iter().chain(tail.iter()));
                assert_eq!(joined, expect, "head={head_len} tail={tail_len}");
            }
        }
    }

    #[test]
    fn empty_buffer() {
        let b = BitBuf::new();
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.get_bits(0, 0), 0);
    }
}
