//! Plain (uncompressed) bit vector with constant-time rank and
//! logarithmic-time select.
//!
//! This is the "uncompressed bitmap" backend (Jacobson-style directory,
//! paper reference \[11\]) used by the UFMI baseline. The directory uses
//! 512-bit blocks (`u32` counters relative to a superblock) under 65536-bit
//! superblocks (`u64` absolute counters), ≈ 6.4% space overhead.

use crate::bits::BitBuf;
use crate::traits::{BitRank, BitVecBuild, SpaceUsage};

/// Words per block: 8 × 64 = 512 bits.
const BLOCK_WORDS: usize = 8;
const BLOCK_BITS: usize = BLOCK_WORDS * 64;
/// Blocks per superblock: 128 × 512 = 65536 bits.
const SUPER_BLOCKS: usize = 128;
const SUPER_BITS: usize = SUPER_BLOCKS * BLOCK_BITS;

/// Uncompressed bit vector with O(1) `rank` and O(log n) `select`.
#[derive(Clone, Debug)]
pub struct RankBitVec {
    bits: BitBuf,
    /// Cumulative ones before each superblock (absolute).
    super_ranks: Vec<u64>,
    /// Cumulative ones before each block, relative to its superblock.
    block_ranks: Vec<u32>,
    ones: usize,
}

impl RankBitVec {
    /// Build the rank directory over `bits`.
    pub fn new(mut bits: BitBuf) -> Self {
        bits.shrink_to_fit();
        let n_blocks = bits.words().len().div_ceil(BLOCK_WORDS);
        let mut super_ranks = Vec::with_capacity(n_blocks / SUPER_BLOCKS + 1);
        let mut block_ranks = Vec::with_capacity(n_blocks);
        let mut total: u64 = 0;
        for blk in 0..n_blocks {
            if blk % SUPER_BLOCKS == 0 {
                super_ranks.push(total);
            }
            block_ranks.push((total - super_ranks[blk / SUPER_BLOCKS]) as u32);
            let start = blk * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(bits.words().len());
            for &w in &bits.words()[start..end] {
                total += w.count_ones() as u64;
            }
        }
        if super_ranks.is_empty() {
            super_ranks.push(0);
        }
        Self {
            bits,
            super_ranks,
            block_ranks,
            ones: total as usize,
        }
    }

    /// Position of the `k`-th (0-based) set bit, or `None` if `k >= ones`.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        let k64 = k as u64;
        // Superblock: last one whose cumulative count is <= k.
        let sb = self.super_ranks.partition_point(|&r| r <= k64) - 1;
        let rel = (k64 - self.super_ranks[sb]) as u32;
        // Block within the superblock.
        let blk_lo = sb * SUPER_BLOCKS;
        let blk_hi = (blk_lo + SUPER_BLOCKS).min(self.block_ranks.len());
        let within = self.block_ranks[blk_lo..blk_hi].partition_point(|&r| r <= rel) - 1;
        let blk = blk_lo + within;
        let mut rem = (rel - self.block_ranks[blk]) as usize;
        let words = self.bits.words();
        let start = blk * BLOCK_WORDS;
        let end = (start + BLOCK_WORDS).min(words.len());
        for (wi, &w) in words.iter().enumerate().take(end).skip(start) {
            let c = w.count_ones() as usize;
            if rem < c {
                return Some(wi * 64 + select_in_word(w, rem as u32) as usize);
            }
            rem -= c;
        }
        None
    }

    /// Position of the `k`-th (0-based) zero bit, or `None`.
    ///
    /// Routed through the same two-level directory as [`Self::select1`]:
    /// zeros before a (super)block are `block_bits − ones`, so the existing
    /// one-counters answer zero-searches without extra storage — unlike the
    /// seed's binary search over `rank0`, which paid `O(log n)` full rank
    /// probes per call.
    pub fn select0(&self, k: usize) -> Option<usize> {
        let zeros = self.len() - self.ones;
        if k >= zeros {
            return None;
        }
        let k64 = k as u64;
        // Superblock: last one whose zeros-before (= bits-before − ones-
        // before) is <= k. Index-aware predicate, so a manual bisection
        // rather than `partition_point`.
        let (mut lo, mut hi) = (0usize, self.super_ranks.len() - 1);
        while lo < hi {
            let mid = hi - (hi - lo) / 2;
            if (mid * SUPER_BITS) as u64 - self.super_ranks[mid] <= k64 {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let sb = lo;
        let rel = k64 - ((sb * SUPER_BITS) as u64 - self.super_ranks[sb]);
        // Block within the superblock, same zeros-before transform.
        let blk_lo = sb * SUPER_BLOCKS;
        let blk_hi = (blk_lo + SUPER_BLOCKS).min(self.block_ranks.len());
        let (mut lo, mut hi) = (blk_lo, blk_hi - 1);
        while lo < hi {
            let mid = hi - (hi - lo) / 2;
            if ((mid - blk_lo) * BLOCK_BITS) as u64 - self.block_ranks[mid] as u64 <= rel {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let blk = lo;
        let mut rem =
            (rel - (((blk - blk_lo) * BLOCK_BITS) as u64 - self.block_ranks[blk] as u64)) as usize;
        let words = self.bits.words();
        let start = blk * BLOCK_WORDS;
        let end = (start + BLOCK_WORDS).min(words.len());
        for (wi, &w) in words.iter().enumerate().take(end).skip(start) {
            // Inverted word: ones mark zeros. Phantom zeros beyond `len` in
            // the final word sort after every real zero, and `k < zeros`
            // guarantees the target is real, so they are never selected.
            let w = !w;
            let c = w.count_ones() as usize;
            if rem < c {
                return Some(wi * 64 + select_in_word(w, rem as u32) as usize);
            }
            rem -= c;
        }
        None
    }

    /// Borrow the raw bits.
    pub fn bits(&self) -> &BitBuf {
        &self.bits
    }
}

/// Position (0-based) of the `k`-th set bit within a word; `k` < popcount(w).
#[inline]
fn select_in_word(mut w: u64, mut k: u32) -> u32 {
    let mut base = 0u32;
    loop {
        let c = (w & 0xFF).count_ones();
        if k < c {
            let mut byte = w & 0xFF;
            loop {
                let tz = byte.trailing_zeros();
                if k == 0 {
                    return base + tz;
                }
                byte &= byte - 1;
                k -= 1;
            }
        }
        k -= c;
        w >>= 8;
        base += 8;
    }
}

impl BitRank for RankBitVec {
    fn len(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    #[inline]
    fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len());
        if i == self.len() {
            return self.ones;
        }
        let mut r = self.super_ranks[i / SUPER_BITS] + self.block_ranks[i / BLOCK_BITS] as u64;
        let word = i / 64;
        let words = self.bits.words();
        for &w in &words[(i / BLOCK_BITS) * BLOCK_WORDS..word] {
            r += w.count_ones() as u64;
        }
        let off = i % 64;
        if off != 0 {
            r += (words[word] & ((1u64 << off) - 1)).count_ones() as u64;
        }
        r as usize
    }

    fn count_ones(&self) -> usize {
        self.ones
    }
}

impl SpaceUsage for RankBitVec {
    fn size_in_bytes(&self) -> usize {
        self.bits.size_in_bytes()
            + self.super_ranks.capacity() * 8
            + self.block_ranks.capacity() * 4
    }
}

impl BitVecBuild for RankBitVec {
    type Params = ();

    fn default_params() -> Self::Params {}

    fn build(bits: &BitBuf, _params: Self::Params) -> Self {
        Self::new(bits.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bits(n: usize, density_mod: u64) -> BitBuf {
        let mut b = BitBuf::new();
        let mut x = 0x9e37_79b9u64;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.push(x % 100 < density_mod);
        }
        b
    }

    fn check_against_naive(bits: &BitBuf) {
        let rb = RankBitVec::new(bits.clone());
        let mut ones = 0usize;
        for i in 0..=bits.len() {
            assert_eq!(rb.rank1(i), ones, "rank1({i})");
            assert_eq!(rb.rank0(i), i - ones, "rank0({i})");
            if i < bits.len() {
                assert_eq!(rb.get(i), bits.get(i));
                if bits.get(i) {
                    assert_eq!(rb.select1(ones), Some(i), "select1({ones})");
                    ones += 1;
                } else {
                    assert_eq!(rb.select0(i - ones), Some(i), "select0");
                }
            }
        }
        assert_eq!(rb.count_ones(), ones);
        assert_eq!(rb.select1(ones), None);
    }

    #[test]
    fn rank_select_dense() {
        check_against_naive(&pseudo_bits(1500, 70));
    }

    #[test]
    fn rank_select_sparse() {
        check_against_naive(&pseudo_bits(1500, 3));
    }

    #[test]
    fn rank_select_all_ones_and_zeros() {
        check_against_naive(&BitBuf::from_bools(std::iter::repeat(true).take(700)));
        check_against_naive(&BitBuf::from_bools(std::iter::repeat(false).take(700)));
    }

    #[test]
    fn boundary_lengths() {
        for n in [1usize, 63, 64, 65, 511, 512, 513, 4096] {
            check_against_naive(&pseudo_bits(n, 50));
        }
    }

    #[test]
    fn crosses_superblock_boundary() {
        // > 65536 bits so at least two superblocks exist; spot-check ranks.
        let bits = pseudo_bits(70_000, 40);
        let rb = RankBitVec::new(bits.clone());
        let mut ones = 0usize;
        for i in 0..bits.len() {
            if i % 997 == 0 {
                assert_eq!(rb.rank1(i), ones, "rank1({i})");
            }
            ones += bits.get(i) as usize;
        }
        assert_eq!(rb.rank1(bits.len()), ones);
        // select across the boundary — zeros as well as ones.
        let mut seen = 0usize;
        let mut seen0 = 0usize;
        for i in 0..bits.len() {
            if bits.get(i) {
                if seen % 1009 == 0 {
                    assert_eq!(rb.select1(seen), Some(i));
                }
                seen += 1;
            } else {
                if seen0 % 1013 == 0 {
                    assert_eq!(rb.select0(seen0), Some(i), "select0({seen0})");
                }
                seen0 += 1;
            }
        }
        assert_eq!(rb.select0(seen0), None);
    }

    #[test]
    fn select0_boundaries() {
        // All ones: no zero to select at any k.
        let ones = RankBitVec::new(BitBuf::from_bools(std::iter::repeat(true).take(1000)));
        assert_eq!(ones.select0(0), None);
        // Lone zero at a word boundary, straddling block edges.
        for pos in [0usize, 63, 64, 511, 512, 513, 999] {
            let mut b = BitBuf::from_bools(std::iter::repeat(true).take(1000));
            b.set(pos, false);
            let rb = RankBitVec::new(b);
            assert_eq!(rb.select0(0), Some(pos), "zero at {pos}");
            assert_eq!(rb.select0(1), None);
        }
        // All zeros: identity select across block/superblock strata.
        let zeros = RankBitVec::new(BitBuf::zeros(70_000));
        for k in [0usize, 63, 64, 511, 512, 65_535, 65_536, 69_999] {
            assert_eq!(zeros.select0(k), Some(k));
        }
        assert_eq!(zeros.select0(70_000), None);
        // Phantom zeros beyond len in the final word are never selected.
        let mut tail = BitBuf::zeros(65);
        tail.set(64, true); // last real bit is a one
        let rb = RankBitVec::new(tail);
        assert_eq!(rb.select0(63), Some(63));
        assert_eq!(rb.select0(64), None);
    }

    #[test]
    fn empty() {
        let rb = RankBitVec::new(BitBuf::new());
        assert_eq!(rb.len(), 0);
        assert_eq!(rb.rank1(0), 0);
        assert_eq!(rb.select1(0), None);
        assert_eq!(rb.select0(0), None);
    }

    #[test]
    fn overhead_is_modest() {
        let bits = pseudo_bits(1_000_000, 50);
        let rb = RankBitVec::new(bits);
        let per_bit = rb.size_in_bits() as f64 / 1_000_000.0;
        assert!(per_bit < 1.09, "directory overhead too large: {per_bit:.4}");
    }

    #[test]
    fn select_in_word_exhaustive_small() {
        for w in [0b1u64, 0b1010, 0xFFFF_0000_FFFF_0000, u64::MAX, 1 << 63] {
            let mut idx = 0;
            for pos in 0..64 {
                if (w >> pos) & 1 == 1 {
                    assert_eq!(select_in_word(w, idx), pos);
                    idx += 1;
                }
            }
        }
    }
}
