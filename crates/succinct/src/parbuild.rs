//! Shared machinery for multi-threaded structure construction.
//!
//! Every parallel builder in this crate follows one discipline: the input
//! is cut into **contiguous shards**, each shard is processed
//! independently on the rayon fork-join scope, and the per-shard outputs
//! are **stitched back in shard order**. Because shard boundaries never
//! change an element's relative order, the stitched result is identical —
//! byte-for-byte once serialized — to a sequential build; thread count
//! only affects wall-clock. Tests in `rrr`, `wavelet_tree`,
//! `wavelet_matrix`, and `cinct`'s builder pin that invariant.

use crate::bits::BitBuf;
use crate::traits::Symbol;

/// One shard's partition output: its bit run and routed buckets.
type Shard = (BitBuf, Vec<Symbol>, Vec<Symbol>);

/// Below this many items a parallel partition costs more in thread spawns
/// than it saves (the rayon shim spawns OS threads per scope).
pub(crate) const PAR_MIN_ITEMS: usize = 1 << 16;

/// Resolve a thread-count knob under the workspace's shared `0` = "auto"
/// convention ([`rayon::resolve_threads`]).
pub(crate) fn effective_threads(threads: usize) -> usize {
    rayon::resolve_threads(threads)
}

/// Partition one wavelet node/level: emit `pred(s)` per symbol into a bit
/// buffer and route symbols to the zero/one bucket (each optionally
/// suppressed when the consumer discards that side). Sequential kernel.
fn partition_chunk<F: Fn(Symbol) -> bool>(
    seq: &[Symbol],
    pred: &F,
    keep_zeros: bool,
    keep_ones: bool,
) -> Shard {
    let mut bits = BitBuf::with_capacity(seq.len());
    // A kept bucket holds at most the whole chunk and typically about
    // half; seeding half the capacity keeps realloc churn to one final
    // doubling in the worst case instead of a full geometric climb.
    let mut zeros = Vec::with_capacity(if keep_zeros { seq.len() / 2 + 1 } else { 0 });
    let mut ones = Vec::with_capacity(if keep_ones { seq.len() / 2 + 1 } else { 0 });
    // Emitted bits accumulate in a register and land 64 at a time — no
    // per-bit word indexing or grow checks.
    let mut word = 0u64;
    let mut fill = 0usize;
    for &s in seq {
        let bit = pred(s);
        word |= (bit as u64) << fill;
        fill += 1;
        if fill == 64 {
            bits.push_bits(word, 64);
            word = 0;
            fill = 0;
        }
        if bit {
            if keep_ones {
                ones.push(s);
            }
        } else if keep_zeros {
            zeros.push(s);
        }
    }
    if fill > 0 {
        bits.push_bits(word, fill);
    }
    (bits, zeros, ones)
}

/// [`partition_chunk`] sharded across up to `threads` workers and stitched
/// in shard order (deterministic: output equals the sequential kernel's).
pub(crate) fn partition_by<F>(
    seq: &[Symbol],
    pred: F,
    keep_zeros: bool,
    keep_ones: bool,
    threads: usize,
) -> Shard
where
    F: Fn(Symbol) -> bool + Sync,
{
    let threads = effective_threads(threads);
    if threads <= 1 || seq.len() < PAR_MIN_ITEMS {
        return partition_chunk(seq, &pred, keep_zeros, keep_ones);
    }
    let per = seq.len().div_ceil(threads);
    let n_shards = seq.len().div_ceil(per);
    let mut shards: Vec<Option<Shard>> = vec![None; n_shards];
    let pred = &pred;
    rayon::scope(|s| {
        for (chunk, slot) in seq.chunks(per).zip(shards.iter_mut()) {
            s.spawn(move |_| {
                *slot = Some(partition_chunk(chunk, pred, keep_zeros, keep_ones));
            });
        }
    });
    let mut bits = BitBuf::with_capacity(seq.len());
    // Exact stitch capacities are known once the shards are in.
    let (zeros_total, ones_total) = shards
        .iter()
        .flatten()
        .fold((0, 0), |(z, o), s| (z + s.1.len(), o + s.2.len()));
    let mut zeros = Vec::with_capacity(zeros_total);
    let mut ones = Vec::with_capacity(ones_total);
    for shard in shards {
        let (b, z, o) = shard.expect("every shard spawned");
        bits.append(&b);
        zeros.extend_from_slice(&z);
        ones.extend_from_slice(&o);
    }
    (bits, zeros, ones)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_partition_equals_sequential() {
        let seq: Vec<Symbol> = (0..200_000u32)
            .map(|i| i.wrapping_mul(2654435761) % 97)
            .collect();
        let pred = |s: Symbol| s % 3 == 0;
        let seq_out = partition_chunk(&seq, &pred, true, true);
        for threads in [2usize, 3, 8] {
            let par_out = partition_by(&seq, pred, true, true, threads);
            assert_eq!(par_out.0, seq_out.0, "bits at {threads} threads");
            assert_eq!(par_out.1, seq_out.1, "zeros at {threads} threads");
            assert_eq!(par_out.2, seq_out.2, "ones at {threads} threads");
        }
    }

    #[test]
    fn suppressed_buckets_stay_empty() {
        let seq: Vec<Symbol> = (0..100_000u32).collect();
        let (bits, zeros, ones) = partition_by(&seq, |s| s % 2 == 1, false, true, 4);
        assert_eq!(bits.len(), seq.len());
        assert!(zeros.is_empty());
        assert_eq!(ones.len(), seq.len() / 2);
    }
}
