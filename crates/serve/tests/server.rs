//! Socket-level integration tests for `cinct serve`: protocol behavior,
//! outcome identity against direct [`cinct::PathQuery`] calls across the
//! fresh → append → query lifecycle (including under concurrent
//! appends), load shedding, deadlines, and graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cinct::{Path, PathQuery, ShardedBuilder, ShardedCinct};
use cinct_serve::json::{obj, Json};
use cinct_serve::{Client, ServeConfig, Server, ServerHandle};

fn corpus() -> ShardedCinct {
    let trajs = vec![
        vec![0, 1, 4, 5],
        vec![0, 1, 2],
        vec![1, 2],
        vec![0, 3],
        vec![2, 3, 4],
        vec![4, 5, 0],
    ];
    ShardedBuilder::new()
        .shards(2)
        .locate_sampling(4)
        .build(&trajs, 6)
}

/// Bind + run on an ephemeral port; returns the handle and the join
/// guard for the accept thread.
fn start(corpus: ShardedCinct, cfg: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", corpus, cfg).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (handle, join)
}

fn path_json(path: &[u32]) -> Json {
    Json::Arr(path.iter().map(|&e| Json::from(e)).collect())
}

fn count_req(path: &[u32]) -> Json {
    obj(&[("path", path_json(path))])
}

fn occ_pairs(v: &Json) -> Vec<(usize, usize)> {
    v.as_arr()
        .unwrap()
        .iter()
        .map(|pair| {
            let p = pair.as_arr().unwrap();
            (p[0].as_usize().unwrap(), p[1].as_usize().unwrap())
        })
        .collect()
}

#[test]
fn lifecycle_identity_fresh_append_query() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // A local mirror evolved with identical appends is the oracle.
    let mut mirror = corpus();

    let patterns: Vec<Vec<u32>> = vec![vec![0, 1], vec![1, 2], vec![4, 5], vec![2], vec![5, 0]];
    let check_all = |client: &mut Client, mirror: &ShardedCinct| {
        for pat in &patterns {
            let (status, resp) = client.post_json("/v1/count", &count_req(pat)).unwrap();
            assert_eq!(status, 200, "{resp:?}");
            assert_eq!(
                resp.get("count").unwrap().as_usize().unwrap(),
                mirror.count(Path::new(pat)),
                "count identity for {pat:?}"
            );
            let (status, resp) = client.post_json("/v1/locate", &count_req(pat)).unwrap();
            assert_eq!(status, 200);
            let direct = mirror.occurrences(Path::new(pat)).unwrap().collect_sorted();
            assert_eq!(resp.get("total").unwrap().as_usize().unwrap(), direct.len());
            assert_eq!(
                occ_pairs(resp.get("occurrences").unwrap()),
                direct,
                "occurrence identity for {pat:?}"
            );
        }
    };

    // Fresh.
    check_all(&mut client, &mirror);

    // Append (twice), re-checking identity after each.
    for batch in [vec![vec![1u32, 2, 5], vec![0, 1]], vec![vec![4, 5, 0, 1]]] {
        let body = obj(&[(
            "batch",
            Json::Arr(batch.iter().map(|t| path_json(t)).collect()),
        )]);
        let (status, resp) = client.post_json("/v1/append", &body).unwrap();
        assert_eq!(status, 200, "{resp:?}");
        let expect = mirror.append_batch(&batch).unwrap();
        let assigned = resp.get("assigned").unwrap();
        assert_eq!(
            assigned.get("start").unwrap().as_usize().unwrap(),
            expect.start
        );
        assert_eq!(assigned.get("end").unwrap().as_usize().unwrap(), expect.end);
        check_all(&mut client, &mirror);
    }

    // Extraction identity: every trajectory recovers byte-for-byte.
    for id in 0..mirror.num_trajectories() {
        let (status, resp) = client
            .post_json("/v1/extract", &obj(&[("trajectory", id.into())]))
            .unwrap();
        assert_eq!(status, 200);
        let symbols: Vec<u32> = resp
            .get("symbols")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.as_usize().unwrap() as u32)
            .collect();
        assert_eq!(symbols, mirror.trajectory(id), "trajectory {id}");
    }

    // Stats reflect the lifecycle.
    let (status, stats) = client.get("/v1/stats").unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(&stats).unwrap();
    assert_eq!(
        stats.get("trajectories").unwrap().as_usize().unwrap(),
        mirror.num_trajectories()
    );
    assert_eq!(stats.get("epoch").unwrap().as_usize().unwrap(), 2);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_appends_and_reads_stay_outcome_identical() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let pat = [1u32, 2];
    let base = {
        let mut c = Client::connect(handle.addr()).unwrap();
        let (_, resp) = c.post_json("/v1/count", &count_req(&pat)).unwrap();
        resp.get("count").unwrap().as_usize().unwrap()
    };
    const APPENDS: usize = 10;
    let appends_done = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Appender client: each batch adds exactly one [1,2] match.
        s.spawn(|| {
            let mut c = Client::connect(handle.addr()).unwrap();
            let body = obj(&[("batch", Json::Arr(vec![path_json(&[1, 2, 4])]))]);
            for _ in 0..APPENDS {
                let (status, _) = c.post_json("/v1/append", &body).unwrap();
                assert_eq!(status, 200);
                appends_done.fetch_add(1, Ordering::Release);
            }
        });
        // Reader clients racing the appender: a count that starts after
        // k appends were acknowledged must reflect at least k of them —
        // the cached-stale-answer bug would violate exactly this.
        for _ in 0..3 {
            s.spawn(|| {
                let mut c = Client::connect(handle.addr()).unwrap();
                loop {
                    let done = appends_done.load(Ordering::Acquire);
                    let (status, resp) = c.post_json("/v1/count", &count_req(&pat)).unwrap();
                    assert_eq!(status, 200);
                    let n = resp.get("count").unwrap().as_usize().unwrap();
                    assert!(
                        n >= base + done,
                        "served {n} after {done} acknowledged appends (base {base})"
                    );
                    if done == APPENDS {
                        break;
                    }
                }
            });
        }
    });

    // Final identity against a mirror grown the same way.
    let mut mirror = corpus();
    for _ in 0..APPENDS {
        mirror.append_batch(&[vec![1, 2, 4]]).unwrap();
    }
    let mut c = Client::connect(handle.addr()).unwrap();
    let (_, resp) = c.post_json("/v1/count", &count_req(&pat)).unwrap();
    assert_eq!(
        resp.get("count").unwrap().as_usize().unwrap(),
        mirror.count(Path::new(&pat))
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_queries_and_cache_flags_round_trip() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let body = obj(&[(
        "paths",
        Json::Arr(vec![
            path_json(&[0, 1]),
            path_json(&[1, 2]),
            path_json(&[3, 0]),
        ]),
    )]);
    let (status, resp) = client.post_json("/v1/count", &body).unwrap();
    assert_eq!(status, 200);
    let counts: Vec<usize> = resp
        .get("counts")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|c| c.as_usize().unwrap())
        .collect();
    assert_eq!(counts, vec![2, 2, 0]);
    assert_eq!(resp.get("cache_hits").unwrap().as_usize(), Some(0));
    // Second round: all three come from the cache.
    let (_, resp) = client.post_json("/v1/count", &body).unwrap();
    assert_eq!(resp.get("cache_hits").unwrap().as_usize(), Some(3));
    // Bypass flag: identical answers, no cache involvement.
    let mut bypass = body.clone();
    if let Json::Obj(m) = &mut bypass {
        m.insert("cache".into(), Json::Bool(false));
    }
    let (_, resp) = client.post_json("/v1/count", &bypass).unwrap();
    assert_eq!(resp.get("cache_hits").unwrap().as_usize(), Some(0));

    // Batched occurrences with a limit: totals are full, lists truncated.
    let body = obj(&[
        (
            "paths",
            Json::Arr(vec![path_json(&[1, 2]), path_json(&[0])]),
        ),
        ("limit", 1usize.into()),
    ]);
    let (status, resp) = client.post_json("/v1/occurrences", &body).unwrap();
    assert_eq!(status, 200);
    let results = resp.get("results").unwrap().as_arr().unwrap();
    let direct = corpus()
        .occurrences(Path::new(&[1, 2]))
        .unwrap()
        .collect_sorted();
    assert_eq!(
        results[0].get("total").unwrap().as_usize().unwrap(),
        direct.len()
    );
    assert_eq!(
        occ_pairs(results[0].get("occurrences").unwrap()),
        direct[..1]
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn error_taxonomy_maps_onto_statuses_over_the_wire() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let kind_of = |resp: &str| {
        Json::parse(resp)
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };

    // Malformed JSON → 400 malformed_json.
    let (status, resp) = client.post("/v1/count", "{not json").unwrap();
    assert_eq!((status, kind_of(&resp).as_str()), (400, "malformed_json"));
    // Unknown edge → 400 unknown_edge (QueryError taxonomy).
    let (status, resp) = client.post_json("/v1/count", &count_req(&[99])).unwrap();
    assert_eq!(
        (status, kind_of(&resp.render()).as_str()),
        (400, "unknown_edge")
    );
    // Empty pattern → 400 empty_pattern.
    let (status, resp) = client.post_json("/v1/count", &count_req(&[])).unwrap();
    assert_eq!(
        (status, kind_of(&resp.render()).as_str()),
        (400, "empty_pattern")
    );
    // Missing member → 400 invalid_input.
    let (status, resp) = client.post("/v1/count", "{}").unwrap();
    assert_eq!((status, kind_of(&resp).as_str()), (400, "invalid_input"));
    // Unknown route → 404, wrong method → 405.
    let (status, _) = client.get("/v1/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.get("/v1/count").unwrap();
    assert_eq!(status, 405);
    // An absent path is NOT an error at any layer.
    let (status, resp) = client.post_json("/v1/count", &count_req(&[3, 0])).unwrap();
    assert_eq!(status, 200);
    assert_eq!(resp.get("count").unwrap().as_usize(), Some(0));

    // Locate without sampling support → 422 locate_unsupported.
    let no_locate = ShardedBuilder::new()
        .shards(2)
        .build(&[vec![0u32, 1], vec![1, 0]], 2);
    let (h2, j2) = start(no_locate, ServeConfig::default());
    let mut c2 = Client::connect(h2.addr()).unwrap();
    let (status, resp) = c2.post_json("/v1/locate", &count_req(&[0, 1])).unwrap();
    assert_eq!(
        (status, kind_of(&resp.render()).as_str()),
        (422, "locate_unsupported")
    );
    h2.shutdown();
    j2.join().unwrap();

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn zero_deadline_sheds_queries_with_503() {
    let (handle, join) = start(
        corpus(),
        ServeConfig {
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    let (status, resp) = client.post_json("/v1/count", &count_req(&[0, 1])).unwrap();
    assert_eq!(status, 503, "{resp:?}");
    assert_eq!(
        resp.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    // Health and metrics are exempt from the deadline.
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn full_accept_queue_sheds_with_429() {
    // One worker, queue depth 1. A connected idle client *owns* the
    // worker for its keep-alive lifetime, a second connection fills the
    // queue, so a third must be shed with 429 + Retry-After.
    let (handle, join) = start(
        corpus(),
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    );
    let mut holder = Client::connect(handle.addr()).unwrap();
    let (status, _) = holder.get("/healthz").unwrap(); // bind worker to this conn
    assert_eq!(status, 200);
    let _queued = TcpStream::connect(handle.addr()).unwrap(); // fills the queue
    std::thread::sleep(Duration::from_millis(100)); // let accept loop enqueue it

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut shed_seen = false;
    while Instant::now() < deadline {
        let mut c = Client::connect(handle.addr()).unwrap();
        match c.get("/healthz") {
            Ok((429, body)) => {
                let parsed = Json::parse(&body).unwrap();
                assert_eq!(
                    parsed.get("error").unwrap().get("kind").unwrap().as_str(),
                    Some("overloaded")
                );
                shed_seen = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(shed_seen, "no 429 observed under a saturated accept queue");
    drop(holder);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn graceful_drain_finishes_in_flight_and_refuses_new_connects() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let addr = handle.addr();

    // Open a connection and send only half the request, so it is
    // genuinely in flight when the drain starts.
    let mut inflight = TcpStream::connect(addr).unwrap();
    inflight.set_nodelay(true).unwrap();
    let body = r#"{"path":[0,1]}"#;
    let head = format!(
        "POST /v1/count HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    inflight.write_all(head.as_bytes()).unwrap();
    inflight.write_all(&body.as_bytes()[..5]).unwrap();
    inflight.flush().unwrap();
    std::thread::sleep(Duration::from_millis(50)); // worker is mid-read

    handle.shutdown();

    // Finish the request: it must complete with a correct answer and
    // Connection: close.
    inflight.write_all(&body.as_bytes()[5..]).unwrap();
    inflight.flush().unwrap();
    let mut response = String::new();
    inflight.read_to_string(&mut response).unwrap(); // server closes after
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("Connection: close"), "{response}");
    assert!(response.contains("\"count\":2"), "{response}");

    // run() returns once the drain completes...
    join.join().unwrap();
    // ...and the port no longer accepts connections.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "listener still accepting after drain");
}

#[test]
fn pipelined_requests_on_one_connection() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    // Write two requests back-to-back before reading either response.
    let b1 = r#"{"path":[0,1]}"#;
    let raw = format!(
        "POST /v1/count HTTP/1.1\r\nContent-Length: {}\r\n\r\n{b1}GET /healthz HTTP/1.1\r\n\r\n",
        b1.len()
    );
    client.send_raw(raw.as_bytes()).unwrap();
    let (s1, r1) = client.read_response().unwrap();
    let (s2, r2) = client.read_response().unwrap();
    assert_eq!(s1, 200);
    assert!(r1.contains("\"count\":2"), "{r1}");
    assert_eq!(s2, 200);
    assert!(r2.contains("\"status\":\"ok\""), "{r2}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metrics_endpoint_exposes_serving_counters() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.post_json("/v1/count", &count_req(&[0, 1])).unwrap();
    client.post_json("/v1/count", &count_req(&[0, 1])).unwrap();
    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    for needle in [
        "# TYPE cinct_serve_requests_total counter",
        "cinct_serve_cache_hits_total",
        "cinct_serve_request_ns",
        "cinct_serve_workers",
        "cinct_queries_total", // core catalog rides along
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    handle.shutdown();
    join.join().unwrap();
}
