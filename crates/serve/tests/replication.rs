//! The replication fault matrix: WAL shipping between a primary and a
//! mirror follower, driven at the transport-free service seam so
//! `faultio` crash plans (thread-local by design) land exactly where
//! the matrix points them, plus live two-server tests over HTTP for the
//! pull loop, follower reads, the 421 write redirect, and promotion.
//!
//! The oracle everywhere is **mirror-corpus identity**: after every
//! kill-and-recover (or partition-and-heal), the follower's corpus
//! fingerprints exactly equal the primary's — never a prefix left
//! behind for good, never a record applied twice.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use cinct::faultio::{self, Fault};
use cinct::{Durability, Path, PathQuery, ShardedBuilder, ShardedCinct, Wal, WalRead};
use cinct_serve::json::{obj, Json};
use cinct_serve::{
    Client, CorpusService, FailoverClient, Replicator, RetryPolicy, ServeConfig, Server,
    ServerHandle, StepOutcome,
};

fn corpus() -> ShardedCinct {
    let trajs = vec![
        vec![0, 1, 4, 5],
        vec![0, 1, 2],
        vec![1, 2],
        vec![0, 3],
        vec![2, 3, 4],
        vec![4, 5, 0],
    ];
    ShardedBuilder::new()
        .shards(2)
        .locate_sampling(4)
        .build(&trajs, 6)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cinct-serve-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A saved seed directory — both roles start from the same corpus.
fn seed(tag: &str) -> std::path::PathBuf {
    let dir = scratch(tag);
    corpus().save_dir(&dir).unwrap();
    dir
}

fn durable_service(dir: &std::path::Path) -> CorpusService {
    let opened = ShardedCinct::open_dir(dir).unwrap();
    let (wal, replay) = Wal::open(dir, Durability::Fast).unwrap();
    CorpusService::new_durable(opened, 64, 4, wal, replay).unwrap()
}

/// Everything observable about a served corpus, for exact mirror
/// compares.
fn fingerprint(svc: &CorpusService) -> (usize, Vec<Vec<u32>>, usize, usize) {
    svc.with_corpus(|c| {
        let trajs: Vec<Vec<u32>> = (0..c.num_trajectories()).map(|g| c.trajectory(g)).collect();
        (
            c.num_trajectories(),
            trajs,
            c.count(Path::new(&[0, 1])),
            c.count(Path::new(&[1, 2])),
        )
    })
}

/// Ship until caught up, at the service seam: pull the primary's log at
/// the follower's position, apply, and fall back to a snapshot
/// bootstrap when the history was reclaimed — exactly what
/// `Replicator::step` does over HTTP. Returns records applied.
fn ship(
    primary: &CorpusService,
    follower: &CorpusService,
    follower_dir: &std::path::Path,
) -> usize {
    let mut applied = 0usize;
    loop {
        let from = follower.wal_next_seq().unwrap();
        match primary.wal_read_from(from).unwrap() {
            WalRead::Records(recs) => {
                if recs.is_empty() {
                    return applied;
                }
                applied += follower.apply_replicated(&recs).unwrap();
            }
            WalRead::Compacted { .. } => {
                let stream = primary.snapshot_stream().unwrap();
                follower.bootstrap_snapshot(follower_dir, &stream).unwrap();
            }
        }
    }
}

const BATCHES: [&[u32]; 3] = [&[1, 2, 5], &[0, 1], &[4, 5, 0, 1]];

fn append_all(svc: &CorpusService) {
    for (i, b) in BATCHES.iter().enumerate() {
        svc.append_keyed(&[b.to_vec()], Some(&format!("k{i}")))
            .unwrap();
    }
}

// ---------------------------------------------------------------------
// Shipping: convergence, partition/heal, compaction → bootstrap.
// ---------------------------------------------------------------------

#[test]
fn follower_converges_by_shipping_and_stays_caught_up() {
    let (pdir, fdir) = (seed("ship-p"), seed("ship-f"));
    let (primary, follower) = (durable_service(&pdir), durable_service(&fdir));
    append_all(&primary);
    assert_eq!(ship(&primary, &follower, &fdir), BATCHES.len());
    assert_eq!(fingerprint(&follower), fingerprint(&primary));
    // Caught up: a second round ships nothing.
    assert_eq!(ship(&primary, &follower, &fdir), 0);
    // Shipped records keep their idempotency keys: a client retry that
    // lands on the follower after promotion still deduplicates.
    let out = follower
        .append_keyed(&[BATCHES[0].to_vec()], Some("k0"))
        .unwrap();
    assert!(out.deduplicated, "shipped key k0 was not remembered");
}

#[test]
fn partition_heals_into_catch_up_not_bootstrap() {
    let (pdir, fdir) = (seed("part-p"), seed("part-f"));
    let (primary, follower) = (durable_service(&pdir), durable_service(&fdir));
    append_all(&primary);
    assert_eq!(ship(&primary, &follower, &fdir), BATCHES.len());
    // Partition: the follower stops pulling. The primary keeps serving
    // writes and even folds its journal — but the follower is
    // registered, so its unshipped history is pinned, not reclaimed.
    primary.register_follower("f1", follower.wal_next_seq().unwrap());
    primary.append(&[vec![3, 4, 5]]).unwrap();
    primary.save_dir(&pdir).unwrap();
    primary.append(&[vec![5, 0]]).unwrap();
    // Heal: the next pull must find records (sealed + active), not a
    // compaction notice.
    let from = follower.wal_next_seq().unwrap();
    assert!(
        matches!(primary.wal_read_from(from).unwrap(), WalRead::Records(ref r) if !r.is_empty()),
        "pinned history was reclaimed"
    );
    assert_eq!(ship(&primary, &follower, &fdir), 2);
    assert_eq!(fingerprint(&follower), fingerprint(&primary));
}

#[test]
fn reclaimed_history_forces_a_snapshot_bootstrap() {
    let (pdir, fdir) = (seed("boot-p"), seed("boot-f"));
    let (primary, follower) = (durable_service(&pdir), durable_service(&fdir));
    append_all(&primary);
    // No registered followers: the save reclaims every sealed segment,
    // so position 0 is gone and the lagging follower must bootstrap.
    primary.save_dir(&pdir).unwrap();
    assert!(matches!(
        primary.wal_read_from(0).unwrap(),
        WalRead::Compacted { .. }
    ));
    ship(&primary, &follower, &fdir);
    assert_eq!(fingerprint(&follower), fingerprint(&primary));
    assert_eq!(follower.wal_next_seq(), primary.wal_next_seq());
    // The bootstrap is durable: reopening the follower's directory
    // yields the same corpus at the same position.
    drop(follower);
    let back = durable_service(&fdir);
    assert_eq!(fingerprint(&back), fingerprint(&primary));
    assert_eq!(back.wal_next_seq(), primary.wal_next_seq());
}

#[test]
fn bootstrap_preserves_fan_out_knob_and_prunes_like_primary() {
    let (pdir, fdir) = (seed("knob-p"), seed("knob-f"));
    let primary = durable_service(&pdir);
    append_all(&primary);
    // A follower tuned to a distinctive fan-out budget before it ever
    // sees a snapshot. `bootstrap_snapshot` rebuilds the whole corpus,
    // so the knob must be re-applied to the installed replacement.
    let mut opened = ShardedCinct::open_dir(&fdir).unwrap();
    opened.set_fan_out_threads(3);
    let (wal, replay) = Wal::open(&fdir, Durability::Fast).unwrap();
    let follower = CorpusService::new_durable(opened, 64, 4, wal, replay).unwrap();
    assert_eq!(follower.stats().fan_out_threads, 3);
    let stream = primary.snapshot_stream().unwrap();
    follower.bootstrap_snapshot(&fdir, &stream).unwrap();
    assert_eq!(
        follower.stats().fan_out_threads,
        3,
        "snapshot install reset the fan-out knob"
    );
    assert_eq!(fingerprint(&follower), fingerprint(&primary));
    // Pruning metadata rides inside the snapshot's manifest: the
    // bootstrapped follower makes the same skip decisions as the
    // primary and answers the selective pattern identically. Edge 2
    // lands only in the size-balanced shard {[0,1,2],[1,2],[2,3,4]},
    // so [1,2] deterministically prunes at least one shard.
    let selective = [1u32, 2];
    let decisions = |svc: &CorpusService| {
        svc.with_corpus(|c| {
            (0..c.num_shards())
                .map(|s| c.pruned_edge(s, Path::new(&selective)))
                .collect::<Vec<_>>()
        })
    };
    let f_decisions = decisions(&follower);
    assert_eq!(f_decisions, decisions(&primary));
    assert!(
        f_decisions.iter().any(|d| d.is_some()),
        "no shard was pruned for the selective pattern: {f_decisions:?}"
    );
    let count = |svc: &CorpusService| svc.with_corpus(|c| c.count(Path::new(&selective)));
    assert_eq!(count(&follower), count(&primary));
}

// ---------------------------------------------------------------------
// The crash matrices: kill the primary mid-append and mid-save, the
// follower mid-apply and mid-bootstrap, at *every* injection point.
// ---------------------------------------------------------------------

#[test]
fn crash_matrix_primary_mid_append_is_acked_or_absent_and_reconverges() {
    let batch = vec![vec![1u32, 2, 5]];
    // Observe one append's injection points on a throwaway setup.
    let dir = seed("pa-observe");
    let svc = durable_service(&dir);
    faultio::arm(Fault::Observe);
    svc.append(&batch).unwrap();
    let total_ops = faultio::disarm().unwrap().ops;
    drop(svc);
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(total_ops >= 1, "append has no injection points");

    for torn in [false, true] {
        for at in 0..total_ops {
            let tag = format!("pa-{at}-{torn}");
            let (pdir, fdir) = (seed(&format!("{tag}-p")), seed(&format!("{tag}-f")));
            let svc = durable_service(&pdir);
            let pre = fingerprint(&svc);
            faultio::arm(Fault::CrashAt { at, torn });
            let acked = svc.append(&batch).is_ok();
            let report = faultio::disarm().unwrap();
            assert!(report.fired, "op {at} never reached (total {total_ops})");
            drop(svc);
            // Reopen the crashed primary: an acked batch must be there;
            // an unacked one is there or not, but never half-there.
            let back = durable_service(&pdir);
            let got = fingerprint(&back);
            let post = {
                let mut m = corpus();
                m.append_batch(&batch).unwrap();
                (
                    pre.0 + 1,
                    {
                        let mut t = pre.1.clone();
                        t.push(batch[0].clone());
                        t
                    },
                    m.count(Path::new(&[0, 1])),
                    m.count(Path::new(&[1, 2])),
                )
            };
            if acked {
                assert_eq!(got, post, "acked batch lost at op {at} (torn={torn})");
            } else {
                assert!(
                    got == pre || got == post,
                    "mixed state at op {at} (torn={torn})"
                );
            }
            // And the recovered primary still replicates: a fresh
            // follower converges to exactly its state.
            let follower = durable_service(&fdir);
            ship(&back, &follower, &fdir);
            assert_eq!(fingerprint(&follower), fingerprint(&back));
            std::fs::remove_dir_all(&pdir).unwrap();
            std::fs::remove_dir_all(&fdir).unwrap();
        }
    }
}

#[test]
fn crash_matrix_primary_mid_save_never_loses_or_double_applies() {
    // Observe one journaled save's injection points.
    let dir = seed("ps-observe");
    let svc = durable_service(&dir);
    append_all(&svc);
    faultio::arm(Fault::Observe);
    svc.save_dir(&dir).unwrap();
    let total_ops = faultio::disarm().unwrap().ops;
    drop(svc);
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(
        total_ops >= 8,
        "suspiciously few save injection points: {total_ops}"
    );

    for torn in [false, true] {
        for at in 0..total_ops {
            let pdir = seed(&format!("ps-{at}-{torn}"));
            let svc = durable_service(&pdir);
            append_all(&svc);
            let live = fingerprint(&svc);
            faultio::arm(Fault::CrashAt { at, torn });
            let err = svc.save_dir(&pdir);
            let report = faultio::disarm().unwrap();
            assert!(err.is_err(), "crash at op {at} did not surface");
            assert!(report.fired, "op {at} never reached (total {total_ops})");
            drop(svc);
            // Every acked record was journaled, and the manifest's
            // absorbed-position stamp keeps replay from re-applying
            // what the manifest already holds — so recovery is *exact*:
            // the pre-crash live state, whether the crash hit before or
            // after the manifest rename, before or after the retire.
            let back = durable_service(&pdir);
            assert_eq!(
                fingerprint(&back),
                live,
                "recovered state diverged at op {at} (torn={torn})"
            );
            std::fs::remove_dir_all(&pdir).unwrap();
        }
    }
}

#[test]
fn crash_matrix_follower_mid_apply_resumes_without_double_apply() {
    // A primary with shipped-ready history.
    let pdir = seed("fa-primary");
    let primary = durable_service(&pdir);
    append_all(&primary);
    let WalRead::Records(records) = primary.wal_read_from(0).unwrap() else {
        panic!("history unexpectedly compacted");
    };
    assert_eq!(records.len(), BATCHES.len());

    // Observe one full apply on a throwaway follower.
    let fdir = seed("fa-observe");
    let svc = durable_service(&fdir);
    faultio::arm(Fault::Observe);
    svc.apply_replicated(&records).unwrap();
    let total_ops = faultio::disarm().unwrap().ops;
    drop(svc);
    std::fs::remove_dir_all(&fdir).unwrap();
    assert!(
        total_ops >= 3,
        "suspiciously few apply injection points: {total_ops}"
    );

    for torn in [false, true] {
        for at in 0..total_ops {
            let fdir = seed(&format!("fa-{at}-{torn}"));
            let follower = durable_service(&fdir);
            faultio::arm(Fault::CrashAt { at, torn });
            let _ = follower.apply_replicated(&records);
            let report = faultio::disarm().unwrap();
            assert!(report.fired, "op {at} never reached (total {total_ops})");
            drop(follower);
            // Reopen and finish the pull from wherever the crash left
            // the journal: the mirror must land exactly — a record
            // re-shipped across the crash applies once, not twice.
            let follower = durable_service(&fdir);
            ship(&primary, &follower, &fdir);
            assert_eq!(
                fingerprint(&follower),
                fingerprint(&primary),
                "mirror diverged after crash at op {at} (torn={torn})"
            );
            assert_eq!(follower.wal_next_seq(), primary.wal_next_seq());
            std::fs::remove_dir_all(&fdir).unwrap();
        }
    }
}

#[test]
fn crash_matrix_follower_mid_bootstrap_reopens_and_reconverges() {
    // A primary whose history is compacted: followers *must* bootstrap.
    let pdir = seed("fb-primary");
    let primary = durable_service(&pdir);
    append_all(&primary);
    primary.save_dir(&pdir).unwrap();
    assert!(matches!(
        primary.wal_read_from(0).unwrap(),
        WalRead::Compacted { .. }
    ));
    let stream = primary.snapshot_stream().unwrap();

    // Observe one full bootstrap.
    let fdir = seed("fb-observe");
    let svc = durable_service(&fdir);
    faultio::arm(Fault::Observe);
    svc.bootstrap_snapshot(&fdir, &stream).unwrap();
    let total_ops = faultio::disarm().unwrap().ops;
    drop(svc);
    std::fs::remove_dir_all(&fdir).unwrap();
    assert!(
        total_ops >= 4,
        "suspiciously few bootstrap injection points: {total_ops}"
    );

    for torn in [false, true] {
        for at in 0..total_ops {
            let fdir = seed(&format!("fb-{at}-{torn}"));
            let follower = durable_service(&fdir);
            faultio::arm(Fault::CrashAt { at, torn });
            let err = follower.bootstrap_snapshot(&fdir, &stream);
            let report = faultio::disarm().unwrap();
            assert!(err.is_err(), "crash at op {at} did not surface");
            assert!(report.fired, "op {at} never reached (total {total_ops})");
            drop(follower);
            // The follower's directory must reopen whatever the crash
            // left: the old seed (install not committed) or the
            // snapshot (manifest renamed) — and crucially, when the
            // manifest landed but the WAL re-base didn't, the stale
            // pre-snapshot log must NOT replay over the installed
            // corpus. Then the retried pull converges.
            let follower = durable_service(&fdir);
            ship(&primary, &follower, &fdir);
            assert_eq!(
                fingerprint(&follower),
                fingerprint(&primary),
                "mirror diverged after bootstrap crash at op {at} (torn={torn})"
            );
            assert_eq!(follower.wal_next_seq(), primary.wal_next_seq());
            std::fs::remove_dir_all(&fdir).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// Live two-server tests: the HTTP pull loop, follower reads, the 421
// write redirect, promotion, and client failover.
// ---------------------------------------------------------------------

fn start_durable(dir: &std::path::Path) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let opened = ShardedCinct::open_dir(dir).unwrap();
    let (wal, replay) = Wal::open(dir, Durability::Fast).unwrap();
    // Several keep-alive connections stay open at once (query client,
    // replicator, admin); workers default to the core count, which may
    // be 1 — pin enough workers that no connection starves another.
    let cfg = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind_durable("127.0.0.1:0", opened, cfg, wal, replay).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (handle, join)
}

fn append_req(batch: &[u32]) -> Json {
    obj(&[(
        "batch",
        Json::Arr(vec![Json::Arr(
            batch.iter().map(|&s| Json::Num(s as f64)).collect(),
        )]),
    )])
}

fn count_req(path: &[u32]) -> Json {
    obj(&[(
        "path",
        Json::Arr(path.iter().map(|&s| Json::Num(s as f64)).collect()),
    )])
}

#[test]
fn live_follower_pulls_reads_serve_writes_redirect() {
    let (pdir, fdir) = (seed("live-p"), seed("live-f"));
    let (p_handle, p_join) = start_durable(&pdir);
    let (f_handle, f_join) = start_durable(&fdir);
    let p_addr = p_handle.addr().to_string();
    f_handle.set_replica_of(&p_addr);
    let mut repl = Replicator::new(f_handle.clone(), &p_addr, "live-f", fdir.clone()).poll_ms(0);

    // Write to the primary, pull once, read the write on the follower.
    let mut pc = Client::connect(p_handle.addr()).unwrap();
    let (status, _) = pc.post_json("/v1/append", &append_req(&[1, 2, 5])).unwrap();
    assert_eq!(status, 200);
    assert!(matches!(repl.step().unwrap(), StepOutcome::Applied(1)));
    assert!(matches!(repl.step().unwrap(), StepOutcome::CaughtUp));
    let mut fc = Client::connect(f_handle.addr()).unwrap();
    let (status, resp) = fc.post_json("/v1/count", &count_req(&[1, 2, 5])).unwrap();
    assert_eq!(status, 200);
    assert_eq!(resp.get("count").unwrap().as_usize(), Some(1));

    // The follower's health says so, with lag accounting.
    let (status, body) = fc.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("role").unwrap().as_str(), Some("follower"));
    assert!(health.get("replication").is_some());

    // A write sent to the follower is misdirected: 421 + the primary's
    // location, which FailoverClient follows in one hop.
    let (status, resp) = fc.post_json("/v1/append", &append_req(&[9, 9])).unwrap();
    assert_eq!(status, 421);
    assert_eq!(resp.get("primary").unwrap().as_str(), Some(p_addr.as_str()));
    let f_addr = f_handle.addr().to_string();
    let mut failover = FailoverClient::new(&[&f_addr], RetryPolicy::none()).unwrap();
    let (status, resp) = failover
        .append_idempotent(&append_req(&[4, 5]), "via-redirect")
        .unwrap();
    assert_eq!(status, 200, "{resp:?}");
    assert!(matches!(repl.step().unwrap(), StepOutcome::Applied(1)));

    // Promotion flips the role: the pull loop stops itself and the
    // ex-follower accepts writes directly.
    assert!(f_handle.promote());
    assert!(matches!(repl.step().unwrap(), StepOutcome::NotFollower));
    let (status, _) = fc.post_json("/v1/append", &append_req(&[3, 3])).unwrap();
    assert_eq!(status, 200);
    let (_, body) = fc.get("/healthz").unwrap();
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("role").unwrap().as_str(), Some("primary"));

    p_handle.shutdown();
    f_handle.shutdown();
    p_join.join().unwrap();
    f_join.join().unwrap();
}

#[test]
fn live_run_loop_converges_then_failover_after_primary_death() {
    let (pdir, fdir) = (seed("fo-p"), seed("fo-f"));
    let (p_handle, p_join) = start_durable(&pdir);
    let (f_handle, f_join) = start_durable(&fdir);
    let p_addr = p_handle.addr().to_string();
    let f_addr = f_handle.addr().to_string();
    f_handle.set_replica_of(&p_addr);

    // Background pull loop, as `cinct serve --replica-of` runs it.
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let pull = {
        let mut repl = Replicator::new(f_handle.clone(), &p_addr, "fo-f", fdir.clone()).poll_ms(50);
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            repl.run(&stop);
        })
    };

    let policy = RetryPolicy {
        attempts: 3,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(40),
        timeout: Duration::from_secs(2),
    };
    let mut client = FailoverClient::new(&[&p_addr, &f_addr], policy).unwrap();
    let (status, _) = client
        .append_idempotent(&append_req(&[1, 2, 5]), "fo-1")
        .unwrap();
    assert_eq!(status, 200);

    // Wait for the pull loop to converge the follower.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let n = f_handle.service().stats().trajectories;
        if n == 7 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never converged ({n}/7)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Primary dies; the operator promotes the follower (over HTTP, as
    // the CI smoke does); the same client keeps writing.
    p_handle.shutdown();
    p_join.join().unwrap();
    let mut admin = Client::connect(f_handle.addr()).unwrap();
    let (status, resp) = admin.post_json("/admin/promote", &obj(&[])).unwrap();
    assert_eq!(status, 200, "{resp:?}");
    let (status, resp) = client
        .append_idempotent(&append_req(&[4, 5, 0]), "fo-2")
        .unwrap();
    assert_eq!(status, 200, "failover append did not land: {resp:?}");
    assert_eq!(f_handle.service().stats().trajectories, 8);
    // The pull loop noticed the promotion and exited on its own.
    stop.store(true, Ordering::Release);
    pull.join().unwrap();

    f_handle.shutdown();
    f_join.join().unwrap();
}
