//! Durability integration tests for the serving layer: WAL-journaled
//! appends that survive a simulated crash, idempotency-key dedup at the
//! service and HTTP layers, degraded serving over a quarantined corpus,
//! and the client's retry/backoff machinery against a scripted peer.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::Duration;

use cinct::{Durability, OpenMode, Path, PathQuery, ShardedBuilder, ShardedCinct, Wal};
use cinct_serve::json::{obj, Json};
use cinct_serve::{
    Client, CorpusService, FailoverClient, RetryPolicy, ServeConfig, Server, ServerHandle,
};

fn corpus() -> ShardedCinct {
    let trajs = vec![
        vec![0, 1, 4, 5],
        vec![0, 1, 2],
        vec![1, 2],
        vec![0, 3],
        vec![2, 3, 4],
        vec![4, 5, 0],
    ];
    ShardedBuilder::new()
        .shards(2)
        .locate_sampling(4)
        .build(&trajs, 6)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cinct-serve-dura-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn durable_service(dir: &std::path::Path) -> CorpusService {
    let opened = ShardedCinct::open_dir(dir).unwrap();
    let (wal, replay) = Wal::open(dir, Durability::Fast).unwrap();
    CorpusService::new_durable(opened, 64, 4, wal, replay).unwrap()
}

/// An acked append must survive a crash (process death without save):
/// the WAL replays it into the reopened corpus, outcome-identical to a
/// mirror that applied the same batches directly, and the idempotency
/// key journaled with it still deduplicates after the restart.
#[test]
fn wal_replay_recovers_acked_appends_and_keys_across_restart() {
    let dir = scratch("replay");
    corpus().save_dir(&dir).unwrap();

    let svc = durable_service(&dir);
    let first = svc
        .append_keyed(&[vec![1, 2, 5], vec![0, 1]], Some("batch-a"))
        .unwrap();
    assert!(!first.deduplicated);
    svc.append(&[vec![4, 5]]).unwrap();
    assert_eq!(svc.stats().wal_pending, 2);
    // Crash: drop the service without save_dir. The WAL file remains.
    drop(svc);

    let mirror = {
        let mut m = corpus();
        m.append_batch(&[vec![1, 2, 5], vec![0, 1]]).unwrap();
        m.append_batch(&[vec![4, 5]]).unwrap();
        m
    };
    let svc = durable_service(&dir);
    svc.with_corpus(|c| {
        assert_eq!(c.num_trajectories(), mirror.num_trajectories());
        for g in 0..mirror.num_trajectories() {
            assert_eq!(c.trajectory(g), mirror.trajectory(g), "trajectory {g}");
        }
        for pat in [&[1u32, 2][..], &[0, 1], &[4, 5]] {
            assert_eq!(c.count(Path::new(pat)), mirror.count(Path::new(pat)));
        }
    });
    // The replayed key still deduplicates: a client retrying across the
    // restart gets the original assignment, and nothing is re-applied.
    let retried = svc
        .append_keyed(&[vec![1, 2, 5], vec![0, 1]], Some("batch-a"))
        .unwrap();
    assert!(retried.deduplicated);
    assert_eq!(retried.assigned, first.assigned);
    assert_eq!(svc.stats().trajectories, mirror.num_trajectories());
}

/// `save_dir` folds the journal into the snapshot and truncates it:
/// a restart after a clean save replays nothing and re-opens the saved
/// corpus exactly.
#[test]
fn save_dir_truncates_the_wal() {
    let dir = scratch("truncate");
    corpus().save_dir(&dir).unwrap();

    let svc = durable_service(&dir);
    svc.append_keyed(&[vec![1, 2]], Some("k1")).unwrap();
    assert_eq!(svc.stats().wal_pending, 1);
    svc.save_dir(&dir).unwrap();
    assert_eq!(svc.stats().wal_pending, 0);
    drop(svc);

    let (_, replay) = Wal::open(&dir, Durability::Fast).unwrap();
    assert!(replay.is_empty(), "journal survived the save: {replay:?}");
    let reopened = ShardedCinct::open_dir(&dir).unwrap();
    assert_eq!(reopened.num_trajectories(), 7);
    assert_eq!(reopened.count(Path::new(&[1, 2])), 3);
}

/// The same key applies exactly once — also without a WAL, and also
/// under concurrent retries racing each other.
#[test]
fn idempotency_key_applies_exactly_once() {
    let svc = CorpusService::new(corpus(), 64, 4);
    let first = svc.append_keyed(&[vec![1, 2, 5]], Some("dup")).unwrap();
    let second = svc.append_keyed(&[vec![1, 2, 5]], Some("dup")).unwrap();
    assert!(!first.deduplicated);
    assert!(second.deduplicated);
    assert_eq!(second.assigned, first.assigned);
    assert_eq!(svc.stats().trajectories, 7);
    // A different key is a different write.
    let third = svc.append_keyed(&[vec![1, 2, 5]], Some("dup2")).unwrap();
    assert!(!third.deduplicated);
    assert_eq!(svc.stats().trajectories, 8);

    // Hammer one key from many threads: exactly one install wins.
    let svc = CorpusService::new(corpus(), 64, 4);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| svc.append_keyed(&[vec![0, 1]], Some("race")).unwrap());
        }
    });
    assert_eq!(svc.stats().trajectories, 7, "one key, one install");
}

fn start(corpus: ShardedCinct, cfg: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", corpus, cfg).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (handle, join)
}

fn shutdown(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().unwrap();
}

/// HTTP layer: `Idempotency-Key` dedups a retried append; the `"key"`
/// body member works too; responses say `deduplicated`.
#[test]
fn http_append_with_idempotency_key_is_exactly_once() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let body = obj(&[(
        "batch",
        Json::Arr(vec![Json::Arr(vec![1u32.into(), 2u32.into()])]),
    )]);
    let (status, first) = client.append_idempotent(&body, "http-key").unwrap();
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(first.get("deduplicated").unwrap().as_bool(), Some(false));
    let (status, second) = client.append_idempotent(&body, "http-key").unwrap();
    assert_eq!(status, 200);
    assert_eq!(second.get("deduplicated").unwrap().as_bool(), Some(true));
    assert_eq!(
        second.get("assigned").unwrap().render(),
        first.get("assigned").unwrap().render()
    );

    // Same dedup via the `"key"` body member.
    let keyed = obj(&[
        (
            "batch",
            Json::Arr(vec![Json::Arr(vec![0u32.into(), 1u32.into()])]),
        ),
        ("key", "body-key".into()),
    ]);
    let (_, first) = client.post_json("/v1/append", &keyed).unwrap();
    let (_, second) = client.post_json("/v1/append", &keyed).unwrap();
    assert_eq!(first.get("deduplicated").unwrap().as_bool(), Some(false));
    assert_eq!(second.get("deduplicated").unwrap().as_bool(), Some(true));

    // 6 base + 1 + 1: each key applied exactly once.
    assert_eq!(handle.service().stats().trajectories, 8);
    // An empty key is rejected, not silently deduplicated-forever.
    let (status, _) = client
        .request("POST", "/v1/append", Some(r#"{"batch":[[0,1]],"key":""}"#))
        .unwrap();
    assert_eq!(status, 400);
    shutdown(&handle, join);
}

/// Degraded serving end to end: corrupt one shard on disk, open
/// resilient, serve. Queries answer 200 with `degraded: true` and the
/// quarantine report; healthz reads `degraded`; unavailable
/// trajectories fail individually while the rest extract fine.
#[test]
fn http_serves_a_degraded_corpus_with_explicit_markers() {
    let dir = scratch("degraded");
    corpus().save_dir(&dir).unwrap();
    // Bit-rot one shard file mid-byte.
    let shard = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("shard-00001"))
        })
        .expect("shard file");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&shard, &bytes).unwrap();

    assert!(
        ShardedCinct::open_dir(&dir).is_err(),
        "strict open must stay fail-fast"
    );
    let opened = ShardedCinct::open_dir_with(&dir, OpenMode::Resilient).unwrap();
    let lost: Vec<usize> = (0..opened.num_trajectories())
        .filter(|&g| !opened.trajectory_available(g))
        .collect();
    assert!(!lost.is_empty());

    let (handle, join) = start(opened, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));

    let (status, resp) = client
        .post_json(
            "/v1/count",
            &obj(&[("path", Json::Arr(vec![1u32.into(), 2u32.into()]))]),
        )
        .unwrap();
    assert_eq!(status, 200, "degraded corpus must still answer: {resp:?}");
    assert_eq!(resp.get("degraded").unwrap().as_bool(), Some(true));
    let quarantined = resp.get("quarantined").unwrap().as_arr().unwrap();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].get("slot").unwrap().as_usize(), Some(1));
    assert!(quarantined[0].get("reason").unwrap().as_str().is_some());

    let (_, stats) = client
        .get("/v1/stats")
        .map(|(s, t)| (s, Json::parse(&t).unwrap()))
        .unwrap();
    assert_eq!(stats.get("degraded").unwrap().as_bool(), Some(true));

    // Surviving trajectory extracts; a quarantined one is a clean 500.
    let ok_id = (0..6).find(|g| !lost.contains(g)).unwrap();
    let (status, _) = client
        .post_json("/v1/extract", &obj(&[("trajectory", ok_id.into())]))
        .unwrap();
    assert_eq!(status, 200);
    let (status, resp) = client
        .post_json("/v1/extract", &obj(&[("trajectory", lost[0].into())]))
        .unwrap();
    assert_eq!(status, 500, "{resp:?}");

    // Appends still work while degraded (they land in fresh shards).
    let (status, resp) = client
        .post_json(
            "/v1/append",
            &obj(&[(
                "batch",
                Json::Arr(vec![Json::Arr(vec![0u32.into(), 1u32.into()])]),
            )]),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(resp.get("degraded").unwrap().as_bool(), Some(true));
    shutdown(&handle, join);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Healthz ranks draining above degraded above ok.
#[test]
fn healthz_reports_ok_then_draining() {
    let (handle, join) = start(corpus(), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("role").unwrap().as_str(), Some("primary"));
    assert_eq!(
        health.get("wal").unwrap().get("enabled").unwrap().as_bool(),
        Some(false)
    );
    handle.shutdown();
    // The drained server refuses new connections; the flag is what the
    // body would report, so check it directly.
    assert!(handle.is_draining());
    join.join().unwrap();
}

/// The retry client against a scripted peer: a 503 + `Retry-After`
/// and a mid-request connection drop are both retried (reconnecting
/// when the connection died), and the request ultimately succeeds.
#[test]
fn client_retries_503_and_reconnects_after_connection_drop() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        // Connection 1: answer 503 (keep-alive), then slam the door
        // mid-exchange on the follow-up request.
        let (mut c1, _) = listener.accept().unwrap();
        read_one_request(&mut c1);
        c1.write_all(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
        read_one_request(&mut c1);
        drop(c1); // EOF before any response bytes
                  // Connection 2 (the reconnect): serve the answer.
        let (mut c2, _) = listener.accept().unwrap();
        read_one_request(&mut c2);
        c2.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\n")
            .unwrap();
    });

    let mut client = Client::connect_with(
        addr,
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            timeout: Duration::from_secs(5),
        },
    )
    .unwrap();
    let (status, body) = client.get("/probe").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    script.join().unwrap();
}

/// Non-idempotent requests never retry: one 503 is the final answer.
#[test]
fn client_does_not_retry_bare_posts() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let (mut c, _) = listener.accept().unwrap();
        read_one_request(&mut c);
        c.write_all(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
        // Stay open long enough to notice a (wrong) retry arriving.
        c.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut buf = [0u8; 1];
        assert!(
            !matches!(c.read(&mut buf), Ok(n) if n > 0),
            "a bare POST must not be retried"
        );
    });

    let mut client = Client::connect_with(
        addr,
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            timeout: Duration::from_secs(5),
        },
    )
    .unwrap();
    let (status, _) = client.post("/v1/append", r#"{"batch":[[0,1]]}"#).unwrap();
    assert_eq!(status, 503);
    script.join().unwrap();
}

/// An honored `Retry-After` is capped at the policy's backoff
/// ceiling: a peer demanding an hour-long pause can't stall the
/// client past `max_backoff`.
#[test]
fn retry_after_beyond_the_ceiling_is_capped() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let (mut c, _) = listener.accept().unwrap();
        read_one_request(&mut c);
        c.write_all(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 3600\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
        read_one_request(&mut c);
        c.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\n")
            .unwrap();
    });

    let mut client = Client::connect_with(
        addr,
        RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            timeout: Duration::from_secs(5),
        },
    )
    .unwrap();
    let start = std::time::Instant::now();
    let (status, body) = client.get("/probe").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    // The retry honored at most max_backoff (50ms), not the 3600s the
    // peer asked for. Generous bound for a loaded CI box.
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "Retry-After must be capped at max_backoff, waited {:?}",
        start.elapsed()
    );
    script.join().unwrap();
}

/// `attempts: 1` is truly single-shot: a 503 carrying a `Retry-After`
/// comes straight back, with no backoff sleep at all.
#[test]
fn single_attempt_policy_never_sleeps() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let (mut c, _) = listener.accept().unwrap();
        read_one_request(&mut c);
        c.write_all(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 30\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
    });

    let mut client = Client::connect_with(
        addr,
        RetryPolicy {
            attempts: 1,
            base_backoff: Duration::from_secs(60),
            max_backoff: Duration::from_secs(60),
            timeout: Duration::from_secs(5),
        },
    )
    .unwrap();
    let start = std::time::Instant::now();
    let (status, _) = client.get("/probe").unwrap();
    assert_eq!(status, 503);
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "attempts=1 must return without backing off, waited {:?}",
        start.elapsed()
    );
    script.join().unwrap();
}

/// Answer one request on `listener` with a 421 that names `primary`,
/// then exit — a scripted not-the-primary peer.
fn answer_421(listener: TcpListener, primary: String) {
    let (mut c, _) = listener.accept().unwrap();
    read_one_request(&mut c);
    let body = format!("{{\"error\":{{\"kind\":\"not_primary\"}},\"primary\":\"{primary}\"}}");
    write!(
        c,
        "HTTP/1.1 421 Misdirected Request\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
}

/// The failover client follows exactly one 421 redirect. Two peers
/// each naming the other as primary form a routing loop; the second
/// 421 surfaces to the caller instead of ping-ponging forever.
#[test]
fn failover_client_follows_421_at_most_once() {
    let a = TcpListener::bind("127.0.0.1:0").unwrap();
    let b = TcpListener::bind("127.0.0.1:0").unwrap();
    let a_addr = a.local_addr().unwrap().to_string();
    let b_addr = b.local_addr().unwrap().to_string();

    let sa = std::thread::spawn({
        let to = b_addr.clone();
        move || answer_421(a, to)
    });
    let sb = std::thread::spawn({
        let to = a_addr.clone();
        move || answer_421(b, to)
    });

    let mut client = FailoverClient::new(&[a_addr.as_str()], RetryPolicy::none()).unwrap();
    let body = obj(&[(
        "batch",
        Json::Arr(vec![Json::Arr(vec![0u32.into(), 1u32.into()])]),
    )]);
    let (status, resp) = client.append_idempotent(&body, "loop-key").unwrap();
    assert_eq!(status, 421, "{resp:?}");
    // The surfaced 421 came from peer B (it names A as primary): the
    // client followed A→B and then stopped.
    assert_eq!(resp.get("primary").unwrap().as_str(), Some(a_addr.as_str()));
    sa.join().unwrap();
    sb.join().unwrap();
}

/// Read one HTTP request (headers + Content-Length body) off a raw
/// socket — just enough for the scripted-peer tests above.
fn read_one_request(stream: &mut std::net::TcpStream) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => buf.push(byte[0]),
            _ => return,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let body_len = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_owned)
        })
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; body_len];
    let _ = stream.read_exact(&mut body);
}
