//! The TCP front end: bounded accept queue, thread-per-core workers,
//! keep-alive connection loops, load shedding, deadlines, graceful
//! drain.
//!
//! # Threading model
//!
//! One accept thread (the caller of [`Server::run`]) pushes accepted
//! connections into a **bounded** [`mpsc::sync_channel`]; `workers`
//! scoped threads pull from it and own one connection at a time through
//! its keep-alive lifetime. When the queue is full the accept thread
//! does not block — the connection is **shed** with a `429` +
//! `Retry-After` so overload degrades into fast, explicit refusals
//! instead of unbounded queueing.
//!
//! Thread budget is resolved **once at bind time**, not per request:
//! `workers × fan_out_threads ≤ max(host_parallelism, workers)` by
//! construction ([`ServeConfig::resolve`]), and the corpus is pinned to
//! the resolved fan-out before the first query, so concurrent requests
//! cannot oversubscribe the host no matter what the knobs say.
//!
//! # Drain
//!
//! [`ServerHandle::shutdown`] (or `POST /admin/shutdown`) flips the
//! drain flag and nudges the accept loop awake with a loopback connect.
//! The accept thread closes the listener immediately — new connects are
//! refused — while workers finish every request already read or
//! buffered, answer with `Connection: close`, and exit. [`Server::run`]
//! returns only after the last worker has.
//!
//! # Deadlines
//!
//! Per-request deadlines are checked before query execution and between
//! batch items (a `503 deadline_exceeded` with `Retry-After`), and a
//! peer that stalls mid-request for a full idle tick is dropped with
//! `408`. A deadline cannot interrupt a single backward search already
//! in progress — searches are microseconds, orders of magnitude below
//! any sane deadline, so cooperative checks are the whole mechanism.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use std::{io, thread};

use cinct::{QueryError, ShardedCinct, Wal, WalRead, WalRecord};

use crate::http::{self, Limits, NextRequest, Request, Response};
use crate::json::{self, obj, obj_move, Json};
use crate::metrics;
use crate::service::CorpusService;

/// How long an idle keep-alive connection blocks in a read before the
/// worker re-checks the drain flag; also the stall budget for a peer
/// that paused mid-request. Bounds drain latency for idle connections.
const IDLE_TICK: Duration = Duration::from_millis(500);

/// Deadline re-check stride inside batched requests.
const BATCH_DEADLINE_STRIDE: usize = 32;

/// Ceiling on how long `/repl/wal` blocks waiting for the tip to move
/// before answering empty (the follower just polls again). Bounded so
/// a drain is never held hostage by an idle long-poll.
const REPL_POLL_MAX: Duration = Duration::from_secs(10);

/// Records per `/repl/wal` response. Bounds response memory on a badly
/// lagged follower; the next pull continues from `next`.
const REPL_BATCH_MAX: usize = 1024;

/// Replication roles (the `role` field of [`ServerState`]).
const ROLE_PRIMARY: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

/// Server knobs. `0` means "auto" on every thread-shaped knob, the
/// workspace-wide convention.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = one per host hardware thread).
    pub workers: usize,
    /// Accepted connections that may wait for a worker before new ones
    /// are shed with 429.
    pub queue_depth: usize,
    /// Per-request execution deadline.
    pub deadline: Duration,
    /// Hot-pattern cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache lock shards.
    pub cache_shards: usize,
    /// Request body cap in bytes (413 beyond).
    pub max_body_bytes: usize,
    /// Per-query shard fan-out threads (0 = split the host budget
    /// evenly across workers). Clamped so workers × fan-out never
    /// oversubscribes the host.
    pub fan_out_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 128,
            deadline: Duration::from_secs(2),
            cache_capacity: 4096,
            cache_shards: 8,
            max_body_bytes: 1 << 20,
            fan_out_threads: 0,
        }
    }
}

/// The knobs after resolution — fixed for the server's lifetime.
#[derive(Debug, Clone)]
pub struct ResolvedConfig {
    /// Worker threads in the pool (≥ 1).
    pub workers: usize,
    /// Per-query shard fan-out threads the corpus is pinned to (≥ 1).
    pub fan_out_threads: usize,
    /// Host hardware threads observed at resolution.
    pub host_parallelism: usize,
    /// Accept-queue depth.
    pub queue_depth: usize,
    /// Per-request deadline.
    pub deadline: Duration,
    /// Cache entries.
    pub cache_capacity: usize,
    /// Cache lock shards.
    pub cache_shards: usize,
    /// HTTP parser limits.
    pub limits: Limits,
}

impl ServeConfig {
    /// Resolve every thread knob **once**, enforcing the
    /// no-oversubscription invariant
    /// `workers × fan_out_threads ≤ max(host_parallelism, workers)`.
    ///
    /// Auto fan-out divides the host budget evenly across workers; an
    /// explicit fan-out is clamped into the same budget. (With more
    /// workers than hardware threads the budget is one fan-out thread
    /// each — the workers themselves already oversubscribe, which is a
    /// legitimate choice for latency-hiding, but queries must not
    /// multiply it.)
    pub fn resolve(&self) -> ResolvedConfig {
        let host = rayon::current_num_threads();
        let workers = rayon::resolve_threads(self.workers).max(1);
        let budget = (host / workers).max(1);
        let fan_out = if self.fan_out_threads == 0 {
            budget
        } else {
            self.fan_out_threads.min(budget)
        };
        debug_assert!(workers * fan_out <= host.max(workers));
        ResolvedConfig {
            workers,
            fan_out_threads: fan_out,
            host_parallelism: host,
            queue_depth: self.queue_depth.max(1),
            deadline: self.deadline,
            cache_capacity: self.cache_capacity,
            cache_shards: self.cache_shards.max(1),
            limits: Limits {
                max_body_bytes: self.max_body_bytes,
                ..Limits::default()
            },
        }
    }
}

struct ServerState {
    service: CorpusService,
    cfg: ResolvedConfig,
    addr: SocketAddr,
    draining: AtomicBool,
    /// [`ROLE_PRIMARY`] (accepts writes) or [`ROLE_FOLLOWER`]
    /// (read-only replica: appends answer 421).
    role: AtomicU8,
    /// Where writes should go while this node is a follower — returned
    /// verbatim in 421 bodies so clients can re-route themselves.
    primary_url: Mutex<Option<String>>,
}

impl ServerState {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn is_follower(&self) -> bool {
        self.role.load(Ordering::Acquire) == ROLE_FOLLOWER
    }

    /// Follower → primary. Idempotent; returns whether a flip happened.
    fn promote(&self) -> bool {
        if self.role.swap(ROLE_PRIMARY, Ordering::AcqRel) != ROLE_FOLLOWER {
            return false;
        }
        let m = metrics::serve();
        m.repl_role.set(0);
        m.repl_promotions.inc();
        *self.primary_url.lock().unwrap_or_else(|e| e.into_inner()) = None;
        true
    }

    /// Flip the drain flag and wake the accept loop (idempotent).
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            metrics::serve().draining.set(1);
            // Nudge the accept thread out of its blocking accept; the
            // dummy connection is closed immediately on either end.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }
}

/// A bound-but-not-yet-running server. [`Server::run`] consumes it and
/// blocks until drained; clone a [`ServerHandle`] first for shutdown
/// and introspection from other threads.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A cheap cloneable handle onto a running (or bound) server.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Begin graceful drain: refuse new connections, finish in-flight
    /// requests, make [`Server::run`] return. Idempotent, non-blocking.
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Whether drain has begun.
    pub fn is_draining(&self) -> bool {
        self.state.draining()
    }

    /// The resolved (post-`resolve`) configuration.
    pub fn config(&self) -> &ResolvedConfig {
        &self.state.cfg
    }

    /// The underlying service — the seam identity tests and the CLI's
    /// save-on-drain use to reach the live corpus.
    pub fn service(&self) -> &CorpusService {
        &self.state.service
    }

    /// Mark this server a read-only **follower** of `primary` (a
    /// `host:port`): from the next request on, `/v1/append` answers
    /// `421 Misdirected Request` with the primary's location in the
    /// body. Called by `cinct serve --replica-of` before traffic, and
    /// reversible with [`ServerHandle::promote`].
    pub fn set_replica_of(&self, primary: &str) {
        *self
            .state
            .primary_url
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(primary.to_string());
        self.state.role.store(ROLE_FOLLOWER, Ordering::Release);
        metrics::serve().repl_role.set(1);
    }

    /// Promote a follower to primary: writes are accepted from the
    /// next request on (also reachable as `POST /admin/promote`).
    /// Idempotent; returns whether a flip actually happened.
    pub fn promote(&self) -> bool {
        self.state.promote()
    }

    /// Whether this server is currently a read-only follower.
    pub fn is_follower(&self) -> bool {
        self.state.is_follower()
    }
}

impl Server {
    /// Bind a listener and assemble the serving state. Resolves the
    /// thread budget once and pins the corpus fan-out to it before any
    /// query can run.
    pub fn bind(
        addr: impl ToSocketAddrs,
        corpus: ShardedCinct,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Self::bind_inner(addr, corpus, cfg, None)
    }

    /// [`Server::bind`] with a write-ahead log: `replay` (recovered by
    /// [`Wal::open`]) is re-applied to the corpus before the listener
    /// accepts anything, and every `/v1/append` is then journaled +
    /// fsynced before it is acked. A replay failure aborts the bind —
    /// serving a corpus that silently dropped acked writes is worse
    /// than not starting.
    pub fn bind_durable(
        addr: impl ToSocketAddrs,
        corpus: ShardedCinct,
        cfg: ServeConfig,
        wal: Wal,
        replay: Vec<WalRecord>,
    ) -> io::Result<Server> {
        Self::bind_inner(addr, corpus, cfg, Some((wal, replay)))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        mut corpus: ShardedCinct,
        cfg: ServeConfig,
        durable: Option<(Wal, Vec<WalRecord>)>,
    ) -> io::Result<Server> {
        let resolved = cfg.resolve();
        corpus.set_fan_out_threads(resolved.fan_out_threads);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        metrics::register_all();
        let m = metrics::serve();
        m.workers.set(resolved.workers as u64);
        m.fan_out_threads.set(resolved.fan_out_threads as u64);
        m.draining.set(0);
        let service = match durable {
            Some((wal, replay)) => CorpusService::new_durable(
                corpus,
                resolved.cache_capacity,
                resolved.cache_shards,
                wal,
                replay,
            )
            .map_err(|e| io::Error::other(format!("WAL replay failed: {e}")))?,
            None => CorpusService::new(corpus, resolved.cache_capacity, resolved.cache_shards),
        };
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                service,
                cfg: resolved,
                addr,
                draining: AtomicBool::new(false),
                role: AtomicU8::new(ROLE_PRIMARY),
                primary_url: Mutex::new(None),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A handle for shutdown/introspection from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until drained: accept, queue, shed, dispatch. Blocks the
    /// calling thread (it becomes the accept loop). Returns after
    /// [`ServerHandle::shutdown`] once every worker has finished its
    /// in-flight work.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, state } = self;
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(state.cfg.queue_depth);
        let rx = Mutex::new(rx);
        thread::scope(|s| {
            let state_ref = &*state;
            let rx_ref = &rx;
            for _ in 0..state.cfg.workers {
                s.spawn(move || worker_loop(state_ref, rx_ref));
            }
            for conn in listener.incoming() {
                if state.draining() {
                    break;
                }
                match conn {
                    Ok(c) => match tx.try_send(c) {
                        Ok(()) => {}
                        Err(TrySendError::Full(c)) => shed(c),
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    // Transient accept failure (e.g. fd pressure):
                    // back off instead of spinning.
                    Err(_) => thread::sleep(Duration::from_millis(10)),
                }
            }
            // Refuse new connections *now*; workers drain what was
            // already accepted, then see the channel close and exit.
            drop(listener);
            drop(tx);
        });
        Ok(())
    }
}

/// Refuse an over-queue connection with an explicit 429.
fn shed(conn: TcpStream) {
    metrics::serve().shed.inc();
    let mut resp = Response::error(429, "overloaded", "accept queue full; retry after backoff");
    resp.keep_alive = false;
    resp.retry_after_secs = Some(1);
    let mut conn = conn;
    let _ = resp.write_to(&mut conn);
}

fn worker_loop(state: &ServerState, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let conn = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(conn) = conn else { return }; // channel closed: drain done
        metrics::serve().connections.inc();
        let _ = handle_connection(state, conn);
    }
}

fn handle_connection(state: &ServerState, conn: TcpStream) -> io::Result<()> {
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(IDLE_TICK)).ok();
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    loop {
        match http::read_request(&mut reader, &state.cfg.limits) {
            Ok(NextRequest::Closed) => return Ok(()),
            Ok(NextRequest::Idle) => {
                if state.draining() {
                    return Ok(()); // idle connection; nothing in flight
                }
            }
            Ok(NextRequest::Request(req)) => {
                let m = metrics::serve();
                m.requests.inc();
                m.inflight.inc();
                let started = Instant::now();
                let mut resp = dispatch(state, &req, started);
                m.request_ns
                    .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                m.inflight.dec();
                if resp.status >= 400 {
                    m.errors.inc();
                }
                // Drain overrides keep-alive: the response completes
                // (in-flight work finishes) but the connection closes.
                resp.keep_alive = resp.keep_alive && req.keep_alive && !state.draining();
                let keep = resp.keep_alive;
                resp.write_to(&mut writer)?;
                if !keep {
                    return Ok(());
                }
            }
            Err(http::HttpError::Io(e)) => return Err(e),
            Err(e) => {
                metrics::serve().errors.inc();
                let _ = e.into_response().write_to(&mut writer);
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Request dispatch
// ---------------------------------------------------------------------

fn dispatch(state: &ServerState, req: &Request, started: Instant) -> Response {
    const API: [&str; 5] = [
        "/v1/count",
        "/v1/locate",
        "/v1/occurrences",
        "/v1/extract",
        "/v1/append",
    ];
    // The target may carry a query string (`/repl/wal?from=3`): route
    // on the path, hand the query to the handler.
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz_response(state),
        ("GET", "/metrics") => {
            metrics::register_all();
            Response::text(200, &cinct_obs::global().render_prometheus())
        }
        ("GET", "/v1/stats") => stats_response(state),
        ("GET", "/repl/snapshot") => repl_snapshot(state),
        ("GET", "/repl/wal") => repl_wal(state, query),
        ("POST", "/admin/shutdown") => {
            state.begin_drain();
            Response::json(200, &obj(&[("draining", true.into())]))
        }
        ("POST", "/admin/promote") => {
            let promoted = state.promote();
            Response::json(
                200,
                &obj(&[("role", "primary".into()), ("promoted", promoted.into())]),
            )
        }
        ("POST", p) if API.contains(&p) => handle_api(state, p, req, started),
        (_, p)
            if API.contains(&p)
                || matches!(
                    p,
                    "/healthz"
                        | "/metrics"
                        | "/v1/stats"
                        | "/admin/shutdown"
                        | "/admin/promote"
                        | "/repl/snapshot"
                        | "/repl/wal"
                ) =>
        {
            Response::error(
                405,
                "method_not_allowed",
                &format!("{} does not accept {}", p, req.method),
            )
        }
        (_, p) => Response::error(404, "not_found", &format!("no route for {p}")),
    }
}

/// Health is JSON, but `status` keeps the one-word most-degraded-wins
/// taxonomy: a draining server is about to disappear (stop routing to
/// it), a degraded one serves with shards quarantined, `ok` means the
/// whole corpus is live. Always 200 — every state still answers
/// queries, and probes distinguish by body, not status. The rest of
/// the body is what an operator routes on: role, WAL position,
/// follower count, replication lag.
fn healthz_response(state: &ServerState) -> Response {
    let status = if state.draining() {
        "draining"
    } else if state.service.degraded() {
        "degraded"
    } else {
        "ok"
    };
    let role = if state.is_follower() {
        "follower"
    } else {
        "primary"
    };
    let s = state.service.stats();
    let m = metrics::serve();
    let mut repl = vec![
        ("followers", s.followers.into()),
        ("lag_records", m.repl_lag_records.get().into()),
    ];
    let primary = state
        .primary_url
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let Some(p) = primary {
        repl.push(("primary", p.into()));
    }
    Response::json(
        200,
        &obj_move(vec![
            ("status", status.into()),
            ("role", role.into()),
            (
                "wal",
                obj(&[
                    ("enabled", s.wal_enabled.into()),
                    ("pending", s.wal_pending.into()),
                    ("last_seq", s.wal_next_seq.saturating_sub(1).into()),
                    ("next_seq", s.wal_next_seq.into()),
                ]),
            ),
            ("replication", obj_move(repl)),
        ]),
    )
}

/// Value of `name` in an `a=1&b=2` query string. No percent-decoding —
/// the replication protocol uses plain tokens only.
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// `GET /repl/snapshot`: a consistent corpus snapshot plus the WAL
/// position it absorbs, for a bootstrapping follower.
fn repl_snapshot(state: &ServerState) -> Response {
    match state.service.snapshot_stream() {
        Ok(bytes) => Response {
            status: 200,
            content_type: "application/octet-stream",
            body: bytes,
            keep_alive: true,
            retry_after_secs: None,
        },
        Err(e) => query_error_response(&e),
    }
}

/// `GET /repl/wal?from=N[&follower=id][&wait_ms=T]`: the shipping half
/// of replication. Registers the follower's position (the reclaim
/// floor), long-polls until the tip passes `from` (bounded by
/// [`REPL_POLL_MAX`]), then answers with the retained records from
/// `from` — or `wal_compacted` when that history was reclaimed and the
/// follower must bootstrap from a snapshot instead.
fn repl_wal(state: &ServerState, query: &str) -> Response {
    let Some(from) = query_param(query, "from").and_then(|v| v.parse::<u64>().ok()) else {
        return Response::error(
            400,
            "invalid_input",
            "repl/wal needs a numeric \"from\" query parameter",
        );
    };
    let svc = &state.service;
    if svc.wal_next_seq().is_none() {
        return Response::error(
            422,
            "replication_unsupported",
            "this server has no WAL to replicate (serve a saved directory)",
        );
    }
    if let Some(id) = query_param(query, "follower") {
        svc.register_follower(id, from);
    }
    let wait_ms = query_param(query, "wait_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    // A draining server answers immediately so the follower notices
    // and can fail over instead of blocking on a corpse.
    if wait_ms > 0 && !state.draining() {
        let wait = Duration::from_millis(wait_ms).min(REPL_POLL_MAX);
        svc.wait_for_tip(from, wait);
    }
    match svc.wal_read_from(from) {
        Ok(WalRead::Compacted { oldest }) => Response::json(
            200,
            &obj(&[("wal_compacted", true.into()), ("oldest", oldest.into())]),
        ),
        Ok(WalRead::Records(mut records)) => {
            records.truncate(REPL_BATCH_MAX);
            let next = records.last().map_or(from, |r| r.seq + 1);
            if !records.is_empty() {
                metrics::serve()
                    .repl_records_shipped
                    .add(records.len() as u64);
            }
            Response::json(
                200,
                &obj_move(vec![
                    (
                        "records",
                        Json::Arr(records.into_iter().map(wal_record_json).collect()),
                    ),
                    ("next", next.into()),
                    ("primary_seq", svc.wal_next_seq().unwrap_or(0).into()),
                ]),
            )
        }
        Err(e) => query_error_response(&e),
    }
}

fn wal_record_json(r: WalRecord) -> Json {
    obj_move(vec![
        ("seq", r.seq.into()),
        ("key", r.key.into()),
        (
            "batch",
            Json::Arr(r.batch.into_iter().map(Json::from).collect()),
        ),
    ])
}

/// The follower's answer to a write: `421 Misdirected Request` with
/// the primary's location in the body, so a client can re-route.
fn misdirected(state: &ServerState) -> Response {
    let primary = state
        .primary_url
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_default();
    Response::json(
        421,
        &obj(&[
            (
                "error",
                obj(&[
                    ("kind", "not_primary".into()),
                    (
                        "message",
                        "this node is a read-only follower; send writes to the primary".into(),
                    ),
                    ("status", 421usize.into()),
                ]),
            ),
            ("primary", primary.into()),
        ]),
    )
}

/// The quarantine report, serialized once per degraded response.
fn quarantine_json(svc: &CorpusService) -> Json {
    Json::Arr(
        svc.quarantined()
            .iter()
            .map(|q| {
                obj(&[
                    ("slot", q.slot.into()),
                    ("file", q.file.as_str().into()),
                    ("trajectories", q.trajectories.into()),
                    ("reason", q.reason.as_str().into()),
                ])
            })
            .collect(),
    )
}

/// Append `degraded: true` + the quarantine report to a response body
/// when (and only when) the corpus is degraded — healthy responses stay
/// byte-identical to what they were before resilient opening existed.
fn push_degraded_fields(svc: &CorpusService, fields: &mut Vec<(&'static str, Json)>) {
    if svc.degraded() {
        fields.push(("degraded", true.into()));
        fields.push(("quarantined", quarantine_json(svc)));
    }
}

fn stats_response(state: &ServerState) -> Response {
    let s = state.service.stats();
    let cfg = &state.cfg;
    let mut fields = vec![
        ("kind", "sharded".into()),
        ("shards", s.shards.into()),
        ("trajectories", s.trajectories.into()),
        ("indexed_symbols", s.indexed_symbols.into()),
        ("network_edges", s.network_edges.into()),
        ("locate_supported", s.locate_supported.into()),
        ("index_bytes", s.index_bytes.into()),
        ("epoch", s.epoch.into()),
        (
            "cache",
            obj(&[
                ("entries", s.cache_entries.into()),
                ("capacity", s.cache_capacity.into()),
            ]),
        ),
        (
            "wal",
            obj(&[
                ("enabled", s.wal_enabled.into()),
                ("pending", s.wal_pending.into()),
                ("next_seq", s.wal_next_seq.into()),
            ]),
        ),
        (
            "role",
            if state.is_follower() {
                "follower".into()
            } else {
                "primary".into()
            },
        ),
        ("followers", s.followers.into()),
        ("workers", cfg.workers.into()),
        ("fan_out_threads", s.fan_out_threads.into()),
        ("host_parallelism", cfg.host_parallelism.into()),
        ("draining", state.draining().into()),
    ];
    push_degraded_fields(&state.service, &mut fields);
    Response::json(200, &obj_move(fields))
}

fn handle_api(state: &ServerState, target: &str, req: &Request, started: Instant) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "malformed_json", "request body is not valid UTF-8"),
    };
    // Query endpoints go through a strict single-scan parser for the
    // dominant body shape; anything it can't prove identical falls back
    // to the generic `Json` tree, which owns the error taxonomy.
    let result = match target {
        "/v1/count" => match parse_query(text) {
            Err(resp) => Ok(resp),
            Ok((spec, cache, _limit)) => match deadline_check(state, started) {
                Some(resp) => Ok(resp),
                None => handle_count(state, spec, cache, started),
            },
        },
        "/v1/locate" | "/v1/occurrences" => match parse_query(text) {
            Err(resp) => Ok(resp),
            Ok((spec, cache, limit)) => match deadline_check(state, started) {
                Some(resp) => Ok(resp),
                None => handle_occurrences(state, spec, cache, limit, started),
            },
        },
        "/v1/extract" | "/v1/append" => {
            let body = match Json::parse(text) {
                Ok(b) => b,
                Err(e) => return Response::error(400, "malformed_json", &e),
            };
            if let Some(resp) = deadline_check(state, started) {
                return resp;
            }
            if target == "/v1/extract" {
                handle_extract(state, &body)
            } else {
                handle_append(state, req, &body)
            }
        }
        _ => unreachable!("routed above"),
    };
    match result {
        Ok(resp) => resp,
        Err(e) => query_error_response(&e),
    }
}

/// Parse a count/locate/occurrences body into `(paths, cache, limit)`,
/// taking the zero-tree fast path when the body matches the dominant
/// shape exactly and the generic parser otherwise.
fn parse_query(text: &str) -> Result<(PathSpec, bool, Option<usize>), Response> {
    if let Some(fq) = json::parse_fast_query(text) {
        let spec = if let Some(p) = fq.path {
            PathSpec::One(p)
        } else if let Some(ps) = fq.paths {
            PathSpec::Many(ps)
        } else {
            return Err(Response::error(
                400,
                "invalid_input",
                "body needs a \"path\" or \"paths\" member",
            ));
        };
        return Ok((spec, fq.cache.unwrap_or(true), fq.limit));
    }
    let body = Json::parse(text).map_err(|e| Response::error(400, "malformed_json", &e))?;
    let spec = parse_path_spec(&body)?;
    Ok((
        spec,
        use_cache(&body),
        body.get("limit").and_then(Json::as_usize),
    ))
}

/// `503 deadline_exceeded` once the request's execution budget is gone.
fn deadline_check(state: &ServerState, started: Instant) -> Option<Response> {
    if started.elapsed() < state.cfg.deadline {
        return None;
    }
    metrics::serve().deadline_exceeded.inc();
    let mut resp = Response::error(
        503,
        "deadline_exceeded",
        "request exceeded the server's execution deadline",
    );
    resp.retry_after_secs = Some(1);
    Some(resp)
}

/// Map the core error taxonomy onto HTTP statuses. Client faults are
/// 4xx, index/transport faults 5xx; an *absent path* is never an error
/// at any layer — it shows up here as a zero count or an empty list.
fn query_error_response(e: &QueryError) -> Response {
    let (status, kind) = match e {
        QueryError::EmptyPattern => (400, "empty_pattern"),
        QueryError::UnknownEdge { .. } => (400, "unknown_edge"),
        QueryError::InvalidInput(_) => (400, "invalid_input"),
        QueryError::LocateUnsupported => (422, "locate_unsupported"),
        QueryError::CorruptIndex(_) => (500, "corrupt_index"),
        QueryError::Io(_) => (500, "io"),
        _ => (500, "internal"),
    };
    Response::error(status, kind, &e.to_string())
}

fn parse_path(v: &Json) -> Result<Vec<u32>, Response> {
    let items = v.as_arr().ok_or_else(|| {
        Response::error(400, "invalid_input", "path must be an array of edge IDs")
    })?;
    items
        .iter()
        .map(|e| {
            e.as_usize()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| {
                    Response::error(
                        400,
                        "invalid_input",
                        "path elements must be integers in [0, 2^32)",
                    )
                })
        })
        .collect()
}

/// Accept either `{"path": [...]}` or `{"paths": [[...], ...]}`.
enum PathSpec {
    One(Vec<u32>),
    Many(Vec<Vec<u32>>),
}

fn parse_path_spec(body: &Json) -> Result<PathSpec, Response> {
    if let Some(p) = body.get("path") {
        return Ok(PathSpec::One(parse_path(p)?));
    }
    if let Some(ps) = body.get("paths") {
        let arr = ps.as_arr().ok_or_else(|| {
            Response::error(400, "invalid_input", "paths must be an array of paths")
        })?;
        return Ok(PathSpec::Many(
            arr.iter().map(parse_path).collect::<Result<_, _>>()?,
        ));
    }
    Err(Response::error(
        400,
        "invalid_input",
        "body needs a \"path\" or \"paths\" member",
    ))
}

fn use_cache(body: &Json) -> bool {
    body.get("cache").and_then(Json::as_bool).unwrap_or(true)
}

fn elapsed_ns(started: Instant) -> Json {
    u64::try_from(started.elapsed().as_nanos())
        .unwrap_or(u64::MAX)
        .into()
}

fn handle_count(
    state: &ServerState,
    spec: PathSpec,
    cache: bool,
    started: Instant,
) -> Result<Response, QueryError> {
    let svc = &state.service;
    match spec {
        PathSpec::One(path) => {
            let (n, cached) = svc.count(&path, cache)?;
            let mut fields = vec![
                ("count", n.into()),
                ("cached", cached.into()),
                ("epoch", svc.epoch().into()),
                ("elapsed_ns", elapsed_ns(started)),
            ];
            push_degraded_fields(svc, &mut fields);
            Ok(Response::json(200, &obj_move(fields)))
        }
        PathSpec::Many(paths) => {
            let mut counts = Vec::with_capacity(paths.len());
            let mut hits = 0usize;
            // Chunked so the lock is amortized but deadlines still get
            // their cooperative re-check between chunks.
            for chunk in paths.chunks(BATCH_DEADLINE_STRIDE) {
                if let Some(resp) = deadline_check(state, started) {
                    return Ok(resp);
                }
                let (mut ns, h) = svc.count_batch(chunk, cache)?;
                counts.append(&mut ns);
                hits += h;
            }
            let mut fields = vec![
                ("counts", counts.into()),
                ("cache_hits", hits.into()),
                ("epoch", svc.epoch().into()),
                ("elapsed_ns", elapsed_ns(started)),
            ];
            push_degraded_fields(svc, &mut fields);
            Ok(Response::json(200, &obj_move(fields)))
        }
    }
}

fn occ_json(occ: &[(usize, usize)], limit: Option<usize>) -> Json {
    let shown = limit.unwrap_or(occ.len()).min(occ.len());
    Json::Arr(
        occ[..shown]
            .iter()
            .map(|&(t, o)| Json::Arr(vec![t.into(), o.into()]))
            .collect(),
    )
}

fn handle_occurrences(
    state: &ServerState,
    spec: PathSpec,
    cache: bool,
    limit: Option<usize>,
    started: Instant,
) -> Result<Response, QueryError> {
    let svc = &state.service;
    match spec {
        PathSpec::One(path) => {
            let (occ, cached) = svc.occurrences(&path, cache)?;
            let mut fields = vec![
                ("total", occ.len().into()),
                ("occurrences", occ_json(&occ, limit)),
                ("cached", cached.into()),
                ("epoch", svc.epoch().into()),
                ("elapsed_ns", elapsed_ns(started)),
            ];
            push_degraded_fields(svc, &mut fields);
            Ok(Response::json(200, &obj_move(fields)))
        }
        PathSpec::Many(paths) => {
            let mut results = Vec::with_capacity(paths.len());
            let mut hits = 0usize;
            for chunk in paths.chunks(BATCH_DEADLINE_STRIDE) {
                if let Some(resp) = deadline_check(state, started) {
                    return Ok(resp);
                }
                let (occs, h) = svc.occurrences_batch(chunk, cache)?;
                hits += h;
                for occ in occs {
                    results.push(obj_move(vec![
                        ("total", occ.len().into()),
                        ("occurrences", occ_json(&occ, limit)),
                    ]));
                }
            }
            let mut fields = vec![
                ("results", Json::Arr(results)),
                ("cache_hits", hits.into()),
                ("epoch", svc.epoch().into()),
                ("elapsed_ns", elapsed_ns(started)),
            ];
            push_degraded_fields(svc, &mut fields);
            Ok(Response::json(200, &obj_move(fields)))
        }
    }
}

fn handle_extract(state: &ServerState, body: &Json) -> Result<Response, QueryError> {
    let svc = &state.service;
    let symbols = if let Some(id) = body.get("trajectory") {
        let Some(id) = id.as_usize() else {
            return Ok(Response::error(
                400,
                "invalid_input",
                "trajectory must be a non-negative integer",
            ));
        };
        svc.trajectory(id)?
    } else {
        let (Some(row), Some(len)) = (
            body.get("row").and_then(Json::as_usize),
            body.get("len").and_then(Json::as_usize),
        ) else {
            return Ok(Response::error(
                400,
                "invalid_input",
                "body needs \"trajectory\" or \"row\" + \"len\"",
            ));
        };
        svc.extract(row, len)?
    };
    Ok(Response::json(
        200,
        &obj(&[("symbols", symbols.into()), ("epoch", svc.epoch().into())]),
    ))
}

fn handle_append(state: &ServerState, req: &Request, body: &Json) -> Result<Response, QueryError> {
    // A follower is read-only: its corpus is a replica of the
    // primary's WAL, and a locally-applied write would fork it.
    if state.is_follower() {
        return Ok(misdirected(state));
    }
    let Some(batch) = body.get("batch").and_then(Json::as_arr) else {
        return Ok(Response::error(
            400,
            "invalid_input",
            "body needs a \"batch\" array of trajectories",
        ));
    };
    let mut trajectories = Vec::with_capacity(batch.len());
    for t in batch {
        match parse_path(t) {
            Ok(path) => trajectories.push(path),
            Err(resp) => return Ok(resp),
        }
    }
    // Idempotency key: `Idempotency-Key` header, or `"key"` in the
    // body (the header wins if both are present). A retried append
    // carrying the same key is acked with the original assignment
    // instead of being applied twice.
    let header_key = req.header("idempotency-key");
    let body_key = body.get("key").and_then(Json::as_str);
    let key = match header_key.or(body_key) {
        Some("") => {
            return Ok(Response::error(
                400,
                "invalid_input",
                "idempotency key must be non-empty",
            ))
        }
        other => other,
    };
    let out = state.service.append_keyed(&trajectories, key)?;
    let mut fields = vec![
        (
            "assigned",
            obj(&[
                ("start", out.assigned.start.into()),
                ("end", out.assigned.end.into()),
            ]),
        ),
        ("shards", out.shards.into()),
        ("epoch", out.epoch.into()),
        ("deduplicated", out.deduplicated.into()),
    ];
    push_degraded_fields(&state.service, &mut fields);
    Ok(Response::json(200, &obj_move(fields)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: the knob interplay is resolved once at bind time and
    /// can never oversubscribe the host, whatever the knobs say.
    #[test]
    fn resolved_thread_budget_never_oversubscribes() {
        let host = rayon::current_num_threads();
        for workers in [0usize, 1, 2, 3, host, host + 3, 64] {
            for fan_out in [0usize, 1, 2, host, 64] {
                let r = ServeConfig {
                    workers,
                    fan_out_threads: fan_out,
                    ..ServeConfig::default()
                }
                .resolve();
                assert!(r.workers >= 1 && r.fan_out_threads >= 1);
                assert!(
                    r.workers * r.fan_out_threads <= host.max(r.workers),
                    "workers={workers} fan_out={fan_out} resolved to {}x{} on host {host}",
                    r.workers,
                    r.fan_out_threads,
                );
                assert_eq!(r.host_parallelism, host);
            }
        }
        // Auto/auto fills the host exactly when workers divide it.
        let auto = ServeConfig::default().resolve();
        assert_eq!(auto.workers, host);
        assert_eq!(auto.fan_out_threads, 1);
    }

    #[test]
    fn bind_pins_corpus_fan_out_to_resolved_budget() {
        let corpus = cinct::ShardedBuilder::new()
            .shards(2)
            .build(&[vec![0u32, 1], vec![1, 0]], 2);
        let server = Server::bind(
            "127.0.0.1:0",
            corpus,
            ServeConfig {
                workers: 2,
                fan_out_threads: 64, // asks for far too much
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let resolved = handle.config().fan_out_threads;
        assert!(resolved * 2 <= rayon::current_num_threads().max(2));
        // The corpus itself was pinned — queries use the budget without
        // re-resolving per request.
        let pinned = handle.service().with_corpus(|c| c.fan_out_threads());
        assert_eq!(pinned, resolved);
    }

    #[test]
    fn query_errors_map_to_the_documented_statuses() {
        let cases = [
            (QueryError::EmptyPattern, 400, "empty_pattern"),
            (
                QueryError::UnknownEdge {
                    edge: 9,
                    n_edges: 5,
                },
                400,
                "unknown_edge",
            ),
            (QueryError::InvalidInput("x".into()), 400, "invalid_input"),
            (QueryError::LocateUnsupported, 422, "locate_unsupported"),
            (QueryError::CorruptIndex("x".into()), 500, "corrupt_index"),
            (QueryError::Io("x".into()), 500, "io"),
        ];
        for (err, status, kind) in cases {
            let resp = query_error_response(&err);
            assert_eq!(resp.status, status, "{err:?}");
            let body = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            assert_eq!(
                body.get("error").unwrap().get("kind").unwrap().as_str(),
                Some(kind)
            );
        }
    }
}
