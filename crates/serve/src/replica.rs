//! The follower half of WAL-shipping replication.
//!
//! A [`Replicator`] belongs to a follower process (`cinct serve
//! --replica-of`). It long-polls the primary's `/repl/wal` from its own
//! WAL position, applies the returned records through
//! [`CorpusService::apply_replicated`] — which re-journals them under
//! the **primary's** sequence numbers, so a restarted follower resumes
//! from exactly the right place — and snapshot-bootstraps over
//! `/repl/snapshot` when the history it needs has been reclaimed on
//! the primary.
//!
//! The pull loop is deliberately split in two:
//!
//! * [`Replicator::step`] — **one** synchronous pull-and-apply round on
//!   the calling thread. This is the testing seam: the fault matrix
//!   arms `cinct::faultio` on the test thread and drives `step`
//!   directly, so an injected crash fires inside the follower's journal
//!   writes deterministically.
//! * [`Replicator::run`] — the production loop: `step` until the stop
//!   flag rises or the node stops being a follower (promotion), backing
//!   off briefly when the primary is unreachable so a partition costs
//!   reconnect attempts, not a busy spin.
//!
//! After every round the replicator publishes its position into the
//! `cinct_repl_lag_records` / `cinct_repl_lag_seq` gauges, which
//! `/healthz` and `/metrics` expose — lag is observable on the follower
//! itself, where routing decisions get made.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use cinct::WalRecord;

use crate::client::{Client, RetryPolicy};
use crate::json::Json;
use crate::metrics;
use crate::server::ServerHandle;
use crate::service::CorpusService;

/// Default long-poll budget asked of the primary per pull. Kept under
/// the client's read timeout so a quiet primary answers empty instead
/// of looking dead.
const DEFAULT_POLL_MS: u64 = 2_000;

/// Backoff between reconnect attempts while the primary is unreachable.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(300);

/// What one [`Replicator::step`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Pulled and applied this many records.
    Applied(usize),
    /// The needed history was reclaimed; bootstrapped from a snapshot
    /// and re-based the local WAL at the returned position.
    Bootstrapped(u64),
    /// The primary had nothing past the local position.
    CaughtUp,
    /// This node is no longer a follower (it was promoted); the pull
    /// loop should stop.
    NotFollower,
}

/// The follower-side pull/apply engine. See the module docs.
pub struct Replicator {
    handle: ServerHandle,
    primary: String,
    id: String,
    dir: PathBuf,
    poll_ms: u64,
    client: Option<Client>,
}

impl Replicator {
    /// Assemble a replicator for the server behind `handle`, pulling
    /// from `primary` (a `host:port`). `id` names this follower in the
    /// primary's registry (its reclaim floor); `dir` is the local
    /// corpus directory a snapshot bootstrap installs into.
    pub fn new(handle: ServerHandle, primary: &str, id: &str, dir: PathBuf) -> Replicator {
        Replicator {
            handle,
            primary: primary.to_string(),
            id: id.to_string(),
            dir,
            poll_ms: DEFAULT_POLL_MS,
            client: None,
        }
    }

    /// Override the per-pull long-poll budget (ms). `0` makes every
    /// pull answer immediately — what the tests use to stay in control
    /// of time.
    pub fn poll_ms(mut self, ms: u64) -> Replicator {
        self.poll_ms = ms;
        self
    }

    fn service(&self) -> &CorpusService {
        self.handle.service()
    }

    fn client(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            self.client = Some(Client::connect_with(&*self.primary, RetryPolicy::none())?);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// One synchronous pull-and-apply round on the calling thread.
    /// Errors drop the connection (the next step redials), so a
    /// partition surfaces as `Err` per round, never a wedged state.
    pub fn step(&mut self) -> io::Result<StepOutcome> {
        if !self.handle.is_follower() {
            return Ok(StepOutcome::NotFollower);
        }
        let from = self
            .service()
            .wal_next_seq()
            .ok_or_else(|| io::Error::other("replication requires a WAL-backed corpus"))?;
        let target = format!(
            "/repl/wal?from={from}&follower={}&wait_ms={}",
            self.id, self.poll_ms
        );
        let pulled = (|| {
            let client = self.client()?;
            let (status, text) = client.get(&target)?;
            if status != 200 {
                return Err(io::Error::other(format!(
                    "primary answered {status} to {target}: {text}"
                )));
            }
            Json::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        })();
        let body = match pulled {
            Ok(b) => b,
            Err(e) => {
                self.client = None;
                return Err(e);
            }
        };
        if body
            .get("wal_compacted")
            .and_then(Json::as_bool)
            .unwrap_or(false)
        {
            return self.bootstrap();
        }
        let records = parse_records(&body)?;
        let primary_seq = body
            .get("primary_seq")
            .and_then(Json::as_usize)
            .unwrap_or(0) as u64;
        let applied = if records.is_empty() {
            0
        } else {
            self.service()
                .apply_replicated(&records)
                .map_err(|e| io::Error::other(format!("apply failed: {e}")))?
        };
        self.publish_lag(primary_seq);
        Ok(if applied == 0 && records.is_empty() {
            StepOutcome::CaughtUp
        } else {
            StepOutcome::Applied(applied)
        })
    }

    /// Full-state transfer: fetch `/repl/snapshot`, install it, re-base
    /// the local WAL at the absorbed position.
    fn bootstrap(&mut self) -> io::Result<StepOutcome> {
        let fetched = (|| {
            let client = self.client()?;
            let (status, bytes) = client.get_bytes("/repl/snapshot")?;
            if status != 200 {
                return Err(io::Error::other(format!(
                    "primary answered {status} to /repl/snapshot"
                )));
            }
            Ok(bytes)
        })();
        let bytes = match fetched {
            Ok(b) => b,
            Err(e) => {
                self.client = None;
                return Err(e);
            }
        };
        let absorbed = self
            .service()
            .bootstrap_snapshot(&self.dir, &bytes)
            .map_err(|e| io::Error::other(format!("snapshot install failed: {e}")))?;
        self.publish_lag(absorbed);
        Ok(StepOutcome::Bootstrapped(absorbed))
    }

    /// Publish this follower's position into the lag gauges.
    fn publish_lag(&self, primary_seq: u64) {
        let local = self.service().wal_next_seq().unwrap_or(0);
        let m = metrics::serve();
        m.repl_lag_seq.set(local);
        m.repl_lag_records.set(primary_seq.saturating_sub(local));
    }

    /// Pull until `stop` rises or this node stops being a follower.
    /// Unreachable-primary rounds back off briefly and retry — a
    /// partition heals into catch-up, not a dead replica.
    pub fn run(&mut self, stop: &AtomicBool) {
        while !stop.load(Ordering::Acquire) {
            match self.step() {
                Ok(StepOutcome::NotFollower) => return,
                Ok(_) => {}
                Err(_) => std::thread::sleep(RECONNECT_BACKOFF),
            }
        }
    }
}

/// Decode the `records` array of a `/repl/wal` response.
fn parse_records(body: &Json) -> io::Result<Vec<WalRecord>> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("/repl/wal: {what}"));
    let arr = body
        .get("records")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("no records array"))?;
    let mut records = Vec::with_capacity(arr.len());
    for rec in arr {
        let seq = rec
            .get("seq")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("record without a seq"))? as u64;
        let key = rec
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let batch_json = rec
            .get("batch")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("record without a batch"))?;
        let mut batch = Vec::with_capacity(batch_json.len());
        for traj in batch_json {
            let symbols = traj
                .as_arr()
                .ok_or_else(|| bad("trajectory is not an array"))?
                .iter()
                .map(|s| {
                    s.as_usize()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| bad("trajectory symbol out of range"))
                })
                .collect::<io::Result<Vec<u32>>>()?;
            batch.push(symbols);
        }
        records.push(WalRecord { seq, key, batch });
    }
    Ok(records)
}
