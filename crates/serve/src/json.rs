//! Minimal JSON for the wire protocol: a recursive-descent parser and a
//! string renderer, dependency-free by construction (the build container
//! has no registry access, and the server must not drag serde into the
//! core dependency graph anyway).
//!
//! The dialect is full RFC 8259 minus two deliberate cuts that keep the
//! parser small and the protocol honest:
//!
//! * numbers are parsed through [`f64`]; integers are exact up to 2^53,
//!   far beyond any trajectory-ID or offset this workspace produces;
//! * `\uXXXX` escapes outside the BMP (surrogate pairs) are rejected —
//!   edge IDs and error strings are ASCII.
//!
//! Parsing is depth-limited so a hostile request body cannot overflow the
//! worker stack.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`Json::parse`]. Protocol bodies
/// nest at most 3 deep (`{"batches": [[...]]}`); 64 leaves headroom
/// without letting `[[[[…` recurse to a stack overflow.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`) so
/// rendering is deterministic — handy for tests and diffable responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; see the module docs for integer exactness.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse `text` as a single JSON value (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric, integral, and in
    /// the exact range. This is the accessor protocol fields use — edge
    /// IDs, row numbers, limits — so `1.5`, `-3`, and `1e300` are all
    /// rejected rather than truncated.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render to compact JSON text (no whitespace, keys in sorted order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Json::Obj`] from key/value pairs:
/// `obj(&[("count", 3.into()), ("cached", true.into())])`.
pub fn obj(pairs: &[(&str, Json)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// Like [`obj`], but takes ownership of the values — the batch response
/// paths use this so a large `counts`/`results` array is moved into the
/// object instead of deep-cloned.
pub fn obj_move(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// The dominant query-body shape, pre-extracted without building a
/// [`Json`] tree. See [`parse_fast_query`].
#[derive(Debug, Default, PartialEq)]
pub struct FastQuery {
    /// `"path"`: one edge-ID path.
    pub path: Option<Vec<u32>>,
    /// `"paths"`: a batch of edge-ID paths.
    pub paths: Option<Vec<Vec<u32>>>,
    /// `"cache"` flag, if present.
    pub cache: Option<bool>,
    /// `"limit"`, if present.
    pub limit: Option<usize>,
}

/// Single-scan parser for the count/occurrences request shape — an
/// object of `path`/`paths`/`cache`/`limit` members whose numbers are
/// plain non-negative integers. This is the serving hot path: a batched
/// count spends more time building the generic `Json` tree than
/// executing the backward searches it asks for, so the common shape is
/// extracted without one.
///
/// **Strictness is the correctness contract**: any deviation — an
/// unknown member, a duplicate key, an escape in a key, a float, a
/// sign, an exponent, an integer beyond `u32` (for path edges) or 15
/// digits, trailing garbage — returns `None`, and the caller falls back
/// to [`Json::parse`] + generic extraction, which remains the single
/// source of truth for errors. The fast path therefore never *rejects*
/// a request the generic path would accept differently; it only
/// *accepts* bodies both parse identically (asserted by tests).
pub fn parse_fast_query(text: &str) -> Option<FastQuery> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let mut q = FastQuery::default();
    skip_ws(b, &mut i);
    if b.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    skip_ws(b, &mut i);
    if b.get(i) == Some(&b'}') {
        i += 1;
    } else {
        loop {
            if b.get(i) != Some(&b'"') {
                return None;
            }
            let key_start = i + 1;
            let mut j = key_start;
            while j < b.len() && b[j] != b'"' && b[j] != b'\\' {
                j += 1;
            }
            if b.get(j) != Some(&b'"') {
                return None; // escape or EOF in key: fall back
            }
            let key = &text[key_start..j];
            i = j + 1;
            skip_ws(b, &mut i);
            if b.get(i) != Some(&b':') {
                return None;
            }
            i += 1;
            skip_ws(b, &mut i);
            match key {
                "cache" => {
                    if q.cache.is_some() {
                        return None;
                    }
                    if b[i..].starts_with(b"true") {
                        q.cache = Some(true);
                        i += 4;
                    } else if b[i..].starts_with(b"false") {
                        q.cache = Some(false);
                        i += 5;
                    } else {
                        return None;
                    }
                }
                "limit" => {
                    if q.limit.is_some() {
                        return None;
                    }
                    q.limit = Some(usize::try_from(fast_uint(b, &mut i)?).ok()?);
                }
                "path" => {
                    if q.path.is_some() {
                        return None;
                    }
                    q.path = Some(fast_u32_array(b, &mut i)?);
                }
                "paths" => {
                    if q.paths.is_some() {
                        return None;
                    }
                    if b.get(i) != Some(&b'[') {
                        return None;
                    }
                    i += 1;
                    skip_ws(b, &mut i);
                    let mut paths = Vec::new();
                    if b.get(i) == Some(&b']') {
                        i += 1;
                    } else {
                        loop {
                            paths.push(fast_u32_array(b, &mut i)?);
                            skip_ws(b, &mut i);
                            match b.get(i) {
                                Some(b',') => {
                                    i += 1;
                                    skip_ws(b, &mut i);
                                }
                                Some(b']') => {
                                    i += 1;
                                    break;
                                }
                                _ => return None,
                            }
                        }
                    }
                    q.paths = Some(paths);
                }
                _ => return None,
            }
            skip_ws(b, &mut i);
            match b.get(i) {
                Some(b',') => {
                    i += 1;
                    skip_ws(b, &mut i);
                }
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return None,
            }
        }
    }
    skip_ws(b, &mut i);
    if i != b.len() {
        return None;
    }
    Some(q)
}

/// Plain non-negative integer, at most 15 digits (exact in `f64`, so
/// the fast and generic paths can never disagree on a value). Anything
/// else — sign, leading `.`/`e`, a 16th digit — bails to the fallback.
fn fast_uint(b: &[u8], i: &mut usize) -> Option<u64> {
    let start = *i;
    let mut v = 0u64;
    while let Some(d) = b.get(*i).filter(|d| d.is_ascii_digit()) {
        v = v * 10 + u64::from(d - b'0');
        *i += 1;
    }
    if *i == start || *i - start > 15 {
        return None;
    }
    // A continuation byte means this was really a float/exponent.
    if matches!(b.get(*i), Some(b'.' | b'e' | b'E')) {
        return None;
    }
    Some(v)
}

/// `[u32, u32, ...]` — one path of edge IDs.
fn fast_u32_array(b: &[u8], i: &mut usize) -> Option<Vec<u32>> {
    if b.get(*i) != Some(&b'[') {
        return None;
    }
    *i += 1;
    skip_ws(b, i);
    let mut out = Vec::new();
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Some(out);
    }
    loop {
        out.push(u32::try_from(fast_uint(b, i)?).ok()?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => {
                *i += 1;
                skip_ws(b, i);
            }
            Some(b']') => {
                *i += 1;
                return Some(out);
            }
            _ => return None,
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null"); // NaN/inf have no JSON spelling
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let tok = &bytes[start..*pos];
    // Fast path: plain non-negative integers — the protocol's dominant
    // number shape (edge IDs by the thousands per batched request). At
    // most 15 digits, so the f64 is exact and matches the slow path.
    if !tok.is_empty() && tok.len() <= 15 && tok.iter().all(u8::is_ascii_digit) {
        let mut v = 0u64;
        for &b in tok {
            v = v * 10 + u64::from(b - b'0');
        }
        return Ok(Json::Num(v as f64));
    }
    let text = std::str::from_utf8(tok).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(cp).ok_or("surrogate \\u escape unsupported")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err("raw control byte in string".into()),
            Some(_) => {
                // Copy one UTF-8 scalar (body bytes were validated as UTF-8
                // by the HTTP layer before parsing).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {}", *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        for text in [
            r#"{"path":[0,1,4],"cache":false}"#,
            r#"{"batches":[[0,1],[2]],"limit":32}"#,
            r#"{"count":3,"cached":true,"elapsed_ns":1234}"#,
            r#"[]"#,
            r#"{"s":"a\"b\\c\nd"}"#,
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            r#"{"a":1}extra"#,
            "tru",
            "\"unterminated",
            "{1:2}",
            "nan",
            "[1 2]",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn usize_accessor_is_exact() {
        assert_eq!(Json::parse("7").unwrap().as_usize(), Some(7));
        assert_eq!(Json::parse("0").unwrap().as_usize(), Some(0));
        assert_eq!(Json::parse("1.5").unwrap().as_usize(), None);
        assert_eq!(Json::parse("-3").unwrap().as_usize(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_usize(), None);
    }

    #[test]
    fn renders_integers_without_exponent() {
        assert_eq!(Json::from(1_234_567_890usize).render(), "1234567890");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn obj_builder_sorts_keys() {
        let v = obj(&[("b", 1usize.into()), ("a", 2usize.into())]);
        assert_eq!(v.render(), r#"{"a":2,"b":1}"#);
    }

    /// Re-extract a [`FastQuery`] through the generic parser, so the
    /// fast path can be checked member-for-member against it.
    fn generic_query(text: &str) -> FastQuery {
        let v = Json::parse(text).expect("generic parse");
        let path_of = |p: &Json| -> Vec<u32> {
            p.as_arr()
                .unwrap()
                .iter()
                .map(|e| u32::try_from(e.as_usize().unwrap()).unwrap())
                .collect()
        };
        FastQuery {
            path: v.get("path").map(&path_of),
            paths: v
                .get("paths")
                .map(|ps| ps.as_arr().unwrap().iter().map(&path_of).collect()),
            cache: v.get("cache").and_then(Json::as_bool),
            limit: v.get("limit").and_then(Json::as_usize),
        }
    }

    #[test]
    fn fast_query_matches_generic_parser() {
        for text in [
            r#"{"path":[0,1,4]}"#,
            r#"{"path":[0,1,4],"cache":false}"#,
            r#"{"paths":[[0,1],[2],[]],"cache":true,"limit":0}"#,
            r#"{"paths":[],"limit":32}"#,
            r#"{ "path" : [ 7 ] , "cache" : true }"#,
            r#"{"limit":4294967296,"path":[4294967295]}"#,
            "{}",
            r#"{"cache":false}"#,
        ] {
            let fast =
                parse_fast_query(text).unwrap_or_else(|| panic!("fast path rejected {text}"));
            assert_eq!(fast, generic_query(text), "{text}");
        }
    }

    #[test]
    fn fast_query_falls_back_on_any_deviation() {
        for text in [
            r#"{"path":[0,1]"#,               // truncated
            r#"{"path":[0,1],"extra":1}"#,    // unknown member
            r#"{"path":[0],"path":[1]}"#,     // duplicate key
            r#"{"path":[-1]}"#,               // signed
            r#"{"path":[1.5]}"#,              // float
            r#"{"path":[1e3]}"#,              // exponent
            r#"{"path":[4294967296]}"#,       // beyond u32
            r#"{"path":[1111111111111111]}"#, // 16 digits
            r#"{"path":"01"}"#,               // not an array
            r#"{"pa\th":[0]}"#,               // escaped key
            r#"{"path":[0]} "#,               // trailing space is fine...
            r#"{"path":[0]}x"#,               // ...trailing garbage is not
            r#"[{"path":[0]}]"#,              // not an object
        ] {
            // Trailing whitespace IS accepted by the fast path; list it
            // above only to document the boundary.
            if text == r#"{"path":[0]} "# {
                assert!(parse_fast_query(text).is_some(), "{text:?}");
                continue;
            }
            assert!(parse_fast_query(text).is_none(), "{text:?} must fall back");
        }
    }
}
