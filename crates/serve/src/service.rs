//! [`CorpusService`]: the transport-free heart of the server — a
//! [`ShardedCinct`] behind a reader/writer lock, fronted by the
//! epoch-stamped [`QueryCache`].
//!
//! Everything the HTTP layer does funnels through this type, and
//! everything here is directly testable without a socket. The
//! concurrency discipline, in full:
//!
//! * **Queries** take the corpus read lock, so any number proceed
//!   concurrently. Each query reads the cache epoch *while holding the
//!   read lock*; a result computed at epoch `e` is only inserted into
//!   the cache if `e` is still current, so a racing append can never be
//!   shadowed by a stale insert.
//! * **Appends** run in two phases mirroring
//!   [`ShardedCinct::prepare_batch`] / [`ShardedCinct::install_prepared`]:
//!   the expensive index construction happens under the **read** lock
//!   (queries keep flowing), then the write lock is taken only for the
//!   O(K) install, and the cache epoch advances *inside* the write
//!   section — readers under the read lock always observe a mutually
//!   consistent (corpus, epoch) pair.
//! * Lock poisoning is absorbed (`into_inner`): a panicking request
//!   handler must not take the whole server down, and both phases of an
//!   append leave the corpus structurally valid at every step.

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use cinct::{
    QuarantinedShard, Query, QueryEngine, QueryError, QueryValue, ShardedCinct, Wal, WalRead,
    WalRecord,
};
use cinct_fmindex::PathQuery;

use crate::cache::{CacheOp, CachedValue, Lookup, QueryCache};
use crate::metrics;

/// Idempotency keys remembered per process. Bounded FIFO: old keys age
/// out, which is fine — a client retries within seconds, not after four
/// thousand other appends.
const IDEMPOTENCY_CAPACITY: usize = 4096;

/// A sorted `(trajectory, offset)` occurrence listing, shared with the
/// cache via `Arc` so hits are allocation-free.
pub type OccurrenceList = Arc<Vec<(usize, usize)>>;

/// Outcome of one append batch installed through the service.
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// Global trajectory IDs assigned to the batch, in input order.
    pub assigned: Range<usize>,
    /// Shard count after the install.
    pub shards: usize,
    /// The epoch the install advanced the corpus to.
    pub epoch: u64,
    /// `true` when an idempotency key matched an already-applied batch
    /// and this outcome was replayed instead of re-installed.
    pub deduplicated: bool,
}

/// A point-in-time snapshot for the stats endpoint.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Number of shards.
    pub shards: usize,
    /// Trajectories across all shards.
    pub trajectories: usize,
    /// Indexed symbols (text length including terminators).
    pub indexed_symbols: usize,
    /// Road-network edge count the corpus was built against.
    pub network_edges: usize,
    /// Whether occurrence listing is supported (locate sampling on).
    pub locate_supported: bool,
    /// Core index bytes across shards.
    pub index_bytes: usize,
    /// Current corpus epoch (appends since start).
    pub epoch: u64,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Cache capacity (0 = disabled).
    pub cache_capacity: usize,
    /// Per-query shard fan-out threads the corpus is pinned to.
    pub fan_out_threads: usize,
    /// Whether the corpus was opened resiliently with shards quarantined.
    pub degraded: bool,
    /// Number of quarantined shards (0 unless degraded).
    pub quarantined_shards: usize,
    /// Whether appends are journaled to a write-ahead log before acking.
    pub wal_enabled: bool,
    /// WAL records journaled since the last snapshot (0 without a WAL).
    pub wal_pending: usize,
    /// Sequence number the next WAL append will receive — one past the
    /// replication log's last record (0 without a WAL).
    pub wal_next_seq: u64,
    /// Followers that have registered on the replication stream.
    pub followers: usize,
}

/// Bounded FIFO map from idempotency key to the outcome it produced.
#[derive(Default)]
struct IdemRegistry {
    outcomes: HashMap<String, AppendOutcome>,
    order: VecDeque<String>,
}

impl IdemRegistry {
    fn get(&self, key: &str) -> Option<AppendOutcome> {
        self.outcomes.get(key).map(|o| AppendOutcome {
            deduplicated: true,
            ..o.clone()
        })
    }

    fn insert(&mut self, key: &str, outcome: &AppendOutcome) {
        if self
            .outcomes
            .insert(key.to_owned(), outcome.clone())
            .is_none()
        {
            self.order.push_back(key.to_owned());
            while self.order.len() > IDEMPOTENCY_CAPACITY {
                if let Some(old) = self.order.pop_front() {
                    self.outcomes.remove(&old);
                }
            }
        }
    }
}

/// See the module docs.
pub struct CorpusService {
    corpus: RwLock<ShardedCinct>,
    cache: QueryCache,
    /// When present, every append is journaled (and fsynced, per the
    /// WAL's [`cinct::Durability`]) before it is installed or acked.
    /// The mutex also serializes journal order with install order —
    /// replay applies records in WAL order, so the two must agree.
    wal: Option<Mutex<Wal>>,
    idem: Mutex<IdemRegistry>,
    /// Quarantine report snapshotted at construction. Quarantine only
    /// happens at open time, so the snapshot never goes stale.
    quarantined: Vec<QuarantinedShard>,
    /// Replication-log tip (the WAL's `next_seq`), mirrored outside the
    /// WAL mutex so `/repl/wal` long-polls can block on the condvar
    /// without contending the append path.
    tip: Mutex<u64>,
    tip_cv: Condvar,
    /// Followers registered on the replication stream: follower id →
    /// the next sequence number it still needs. Sealed WAL segments
    /// below the minimum of these are the only ones reclaim may drop.
    followers: Mutex<HashMap<String, u64>>,
}

impl CorpusService {
    /// Wrap an assembled corpus. `cache_capacity == 0` disables the
    /// result cache; `cache_shards` is clamped to at least 1.
    pub fn new(corpus: ShardedCinct, cache_capacity: usize, cache_shards: usize) -> Self {
        Self::build(corpus, cache_capacity, cache_shards, None)
    }

    /// Wrap a corpus with a write-ahead log: `replay` (the records
    /// [`Wal::open`] recovered) is re-applied to the corpus first, so a
    /// crash after ack but before snapshot loses nothing. Replayed
    /// records keep their idempotency keys registered, so a client
    /// retrying across the restart still deduplicates.
    pub fn new_durable(
        mut corpus: ShardedCinct,
        cache_capacity: usize,
        cache_shards: usize,
        wal: Wal,
        replay: Vec<WalRecord>,
    ) -> Result<Self, QueryError> {
        let mut replayed: Vec<(String, AppendOutcome)> = Vec::new();
        for rec in &replay {
            let assigned = corpus.append_batch(&rec.batch)?;
            if !rec.key.is_empty() {
                replayed.push((
                    rec.key.clone(),
                    AppendOutcome {
                        assigned,
                        shards: corpus.num_shards(),
                        epoch: 0,
                        deduplicated: false,
                    },
                ));
            }
        }
        let svc = Self::build(corpus, cache_capacity, cache_shards, Some(wal));
        {
            let mut idem = svc.idem.lock().unwrap_or_else(|e| e.into_inner());
            for (key, outcome) in &replayed {
                idem.insert(key, outcome);
            }
        }
        Ok(svc)
    }

    fn build(
        corpus: ShardedCinct,
        cache_capacity: usize,
        cache_shards: usize,
        wal: Option<Wal>,
    ) -> Self {
        let quarantined = corpus.quarantined().to_vec();
        let tip = wal.as_ref().map_or(0, |w| w.next_seq());
        let svc = CorpusService {
            corpus: RwLock::new(corpus),
            cache: QueryCache::new(cache_capacity, cache_shards),
            wal: wal.map(Mutex::new),
            idem: Mutex::new(IdemRegistry::default()),
            quarantined,
            tip: Mutex::new(tip),
            tip_cv: Condvar::new(),
            followers: Mutex::new(HashMap::new()),
        };
        metrics::serve().epoch.set(0);
        metrics::serve()
            .degraded
            .set(u64::from(!svc.quarantined.is_empty()));
        svc
    }

    /// Whether the corpus was opened resiliently with shards lost to
    /// quarantine (queries succeed but cover only surviving shards).
    pub fn degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// The quarantine report from open time (empty unless degraded).
    pub fn quarantined(&self) -> &[QuarantinedShard] {
        &self.quarantined
    }

    /// Whether appends are journaled to a WAL before acking.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, ShardedCinct> {
        self.corpus.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `f` against the live corpus under the read lock — the hook
    /// identity tests use to compare served answers with direct ones.
    pub fn with_corpus<R>(&self, f: impl FnOnce(&ShardedCinct) -> R) -> R {
        f(&self.read())
    }

    /// Current corpus epoch (appends installed since construction).
    pub fn epoch(&self) -> u64 {
        self.cache.current_epoch()
    }

    /// Count trajectories matching `path`. Returns `(count, from_cache)`.
    /// `use_cache = false` bypasses both lookup and insert (honest
    /// cache-miss benchmarking; also the right call for one-off probes).
    pub fn count(&self, path: &[u32], use_cache: bool) -> Result<(usize, bool), QueryError> {
        let m = metrics::serve();
        if use_cache {
            match self.cache.get(CacheOp::Count, path) {
                Lookup::Hit(CachedValue::Count(n)) => {
                    m.cache_hits.inc();
                    return Ok((n, true));
                }
                Lookup::Hit(_) => m.cache_misses.inc(), // op/value mismatch: treat as miss
                Lookup::Stale => {
                    m.cache_stale.inc();
                    m.cache_misses.inc();
                }
                Lookup::Miss => m.cache_misses.inc(),
            }
        }
        let corpus = self.read();
        let epoch = self.cache.current_epoch();
        let value = QueryEngine::new(&*corpus)
            .run_one(&Query::count(path))
            .value?;
        let QueryValue::Count(n) = value else {
            unreachable!("count query returned non-count value")
        };
        if use_cache
            && self
                .cache
                .insert(CacheOp::Count, path, CachedValue::Count(n), epoch)
        {
            m.cache_evictions.inc();
        }
        Ok((n, false))
    }

    /// Count a whole batch under **one** read-lock acquisition. The
    /// per-item engine ceremony (lock, `Query` clone, two clock reads,
    /// per-query histogram sample) is what a batched protocol exists to
    /// amortize — this is the difference between the served path keeping
    /// up with direct calls and trailing them by ~25%.
    ///
    /// Outcome-identical to calling [`CorpusService::count`] per item:
    /// same counts, and the first invalid path fails the whole batch
    /// with the same [`QueryError`]. Engine metrics count each query;
    /// latency is recorded as one per-item mean sample per batch
    /// (end-to-end latency lives in `cinct_serve_request_ns`).
    ///
    /// Returns `(counts, cache_hits)`.
    pub fn count_batch(
        &self,
        paths: &[Vec<u32>],
        use_cache: bool,
    ) -> Result<(Vec<usize>, usize), QueryError> {
        let m = metrics::serve();
        let mut counts = vec![0usize; paths.len()];
        let mut pending = Vec::with_capacity(paths.len());
        for (i, path) in paths.iter().enumerate() {
            if use_cache {
                match self.cache.get(CacheOp::Count, path) {
                    Lookup::Hit(CachedValue::Count(n)) => {
                        m.cache_hits.inc();
                        counts[i] = n;
                        continue;
                    }
                    Lookup::Hit(_) => m.cache_misses.inc(),
                    Lookup::Stale => {
                        m.cache_stale.inc();
                        m.cache_misses.inc();
                    }
                    Lookup::Miss => m.cache_misses.inc(),
                }
            }
            pending.push(i);
        }
        let hits = paths.len() - pending.len();
        if pending.is_empty() {
            return Ok((counts, hits));
        }
        let t0 = Instant::now();
        {
            let corpus = self.read();
            let epoch = self.cache.current_epoch();
            for &i in &pending {
                let path = &paths[i];
                let n = corpus
                    .try_range(cinct::Path::new(path))?
                    .map_or(0, |r| r.len());
                counts[i] = n;
                if use_cache
                    && self
                        .cache
                        .insert(CacheOp::Count, path, CachedValue::Count(n), epoch)
                {
                    m.cache_evictions.inc();
                }
            }
        }
        let em = cinct::metrics::engine();
        em.queries.add(pending.len() as u64);
        em.count_ns.record(
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX) / pending.len() as u64,
        );
        Ok((counts, hits))
    }

    /// List every `(trajectory, offset)` occurrence of `path`, sorted.
    /// Returns `(occurrences, from_cache)`; the list is shared with the
    /// cache via `Arc`, so hits are allocation-free.
    pub fn occurrences(
        &self,
        path: &[u32],
        use_cache: bool,
    ) -> Result<(OccurrenceList, bool), QueryError> {
        let m = metrics::serve();
        if use_cache {
            match self.cache.get(CacheOp::Occurrences, path) {
                Lookup::Hit(CachedValue::Occurrences(occ)) => {
                    m.cache_hits.inc();
                    return Ok((occ, true));
                }
                Lookup::Hit(_) => m.cache_misses.inc(),
                Lookup::Stale => {
                    m.cache_stale.inc();
                    m.cache_misses.inc();
                }
                Lookup::Miss => m.cache_misses.inc(),
            }
        }
        let corpus = self.read();
        let epoch = self.cache.current_epoch();
        let value = QueryEngine::new(&*corpus)
            .run_one(&Query::occurrences(path))
            .value?;
        let QueryValue::Occurrences(occ) = value else {
            unreachable!("occurrences query returned non-occurrence value")
        };
        let occ = Arc::new(occ);
        if use_cache
            && self.cache.insert(
                CacheOp::Occurrences,
                path,
                CachedValue::Occurrences(Arc::clone(&occ)),
                epoch,
            )
        {
            m.cache_evictions.inc();
        }
        Ok((occ, false))
    }

    /// Batched [`CorpusService::occurrences`]: one read-lock acquisition
    /// for every non-cached item, same amortization and identity
    /// contract as [`CorpusService::count_batch`]. Returns
    /// `(per-path listings, cache_hits)`.
    pub fn occurrences_batch(
        &self,
        paths: &[Vec<u32>],
        use_cache: bool,
    ) -> Result<(Vec<OccurrenceList>, usize), QueryError> {
        let m = metrics::serve();
        let mut results: Vec<Option<OccurrenceList>> = vec![None; paths.len()];
        let mut pending = Vec::with_capacity(paths.len());
        for (i, path) in paths.iter().enumerate() {
            if use_cache {
                match self.cache.get(CacheOp::Occurrences, path) {
                    Lookup::Hit(CachedValue::Occurrences(occ)) => {
                        m.cache_hits.inc();
                        results[i] = Some(occ);
                        continue;
                    }
                    Lookup::Hit(_) => m.cache_misses.inc(),
                    Lookup::Stale => {
                        m.cache_stale.inc();
                        m.cache_misses.inc();
                    }
                    Lookup::Miss => m.cache_misses.inc(),
                }
            }
            pending.push(i);
        }
        let hits = paths.len() - pending.len();
        if !pending.is_empty() {
            let t0 = Instant::now();
            {
                let corpus = self.read();
                let epoch = self.cache.current_epoch();
                for &i in &pending {
                    let path = &paths[i];
                    let occ =
                        Arc::new(corpus.occurrences(cinct::Path::new(path))?.collect_sorted());
                    if use_cache
                        && self.cache.insert(
                            CacheOp::Occurrences,
                            path,
                            CachedValue::Occurrences(Arc::clone(&occ)),
                            epoch,
                        )
                    {
                        m.cache_evictions.inc();
                    }
                    results[i] = Some(occ);
                }
            }
            let em = cinct::metrics::engine();
            em.queries.add(pending.len() as u64);
            em.occurrences_ns.record(
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX) / pending.len() as u64,
            );
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("every slot filled by cache or compute"))
            .collect();
        Ok((results, hits))
    }

    /// Extract `len` symbols preceding `SA[row]` (never cached: row
    /// space shifts as shards are appended).
    pub fn extract(&self, row: usize, len: usize) -> Result<Vec<u32>, QueryError> {
        let corpus = self.read();
        let value = QueryEngine::new(&*corpus)
            .run_one(&Query::extract(row, len))
            .value?;
        let QueryValue::Extract(symbols) = value else {
            unreachable!("extract query returned non-extract value")
        };
        Ok(symbols)
    }

    /// Recover a full stored trajectory by global ID. On a degraded
    /// corpus, IDs whose shard was quarantined fail with
    /// [`QueryError::CorruptIndex`] rather than panicking.
    pub fn trajectory(&self, id: usize) -> Result<Vec<u32>, QueryError> {
        let corpus = self.read();
        let n = corpus.num_trajectories();
        if id >= n {
            return Err(QueryError::InvalidInput(format!(
                "trajectory {id} out of range ({n} trajectories)"
            )));
        }
        corpus.try_trajectory(id)
    }

    /// Install an append batch: build under the read lock (queries keep
    /// flowing), install + epoch bump under the write lock. See the
    /// module docs for why the epoch must advance inside the write
    /// section.
    pub fn append(&self, batch: &[Vec<u32>]) -> Result<AppendOutcome, QueryError> {
        self.append_keyed(batch, None)
    }

    /// [`CorpusService::append`] with an optional idempotency key.
    ///
    /// With a key, a batch is applied **exactly once per process
    /// lifetime** (the registry remembers the most recent 4096 keys):
    /// a repeat of an already-applied key returns the original outcome
    /// with `deduplicated: true` and installs nothing. With a WAL, the
    /// key is journaled in the record, so deduplication also survives a
    /// crash-and-replay restart.
    ///
    /// Ordering discipline when a WAL is present: journal (fsync per
    /// the WAL's durability) **then** install, both under the WAL
    /// mutex, so WAL order equals install order and replay reassigns
    /// the same global IDs.
    pub fn append_keyed(
        &self,
        batch: &[Vec<u32>],
        key: Option<&str>,
    ) -> Result<AppendOutcome, QueryError> {
        let m = metrics::serve();
        let t0 = Instant::now();
        if let Some(key) = key {
            let idem = self.idem.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = idem.get(key) {
                m.idem_hits.inc();
                return Ok(hit);
            }
        }
        let prepared = self.read().prepare_batch(batch)?;
        let outcome = match &self.wal {
            Some(wal) => {
                let mut wal = wal.lock().unwrap_or_else(|e| e.into_inner());
                // Re-check under the serializing lock: a racing retry
                // may have journaled + installed this key meanwhile.
                if let Some(key) = key {
                    let hit = {
                        let idem = self.idem.lock().unwrap_or_else(|e| e.into_inner());
                        idem.get(key)
                    };
                    if let Some(hit) = hit {
                        m.idem_hits.inc();
                        return Ok(hit);
                    }
                }
                let seq = wal.append(key.unwrap_or(""), batch)?;
                let outcome = self.install(prepared);
                if let Some(key) = key {
                    let mut idem = self.idem.lock().unwrap_or_else(|e| e.into_inner());
                    idem.insert(key, &outcome);
                }
                self.note_tip(seq + 1);
                outcome
            }
            None => match key {
                Some(key) => {
                    // No WAL: the idem lock itself serializes same-key
                    // installs, closing the check/install race.
                    let mut idem = self.idem.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(hit) = idem.get(key) {
                        m.idem_hits.inc();
                        return Ok(hit);
                    }
                    let outcome = self.install(prepared);
                    idem.insert(key, &outcome);
                    outcome
                }
                None => self.install(prepared),
            },
        };
        m.appends.inc();
        m.epoch.set(outcome.epoch);
        m.append_ns
            .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Ok(outcome)
    }

    fn install(&self, prepared: cinct::PreparedBatch) -> AppendOutcome {
        let (assigned, shards, epoch);
        {
            let mut corpus = self.corpus.write().unwrap_or_else(|e| e.into_inner());
            assigned = corpus.install_prepared(prepared);
            epoch = self.cache.advance_epoch();
            shards = corpus.num_shards();
        }
        AppendOutcome {
            assigned,
            shards,
            epoch,
            deduplicated: false,
        }
    }

    /// Snapshot for the stats endpoint.
    pub fn stats(&self) -> ServiceStats {
        let (wal_pending, wal_next_seq) = self.wal.as_ref().map_or((0, 0), |w| {
            let w = w.lock().unwrap_or_else(|e| e.into_inner());
            (w.pending(), w.next_seq())
        });
        let followers = self
            .followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len();
        let corpus = self.read();
        ServiceStats {
            shards: corpus.num_shards(),
            trajectories: corpus.num_trajectories(),
            indexed_symbols: corpus.text_len(),
            network_edges: corpus.network_edges(),
            locate_supported: corpus.locate_supported(),
            index_bytes: corpus.core_size_in_bytes(),
            epoch: self.cache.current_epoch(),
            cache_entries: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            fan_out_threads: corpus.fan_out_threads(),
            degraded: self.degraded(),
            quarantined_shards: self.quarantined.len(),
            wal_enabled: self.wal.is_some(),
            wal_pending,
            wal_next_seq,
            followers,
        }
    }

    /// Persist the live corpus (graceful-shutdown durability for served
    /// appends), then **retire** the WAL's active segment: everything
    /// journaled is now in the manifest, so the segment is sealed (kept
    /// on disk for lagging followers) and a fresh one started. The WAL
    /// lock is held across both so no append can journal between the
    /// save and the seal and be lost. Takes the corpus read lock:
    /// concurrent queries proceed, appends wait out the save. Finally,
    /// sealed segments every registered follower has passed are
    /// reclaimed — a follower that never comes back would otherwise pin
    /// history forever, so callers can drop it from the registry with
    /// [`CorpusService::forget_follower`] first.
    pub fn save_dir(&self, dir: &std::path::Path) -> Result<(), QueryError> {
        match &self.wal {
            Some(wal) => {
                let mut wal = wal.lock().unwrap_or_else(|e| e.into_inner());
                // Stamp the absorbed WAL position into the manifest: the
                // WAL lock is held, so the corpus holds exactly the
                // records below `next_seq`. If we crash after the
                // manifest rename but before the retire below, replay
                // skips the absorbed records instead of applying them
                // twice.
                self.read()
                    .save_dir_at(dir, cinct::Durability::Durable, wal.next_seq())?;
                wal.retire()?;
                let floor = {
                    let followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
                    followers.values().copied().min().unwrap_or(u64::MAX)
                };
                let reclaimed = wal.reclaim(floor)?;
                if reclaimed > 0 {
                    metrics::serve()
                        .repl_segments_reclaimed
                        .add(reclaimed as u64);
                }
                Ok(())
            }
            None => self.read().save_dir(dir),
        }
    }

    // ------------------------------------------------------------------
    // Replication: the primary-side stream and the follower-side apply.
    // ------------------------------------------------------------------

    /// Mirror the WAL tip (its `next_seq`) for long-pollers and wake
    /// them. Called after every successful journaled append.
    fn note_tip(&self, next_seq: u64) {
        let mut tip = self.tip.lock().unwrap_or_else(|e| e.into_inner());
        if next_seq > *tip {
            *tip = next_seq;
            self.tip_cv.notify_all();
        }
    }

    /// Block until the replication log holds a record at-or-after
    /// `from` (i.e. the tip moves past it) or `timeout` elapses; returns
    /// the current tip either way. The long-poll half of `/repl/wal`.
    pub fn wait_for_tip(&self, from: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut tip = self.tip.lock().unwrap_or_else(|e| e.into_inner());
        while *tip <= from {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = self
                .tip_cv
                .wait_timeout(tip, left)
                .unwrap_or_else(|e| e.into_inner());
            tip = guard;
        }
        *tip
    }

    /// Sequence number the next journaled append will receive (`None`
    /// without a WAL — a memory-only corpus has no replication log).
    pub fn wal_next_seq(&self) -> Option<u64> {
        self.wal
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()).next_seq())
    }

    /// Read the replication log at-or-after `from` — the record source
    /// behind `/repl/wal`. Errors without a WAL.
    pub fn wal_read_from(&self, from: u64) -> Result<WalRead, QueryError> {
        let wal = self.wal.as_ref().ok_or_else(|| {
            QueryError::InvalidInput("replication requires a WAL (serve a saved directory)".into())
        })?;
        let wal = wal.lock().unwrap_or_else(|e| e.into_inner());
        wal.read_from(from)
    }

    /// Record (or refresh) a follower's position: `from` is the next
    /// sequence number it still needs. Registered positions are the
    /// floor below which [`CorpusService::save_dir`] may reclaim sealed
    /// WAL segments.
    pub fn register_follower(&self, id: &str, from: u64) {
        let mut followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
        followers.insert(id.to_owned(), from);
    }

    /// Drop a follower from the registry (it was decommissioned, or its
    /// lag is being traded for disk by forcing a snapshot bootstrap).
    pub fn forget_follower(&self, id: &str) {
        let mut followers = self.followers.lock().unwrap_or_else(|e| e.into_inner());
        followers.remove(id);
    }

    /// Serialize a consistent snapshot of the live corpus plus the WAL
    /// position it absorbs — the payload behind `/repl/snapshot`. The
    /// WAL lock freezes the cut point: appends journal under that lock,
    /// so no record can land between reading `next_seq` and serializing
    /// the corpus state that includes it.
    pub fn snapshot_stream(&self) -> Result<Vec<u8>, QueryError> {
        let wal = self.wal.as_ref().ok_or_else(|| {
            QueryError::InvalidInput("replication requires a WAL (serve a saved directory)".into())
        })?;
        let wal = wal.lock().unwrap_or_else(|e| e.into_inner());
        let absorbed = wal.next_seq();
        let stream = self.read().snapshot_to_vec(absorbed)?;
        metrics::serve().repl_snapshots_served.inc();
        Ok(stream)
    }

    /// Replace the local corpus wholesale with a primary's snapshot
    /// stream — the follower-bootstrap path, taken when the local log
    /// is behind the primary's oldest retained segment. Installs the
    /// snapshot into `dir`, swaps it in under the corpus write lock,
    /// and re-bases the WAL at the absorbed position so pulling resumes
    /// exactly where the snapshot left off; returns that position.
    /// Cached results and idempotency keys all predate the new corpus,
    /// so the epoch advances (evicting cache entries on sight) and the
    /// key registry is dropped.
    pub fn bootstrap_snapshot(
        &self,
        dir: &std::path::Path,
        stream: &[u8],
    ) -> Result<u64, QueryError> {
        let wal_mutex = self.wal.as_ref().ok_or_else(|| {
            QueryError::InvalidInput("replication requires a WAL (serve a saved directory)".into())
        })?;
        let mut wal = wal_mutex.lock().unwrap_or_else(|e| e.into_inner());
        let durability = wal.durability();
        let (mut corpus, absorbed) = ShardedCinct::install_snapshot(dir, stream, durability)?;
        {
            let mut live = self.corpus.write().unwrap_or_else(|e| e.into_inner());
            corpus.set_fan_out_threads(live.fan_out_threads());
            *live = corpus;
            self.cache.advance_epoch();
        }
        *wal = Wal::create_at(dir, durability, absorbed)?;
        {
            let mut idem = self.idem.lock().unwrap_or_else(|e| e.into_inner());
            *idem = IdemRegistry::default();
        }
        self.note_tip(absorbed);
        metrics::serve().repl_bootstraps.inc();
        Ok(absorbed)
    }

    /// Apply records pulled from a primary, in order: journal each under
    /// the **primary's** sequence number (so a restart resumes pulling
    /// from the right position), install it, and register its
    /// idempotency key — a client retrying a write against a promoted
    /// follower deduplicates exactly as it would have on the old
    /// primary. Records below the local tip are skips (already applied);
    /// a record past it is a gap and fails — the puller must re-fetch.
    /// Returns how many records were newly applied.
    pub fn apply_replicated(&self, records: &[WalRecord]) -> Result<usize, QueryError> {
        let Some(wal_mutex) = self.wal.as_ref() else {
            return Err(QueryError::InvalidInput(
                "replication requires a WAL (serve a saved directory)".into(),
            ));
        };
        let mut applied = 0usize;
        for rec in records {
            let prepared = self.read().prepare_batch(&rec.batch)?;
            let mut wal = wal_mutex.lock().unwrap_or_else(|e| e.into_inner());
            let next = wal.next_seq();
            if rec.seq < next {
                continue; // replayed overlap from a re-fetch
            }
            if rec.seq > next {
                return Err(QueryError::InvalidInput(format!(
                    "replication gap: record {} arrived but local log ends at {next}",
                    rec.seq
                )));
            }
            wal.append_at(rec.seq, &rec.key, &rec.batch)?;
            let outcome = self.install(prepared);
            if !rec.key.is_empty() {
                let mut idem = self.idem.lock().unwrap_or_else(|e| e.into_inner());
                idem.insert(&rec.key, &outcome);
            }
            self.note_tip(rec.seq + 1);
            drop(wal);
            applied += 1;
            metrics::serve().repl_records_applied.inc();
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinct::{Path, ShardedBuilder};

    fn corpus() -> ShardedCinct {
        let trajs = vec![
            vec![0, 1, 4, 5],
            vec![0, 1, 2],
            vec![1, 2],
            vec![0, 3],
            vec![2, 3, 4],
            vec![4, 5, 0],
        ];
        ShardedBuilder::new()
            .shards(2)
            .locate_sampling(4)
            .build(&trajs, 6)
    }

    #[test]
    fn served_answers_match_direct_queries() {
        let svc = CorpusService::new(corpus(), 64, 4);
        for pat in [&[0u32, 1][..], &[1, 2], &[4, 5], &[3, 0]] {
            let direct_count = svc.with_corpus(|c| c.count(Path::new(pat)));
            let (served, cached) = svc.count(pat, true).unwrap();
            assert_eq!(served, direct_count, "{pat:?}");
            assert!(!cached);
            // Second ask: same answer, from cache.
            let (served2, cached2) = svc.count(pat, true).unwrap();
            assert_eq!(served2, direct_count);
            assert!(cached2);

            let direct_occ =
                svc.with_corpus(|c| c.occurrences(Path::new(pat)).unwrap().collect_sorted());
            let (occ, _) = svc.occurrences(pat, true).unwrap();
            assert_eq!(*occ, direct_occ, "{pat:?}");
            let (occ2, cached_occ) = svc.occurrences(pat, true).unwrap();
            assert_eq!(*occ2, direct_occ);
            assert!(cached_occ);
        }
        // Errors are outcome-identical too: an unknown edge fails the
        // same way served as direct.
        let direct_err = svc.with_corpus(|c| c.occurrences(Path::new(&[9])).err());
        assert_eq!(svc.occurrences(&[9], true).err(), direct_err);
        assert!(matches!(
            svc.occurrences(&[9], true),
            Err(QueryError::UnknownEdge {
                edge: 9,
                n_edges: 6
            })
        ));
    }

    #[test]
    fn cache_bypass_never_caches() {
        let svc = CorpusService::new(corpus(), 64, 4);
        let (_, cached) = svc.count(&[0, 1], false).unwrap();
        assert!(!cached);
        // Still a miss afterwards: bypass inserted nothing.
        let (_, cached) = svc.count(&[0, 1], true).unwrap();
        assert!(!cached);
    }

    #[test]
    fn append_invalidates_cached_counts() {
        let svc = CorpusService::new(corpus(), 64, 4);
        let (before, _) = svc.count(&[1, 2], true).unwrap();
        let (_, cached) = svc.count(&[1, 2], true).unwrap();
        assert!(cached, "primed");

        let out = svc.append(&[vec![1, 2, 5], vec![1, 2]]).unwrap();
        assert_eq!(out.assigned, 6..8);
        assert_eq!(out.epoch, 1);
        assert_eq!(svc.epoch(), 1);

        // The cached pre-append answer must not surface.
        let (after, cached) = svc.count(&[1, 2], true).unwrap();
        assert!(!cached, "stale entry must have been evicted");
        assert_eq!(after, before + 2);
        // Occurrence lists see the appended rows under their global IDs.
        let (occ, _) = svc.occurrences(&[1, 2], true).unwrap();
        assert!(occ.iter().any(|&(t, _)| t == 6));
        assert!(occ.iter().any(|&(t, _)| t == 7));
    }

    #[test]
    fn append_errors_leave_corpus_and_epoch_untouched() {
        let svc = CorpusService::new(corpus(), 64, 4);
        let err = svc.append(&[vec![0, 99]]).unwrap_err();
        assert!(matches!(err, QueryError::UnknownEdge { edge: 99, .. }));
        assert_eq!(svc.epoch(), 0);
        assert_eq!(svc.stats().trajectories, 6);
    }

    #[test]
    fn trajectory_and_extract_round_trip() {
        let svc = CorpusService::new(corpus(), 0, 1);
        assert_eq!(svc.trajectory(0).unwrap(), vec![0, 1, 4, 5]);
        assert_eq!(svc.trajectory(5).unwrap(), vec![4, 5, 0]);
        assert!(matches!(
            svc.trajectory(6),
            Err(QueryError::InvalidInput(_))
        ));
        let direct = svc.with_corpus(|c| {
            QueryEngine::new(c)
                .run_one(&Query::extract(0, 3))
                .value
                .unwrap()
        });
        let QueryValue::Extract(expect) = direct else {
            unreachable!()
        };
        assert_eq!(svc.extract(0, 3).unwrap(), expect);
    }

    #[test]
    fn stats_reflect_appends_and_cache() {
        let svc = CorpusService::new(corpus(), 8, 2);
        let s = svc.stats();
        assert_eq!((s.shards, s.trajectories, s.epoch), (2, 6, 0));
        assert_eq!(s.cache_capacity, 8);
        assert!(s.locate_supported);
        assert_eq!(s.network_edges, 6);

        svc.count(&[0, 1], true).unwrap();
        assert_eq!(svc.stats().cache_entries, 1);
        svc.append(&[vec![3, 4]]).unwrap();
        let s = svc.stats();
        assert_eq!((s.shards, s.trajectories, s.epoch), (3, 7, 1));
    }

    /// The epoch-invalidation race, hammered with scoped threads: an
    /// append that has *completed* must be visible to every count that
    /// *starts* afterwards — a cached pre-append answer surfacing
    /// post-append is the bug this test exists to catch.
    #[test]
    fn concurrent_appends_never_serve_stale_cached_counts() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let svc = CorpusService::new(corpus(), 256, 4);
        let pat = [1u32, 2];
        let base = svc.count(&pat, true).unwrap().0;
        let appends_done = AtomicUsize::new(0);
        const APPENDS: usize = 12;

        std::thread::scope(|s| {
            // One appender: each batch adds exactly one new [1,2] match.
            s.spawn(|| {
                for _ in 0..APPENDS {
                    svc.append(&[vec![1, 2, 4]]).unwrap();
                    appends_done.fetch_add(1, Ordering::Release);
                }
            });
            // N readers racing it through the cache.
            for _ in 0..4 {
                s.spawn(|| loop {
                    let done = appends_done.load(Ordering::Acquire);
                    let (n, _) = svc.count(&pat, true).unwrap();
                    assert!(
                        n >= base + done,
                        "count {n} started after {done} appends completed (base {base})"
                    );
                    if done == APPENDS {
                        break;
                    }
                });
            }
        });
        assert_eq!(svc.count(&pat, true).unwrap().0, base + APPENDS);
        assert_eq!(svc.epoch(), APPENDS as u64);
    }
}
