#![warn(missing_docs)]
//! `cinct_serve` — a concurrent query-serving subsystem over the
//! sharded CiNCT corpus.
//!
//! This crate turns an in-process [`cinct::ShardedCinct`] into a
//! network service: a dependency-free HTTP/1.1 + JSON server with a
//! thread-per-core worker pool, a bounded accept queue that sheds load
//! with explicit `429`s, per-request deadlines, an epoch-stamped
//! hot-pattern result cache that can never serve a stale answer across
//! appends, and graceful drain. Every stage reports into the shared
//! [`cinct_obs`] registry, exposed at `/metrics` in Prometheus text
//! format.
//!
//! # Quick start
//!
//! ```
//! use cinct::ShardedBuilder;
//! use cinct_serve::{Server, ServeConfig};
//!
//! let corpus = ShardedBuilder::new()
//!     .shards(2)
//!     .locate_sampling(4)
//!     .build(&[vec![0, 1, 4], vec![0, 1, 2], vec![1, 2]], 6);
//!
//! // Bind on an ephemeral port; thread budget resolves once, here.
//! let server = Server::bind("127.0.0.1:0", corpus, ServeConfig::default()).unwrap();
//! let handle = server.handle();
//! let addr = handle.addr();
//!
//! // `run` blocks the calling thread (it becomes the accept loop).
//! let srv = std::thread::spawn(move || server.run().unwrap());
//!
//! // ... speak HTTP to `addr`:
//! //   POST /v1/count        {"path":[0,1]}          → {"count":2,...}
//! //   POST /v1/count        {"paths":[[0,1],[1,2]]} → {"counts":[2,2],...}
//! //   POST /v1/locate       {"path":[1,2]}          → {"total":2,"occurrences":[[1,1],[2,0]],...}
//! //   POST /v1/append       {"batch":[[1,2,4]]}     → {"assigned":{"start":3,"end":4},...}
//! //   POST /v1/extract      {"trajectory":0}        → {"symbols":[0,1,4],...}
//! //   GET  /v1/stats, GET /metrics, GET /healthz
//!
//! // Graceful drain: in-flight requests finish, new connects refuse,
//! // run() returns.
//! handle.shutdown();
//! srv.join().unwrap();
//! ```
//!
//! The `cinct serve <dir>` CLI verb (this crate's `cinct` binary) wraps
//! exactly this: it opens a sharded corpus directory, serves it, and on
//! graceful shutdown persists the corpus back if any appends were
//! installed.
//!
//! # Architecture
//!
//! | module | role |
//! |---|---|
//! | [`service`] | [`service::CorpusService`]: corpus behind a `RwLock`, cache + epoch discipline — transport-free, directly testable |
//! | [`server`]  | accept loop, bounded queue + shedding, workers, keep-alive, deadlines, drain |
//! | [`cache`]   | sharded LRU keyed by `(op, path)`, epoch-stamped against appends |
//! | [`http`]    | hand-rolled HTTP/1.1 subset: obs-fold headers, pipelining, typed 4xx errors |
//! | [`json`]    | minimal JSON parser/renderer for the wire protocol |
//! | [`client`]  | blocking keep-alive client: timeouts, jittered retry/backoff, idempotent appends; [`FailoverClient`] load-balances a replicated deployment |
//! | [`replica`] | the follower's pull loop: WAL shipping, snapshot bootstrap, lag gauges |
//! | [`metrics`] | the `cinct_serve_*` and `cinct_repl_*` metric catalogs |
//!
//! # Durability
//!
//! [`Server::bind_durable`] adds a write-ahead log to the append path:
//! each `/v1/append` batch is journaled and fsynced (see [`cinct::Wal`])
//! *before* it is acked, and replayed into the corpus on restart — an
//! acked write survives `kill -9`. Appends may carry an
//! `Idempotency-Key` (or `"key"` body member); the server applies each
//! key exactly once, so [`Client::append_idempotent`] can retry writes
//! safely. A corpus opened with [`cinct::OpenMode::Resilient`] serves
//! in degraded mode: `/healthz` says `degraded`, and every query
//! response carries `degraded: true` plus the quarantined-shard report.
//!
//! The load-bearing invariant, proven by tests at each layer: **a
//! served answer is outcome-identical to a direct [`cinct::PathQuery`]
//! call against the same corpus state**, across the whole
//! fresh → append → query lifecycle, including under concurrent
//! appends. The cache cannot break this because every entry is stamped
//! with the corpus epoch, the epoch only advances inside the corpus
//! write lock, and mismatched entries are evicted on sight.

pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod replica;
pub mod server;
pub mod service;

pub use cache::{CacheOp, CachedValue, QueryCache};
pub use client::{Client, FailoverClient, RetryPolicy};
pub use replica::{Replicator, StepOutcome};
pub use server::{ResolvedConfig, ServeConfig, Server, ServerHandle};
pub use service::{AppendOutcome, CorpusService, ServiceStats};
