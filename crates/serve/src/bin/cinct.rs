//! `cinct` — command-line interface to the CiNCT trajectory index.
//!
//! Trajectory files are plain text: one trajectory per line, comma- or
//! whitespace-separated edge IDs. Typical session:
//!
//! ```text
//! cinct build  trips.txt  trips.cinct          # build + save an index
//! cinct stats  trips.cinct                     # size breakdown
//! cinct count  trips.cinct  12,13,14           # how many travel 12→13→14?
//! cinct locate trips.cinct  12,13,14           # who, and where (needs --locate at build)
//! cinct get    trips.cinct  7                  # decompress trajectory #7
//! ```
//!
//! Sharded session — `--shards K` makes the output a *directory* (one
//! index file per shard plus a checksummed manifest), which every query
//! verb accepts wherever a single-file index is accepted, and which can
//! grow without a rebuild:
//!
//! ```text
//! cinct build   trips.txt  trips.d  --shards 8 --locate 32
//! cinct append  trips.d    more_trips.txt      # new batch → one fresh shard
//! cinct compact trips.d    8                   # re-balance small shards away
//! cinct count   trips.d    12,13,14            # fan-out over all shards
//! cinct locate  trips.d    12,13,14            # global trajectory IDs
//! ```

//!
//! Serving session — `cinct serve` exposes a sharded directory over
//! HTTP/1.1 + JSON (see the `cinct_serve` crate docs for the protocol):
//!
//! ```text
//! cinct serve trips.d --addr 127.0.0.1:8080    # blocks until drained
//! curl -d '{"path":[12,13,14]}' localhost:8080/v1/count
//! curl -d '{"batch":[[12,13]]}' localhost:8080/v1/append
//! curl localhost:8080/metrics                  # Prometheus text
//! curl -X POST localhost:8080/admin/shutdown   # graceful drain; served
//!                                              # appends persist to trips.d
//! ```

use cinct::text_io::{format_trajectory, parse_path, parse_trajectories};
use cinct::{
    CinctBuilder, CinctIndex, Path, PathQuery, QueryTrace, ShardPartition, ShardedBuilder,
    ShardedCinct,
};
use cinct_serve::{ServeConfig, Server};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  cinct build <trajectories.txt> <index.cinct> [--block-size 15|31|63] [--locate RATE]
              [--threads N] [--shards K] [--balance size|rr]
                                            N = 0 uses all cores; output is
                                            identical at any thread count.
                                            --shards K writes a sharded index
                                            *directory* (K per-shard indexes +
                                            manifest); --balance picks the
                                            partition (size-balanced default,
                                            rr = round-robin)
  cinct append <index-dir> <trajectories.txt>   seal a new batch into a fresh
                                            shard (no rebuild of old shards)
  cinct compact <index-dir> <K>             re-balance the corpus into K shards
  cinct stats <index> [--metrics[=prometheus|json]]
                                            index = file or sharded directory;
                                            --metrics dumps the process metric
                                            registry after loading the index
  cinct count <index> <path> [--trace]      path = comma-separated edge IDs;
                                            --trace explains the query: per-
                                            shard, per-stage breakdown
  cinct locate <index> <path> [--trace]
  cinct get <index> <trajectory-id>
  cinct serve <index-dir> [--addr HOST:PORT] [--workers N] [--queue N]
              [--deadline-ms MS] [--cache N] [--fan-out N] [--max-body BYTES]
              [--no-save] [--resilient]
              [--replica-of HOST:PORT] [--follower-id NAME]
                                            serve the sharded directory over
                                            HTTP/1.1 + JSON; 0 = auto on the
                                            thread knobs; POST /admin/shutdown
                                            drains gracefully and (unless
                                            --no-save) persists served appends.
                                            Appends journal to a write-ahead
                                            log before acking and replay on
                                            restart (--no-save disables the
                                            WAL too). --resilient opens the
                                            corpus even when shards fail
                                            verification, quarantining them
                                            and serving degraded.
                                            --replica-of makes this a read-only
                                            follower pulling HOST:PORT's WAL:
                                            appends answer 421 with the primary
                                            location until POST /admin/promote"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match (cmd.as_str(), args.len()) {
        ("build", n) if n >= 3 => cmd_build(&args[1], &args[2], &args[3..]),
        ("append", 3) => cmd_append(&args[1], &args[2]),
        ("compact", 3) => cmd_compact(&args[1], &args[2]),
        ("stats", n) if n >= 2 => cmd_stats(&args[1], &args[2..]),
        ("count", n) if n >= 3 => cmd_count(&args[1], &args[2], &args[3..]),
        ("locate", n) if n >= 3 => cmd_locate(&args[1], &args[2], &args[3..]),
        ("get", 3) => cmd_get(&args[1], &args[2]),
        ("serve", n) if n >= 2 => cmd_serve(&args[1], &args[2..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a trajectory file via [`cinct::text_io`].
fn read_trajectories(path: &str) -> Result<(Vec<Vec<u32>>, usize), String> {
    let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    parse_trajectories(std::io::BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

/// A loaded index, either flavor; queried through `&dyn PathQuery`.
/// (Both variants are boxed: each handle is hundreds of bytes — the
/// sharded one now carries the corpus-union edge membership — and
/// clippy's large-enum-variant lint is right that the enum should not
/// carry that inline.)
enum Backend {
    Mono(Box<CinctIndex>),
    Sharded(Box<ShardedCinct>),
}

impl Backend {
    fn as_query(&self) -> &dyn PathQuery {
        match self {
            Backend::Mono(i) => i.as_ref(),
            Backend::Sharded(s) => s.as_ref(),
        }
    }

    fn num_trajectories(&self) -> usize {
        match self {
            Backend::Mono(i) => i.num_trajectories(),
            Backend::Sharded(s) => s.num_trajectories(),
        }
    }

    fn trajectory(&self, id: usize) -> Vec<u32> {
        match self {
            Backend::Mono(i) => i.trajectory(id),
            Backend::Sharded(s) => s.trajectory(id),
        }
    }
}

/// Load a single-file index or a sharded index directory, inferred from
/// what `path` points at.
fn load_any(path: &str) -> Result<Backend, String> {
    if std::path::Path::new(path).is_dir() {
        ShardedCinct::open_dir(path)
            .map(|s| Backend::Sharded(Box::new(s)))
            .map_err(|e| format!("load {path}: {e}"))
    } else {
        let mut f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        CinctIndex::read_from(&mut f)
            .map(|i| Backend::Mono(Box::new(i)))
            .map_err(|e| format!("load {path}: {e}"))
    }
}

fn load_sharded(path: &str) -> Result<ShardedCinct, String> {
    ShardedCinct::open_dir(path).map_err(|e| format!("load {path}: {e}"))
}

fn cmd_build(input: &str, output: &str, flags: &[String]) -> Result<(), String> {
    let mut builder = CinctBuilder::new();
    let mut shards: Option<usize> = None;
    let mut partition = ShardPartition::SizeBalanced;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--block-size" => {
                let b: usize = flags
                    .get(i + 1)
                    .ok_or("--block-size needs a value")?
                    .parse()
                    .map_err(|_| "bad --block-size")?;
                builder = builder.block_size(b);
                i += 2;
            }
            "--locate" => {
                let r: usize = flags
                    .get(i + 1)
                    .ok_or("--locate needs a sampling rate")?
                    .parse()
                    .map_err(|_| "bad --locate rate")?;
                builder = builder.locate_sampling(r);
                i += 2;
            }
            "--threads" => {
                let n: usize = flags
                    .get(i + 1)
                    .ok_or("--threads needs a count (0 = all cores)")?
                    .parse()
                    .map_err(|_| "bad --threads count")?;
                threads = Some(n);
                builder = builder.threads(n);
                i += 2;
            }
            "--shards" => {
                let k: usize = flags
                    .get(i + 1)
                    .ok_or("--shards needs a count (>= 1)")?
                    .parse()
                    .map_err(|_| "bad --shards count")?;
                if k == 0 {
                    return Err("--shards must be >= 1".into());
                }
                shards = Some(k);
                i += 2;
            }
            "--balance" => {
                partition = match flags.get(i + 1).map(String::as_str) {
                    Some("size") => ShardPartition::SizeBalanced,
                    Some("rr") => ShardPartition::RoundRobin,
                    _ => return Err("--balance takes `size` or `rr`".into()),
                };
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let (trajs, n_edges) = read_trajectories(input)?;
    match shards {
        None => {
            let t0 = std::time::Instant::now();
            let (index, timings) = builder.build_timed(&trajs, n_edges);
            eprintln!(
                "built in {:.2}s: {} trajectories, {} edges, {:.2} bits/symbol",
                t0.elapsed().as_secs_f64(),
                index.num_trajectories(),
                n_edges,
                index.bits_per_symbol()
            );
            eprintln!("stages: {}", timings.breakdown());
            let mut f =
                std::fs::File::create(output).map_err(|e| format!("create {output}: {e}"))?;
            index
                .write_to(&mut f)
                .map_err(|e| format!("write {output}: {e}"))?;
            eprintln!("saved to {output}");
        }
        Some(k) => {
            let t0 = std::time::Instant::now();
            // For sharded builds --threads governs how many *shards*
            // build concurrently (each shard's own pipeline stays
            // sequential — fanning both levels would multiply threads);
            // without the flag, shard builds use all cores.
            let sharded = ShardedBuilder::new()
                .shards(k)
                .partition(partition)
                .threads(threads.unwrap_or(0))
                .index_builder(builder.threads(1))
                .try_build(&trajs, n_edges)
                .map_err(|e| e.to_string())?;
            eprintln!(
                "built in {:.2}s: {} trajectories across {} shards, {} edges, \
                 {:.2} bits/symbol",
                t0.elapsed().as_secs_f64(),
                sharded.num_trajectories(),
                sharded.num_shards(),
                n_edges,
                sharded.bits_per_symbol()
            );
            sharded.save_dir(output).map_err(|e| e.to_string())?;
            eprintln!("saved sharded index directory to {output}");
        }
    }
    Ok(())
}

fn cmd_append(index_dir: &str, input: &str) -> Result<(), String> {
    let mut sharded = load_sharded(index_dir)?;
    let (batch, batch_edges) = read_trajectories(input)?;
    if batch_edges > sharded.network_edges() {
        return Err(format!(
            "batch references edge {} but the index network has {} edges \
             (the alphabet is fixed at first build)",
            batch_edges - 1,
            sharded.network_edges()
        ));
    }
    let t0 = std::time::Instant::now();
    let ids = sharded.append_batch(&batch).map_err(|e| e.to_string())?;
    sharded.save_dir(index_dir).map_err(|e| e.to_string())?;
    eprintln!(
        "appended {} trajectories (global IDs {}..{}) as shard {} in {:.2}s; \
         {} shards total",
        ids.len(),
        ids.start,
        ids.end,
        sharded.num_shards() - 1,
        t0.elapsed().as_secs_f64(),
        sharded.num_shards()
    );
    Ok(())
}

fn cmd_compact(index_dir: &str, k_spec: &str) -> Result<(), String> {
    let mut sharded = load_sharded(index_dir)?;
    let k: usize = k_spec.parse().map_err(|_| "bad shard count")?;
    let before = sharded.num_shards();
    let t0 = std::time::Instant::now();
    sharded.compact(k).map_err(|e| e.to_string())?;
    // save_dir garbage-collects the pre-compaction shard files once the
    // new manifest is live.
    sharded.save_dir(index_dir).map_err(|e| e.to_string())?;
    eprintln!(
        "compacted {} shards -> {} in {:.2}s",
        before,
        sharded.num_shards(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Parse a `--trace` flag tail for the query verbs.
fn parse_trace_flag(flags: &[String]) -> Result<bool, String> {
    match flags {
        [] => Ok(false),
        [f] if f == "--trace" => Ok(true),
        [other, ..] => Err(format!("unknown flag {other}")),
    }
}

fn cmd_stats(path: &str, flags: &[String]) -> Result<(), String> {
    let mut metrics: Option<&str> = None;
    for f in flags {
        metrics = Some(match f.as_str() {
            "--metrics" | "--metrics=prometheus" => "prometheus",
            "--metrics=json" => "json",
            other => return Err(format!("unknown flag {other}")),
        });
    }
    let backend = load_any(path)?;
    // The metrics dump reflects this process's work so far — for the CLI
    // that is the index load itself (open timings, checksum verifies).
    if let Some(format) = metrics {
        drop(backend);
        cinct::metrics::register_all();
        let registry = cinct_obs::global();
        print!(
            "{}",
            if format == "json" {
                registry.render_json()
            } else {
                registry.render_prometheus()
            }
        );
        return Ok(());
    }
    match &backend {
        Backend::Mono(idx) => {
            println!("kind:             monolithic (single file)");
            println!("trajectories:     {}", idx.num_trajectories());
            println!("indexed symbols:  {}", idx.text_len());
            println!("network edges:    {}", idx.network_edges());
            println!("sigma:            {}", idx.sigma());
            println!("ET-graph edges:   {}", idx.rml().graph().num_edges());
            println!("max out-degree:   {}", idx.rml().graph().max_out_degree());
            println!(
                "core size:        {} bytes ({:.2} bits/symbol)",
                idx.core_size_in_bytes(),
                idx.bits_per_symbol()
            );
            println!("  labeled BWT:    {} bytes", idx.size_without_et_graph());
            println!("directory extras: {} bytes", idx.directory_size_in_bytes());
            match idx.locate_sampling_rate() {
                Some(r) => println!("locate support:   yes (SA sampling 1/{r})"),
                None => println!("locate support:   no (rebuild with --locate)"),
            }
        }
        Backend::Sharded(s) => {
            println!("kind:             sharded ({} shards)", s.num_shards());
            println!("trajectories:     {}", s.num_trajectories());
            println!("indexed symbols:  {}", s.text_len());
            println!("network edges:    {}", s.network_edges());
            println!("sigma:            {}", s.sigma());
            println!(
                "core size:        {} bytes ({:.2} bits/symbol)",
                s.core_size_in_bytes(),
                s.bits_per_symbol()
            );
            println!(
                "locate support:   {}",
                if s.locate_supported() { "yes" } else { "no" }
            );
            println!("per shard:        id  trajectories  symbols  core bytes");
            for i in 0..s.num_shards() {
                let idx = s.shard_index(i);
                println!(
                    "                  {:>2}  {:>12}  {:>7}  {:>10}",
                    i,
                    idx.num_trajectories(),
                    idx.text_len(),
                    idx.core_size_in_bytes()
                );
            }
        }
    }
    Ok(())
}

fn cmd_count(path: &str, spec: &str, flags: &[String]) -> Result<(), String> {
    let trace = parse_trace_flag(flags)?;
    let backend = load_any(path)?;
    let p = parse_path(spec).map_err(|e| e.to_string())?;
    let path = Path::new(&p);
    if trace {
        let tr = match &backend {
            Backend::Mono(idx) => QueryTrace::monolithic(idx.as_ref(), &p, false),
            Backend::Sharded(s) => QueryTrace::sharded(s, &p, false),
        };
        print!("{}", tr.render());
        return Ok(());
    }
    match &backend {
        Backend::Mono(idx) => match idx.try_range(path).map_err(|e| e.to_string())? {
            Some(r) => println!("{} (suffix range {}..{})", r.len(), r.start, r.end),
            None => println!("0"),
        },
        // A sharded range is virtual (multiplicity only) — fan out once
        // and print the real per-shard suffix ranges instead of fake
        // global endpoints.
        Backend::Sharded(s) => {
            s.validate_path(path).map_err(|e| e.to_string())?;
            let ranges = s.shard_ranges(path);
            let total: usize = ranges
                .iter()
                .map(|r| r.as_ref().map_or(0, |r| r.len()))
                .sum();
            if total == 0 {
                println!("0");
            } else {
                let per: Vec<String> = ranges
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| {
                        r.as_ref()
                            .map(|r| format!("shard {i}: {}..{}", r.start, r.end))
                    })
                    .collect();
                println!("{total} ({})", per.join(", "));
            }
        }
    }
    Ok(())
}

fn cmd_locate(path: &str, spec: &str, flags: &[String]) -> Result<(), String> {
    let trace = parse_trace_flag(flags)?;
    let backend = load_any(path)?;
    let p = parse_path(spec).map_err(|e| e.to_string())?;
    if trace {
        let tr = match &backend {
            Backend::Mono(idx) => QueryTrace::monolithic(idx.as_ref(), &p, true),
            Backend::Sharded(s) => QueryTrace::sharded(s, &p, true),
        };
        print!("{}", tr.render());
        return Ok(());
    }
    let occ = backend
        .as_query()
        .occurrences(Path::new(&p))
        .map_err(|e| e.to_string())?;
    println!("{} occurrence(s)", occ.remaining());
    // Sorted (trajectory, offset) — the order scripts relied on before the
    // streaming API; the iterator itself yields suffix-range order. IDs
    // are corpus-global for both backends.
    for (traj, offset) in occ.collect_sorted() {
        println!("trajectory {traj} @ edge offset {offset}");
    }
    Ok(())
}

fn cmd_get(path: &str, id_spec: &str) -> Result<(), String> {
    let backend = load_any(path)?;
    let id: usize = id_spec.parse().map_err(|_| "bad trajectory id")?;
    if id >= backend.num_trajectories() {
        return Err(format!(
            "trajectory {id} out of range (have {})",
            backend.num_trajectories()
        ));
    }
    println!("{}", format_trajectory(&backend.trajectory(id)));
    Ok(())
}

fn cmd_serve(index_dir: &str, flags: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut addr = String::from("127.0.0.1:8080");
    let mut save_on_drain = true;
    let mut resilient = false;
    let mut replica_of: Option<String> = None;
    let mut follower_id: Option<String> = None;
    let mut i = 0;
    let parse_usize = |flags: &[String], i: usize, what: &str| -> Result<usize, String> {
        flags
            .get(i + 1)
            .ok_or(format!("{what} needs a value"))?
            .parse()
            .map_err(|_| format!("bad {what} value"))
    };
    while i < flags.len() {
        match flags[i].as_str() {
            "--addr" => {
                addr = flags.get(i + 1).ok_or("--addr needs host:port")?.clone();
                i += 2;
            }
            "--workers" => {
                cfg.workers = parse_usize(flags, i, "--workers")?;
                i += 2;
            }
            "--queue" => {
                cfg.queue_depth = parse_usize(flags, i, "--queue")?;
                i += 2;
            }
            "--deadline-ms" => {
                cfg.deadline = std::time::Duration::from_millis(parse_usize(
                    flags,
                    i,
                    "--deadline-ms",
                )? as u64);
                i += 2;
            }
            "--cache" => {
                cfg.cache_capacity = parse_usize(flags, i, "--cache")?;
                i += 2;
            }
            "--fan-out" => {
                cfg.fan_out_threads = parse_usize(flags, i, "--fan-out")?;
                i += 2;
            }
            "--max-body" => {
                cfg.max_body_bytes = parse_usize(flags, i, "--max-body")?;
                i += 2;
            }
            "--no-save" => {
                save_on_drain = false;
                i += 1;
            }
            "--resilient" => {
                resilient = true;
                i += 1;
            }
            "--replica-of" => {
                replica_of = Some(
                    flags
                        .get(i + 1)
                        .ok_or("--replica-of needs host:port")?
                        .clone(),
                );
                i += 2;
            }
            "--follower-id" => {
                follower_id = Some(
                    flags
                        .get(i + 1)
                        .ok_or("--follower-id needs a name")?
                        .clone(),
                );
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let mode = if resilient {
        cinct::OpenMode::Resilient
    } else {
        cinct::OpenMode::Strict
    };
    let sharded = ShardedCinct::open_dir_with(index_dir, mode)
        .map_err(|e| format!("load {index_dir}: {e}"))?;
    for q in sharded.quarantined() {
        eprintln!(
            "warning: quarantined shard {} ({}, {} trajectories): {}",
            q.slot, q.file, q.trajectories, q.reason
        );
    }
    // `--no-save` means "this process never writes the corpus dir" — so
    // no WAL either. Otherwise every acked append survives kill -9.
    let server = if save_on_drain {
        let (wal, replay) = cinct::Wal::open(index_dir, cinct::Durability::Durable)
            .map_err(|e| format!("open WAL in {index_dir}: {e}"))?;
        if !replay.is_empty() {
            eprintln!(
                "replaying {} journaled append batch(es) from the write-ahead log",
                replay.len()
            );
        }
        Server::bind_durable(addr.as_str(), sharded, cfg, wal, replay)
    } else {
        Server::bind(addr.as_str(), sharded, cfg)
    }
    .map_err(|e| format!("bind {addr}: {e}"))?;
    let handle = server.handle();
    let rc = handle.config();
    eprintln!(
        "serving {index_dir} on http://{} — {} workers x {} fan-out threads \
         (host parallelism {}), queue {}, deadline {:?}, cache {} entries",
        handle.addr(),
        rc.workers,
        rc.fan_out_threads,
        rc.host_parallelism,
        rc.queue_depth,
        rc.deadline,
        rc.cache_capacity,
    );
    eprintln!(
        "endpoints: POST /v1/count /v1/locate /v1/occurrences /v1/extract /v1/append; \
         GET /v1/stats /metrics /healthz /repl/snapshot /repl/wal; \
         POST /admin/shutdown /admin/promote"
    );
    // Follower mode: mark the role before traffic, then pull the
    // primary's WAL on a background thread until drain or promotion.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut repl_thread = None;
    if let Some(primary) = &replica_of {
        if !save_on_drain {
            return Err("--replica-of needs the WAL; drop --no-save".into());
        }
        handle.set_replica_of(primary);
        let id = follower_id.unwrap_or_else(|| handle.addr().to_string());
        eprintln!("replicating from {primary} as follower {id:?} (read-only until promoted)");
        let mut replicator = cinct_serve::Replicator::new(
            handle.clone(),
            primary,
            &id,
            std::path::PathBuf::from(index_dir),
        );
        let stop_flag = std::sync::Arc::clone(&stop);
        repl_thread = Some(std::thread::spawn(move || replicator.run(&stop_flag)));
    }
    let run_result = server.run().map_err(|e| e.to_string());
    stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(t) = repl_thread {
        let _ = t.join();
    }
    run_result?;
    let appends = handle.service().epoch();
    let wal_pending = handle.service().stats().wal_pending;
    if save_on_drain && handle.service().degraded() {
        // A degraded save would drop the quarantined shards' data from
        // the manifest for good. Acked appends are safe in the WAL and
        // replay on the next start.
        eprintln!(
            "drained; NOT persisting a degraded corpus ({} quarantined shard(s)); \
             {} journaled append batch(es) remain in the WAL for replay",
            handle.service().quarantined().len(),
            wal_pending,
        );
    } else if save_on_drain && (appends > 0 || wal_pending > 0) {
        handle
            .service()
            .save_dir(std::path::Path::new(index_dir))
            .map_err(|e| format!("persist {index_dir}: {e}"))?;
        eprintln!("drained; persisted {appends} served append batch(es) back to {index_dir}");
    } else {
        eprintln!(
            "drained cleanly ({appends} served append batch(es){})",
            if appends > 0 {
                ", not persisted (--no-save)"
            } else {
                ""
            }
        );
    }
    Ok(())
}
