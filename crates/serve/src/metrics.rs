//! The serving layer's metric catalog, following the workspace idiom
//! (`cinct::metrics`): handle structs resolved once per process into
//! [`cinct_obs::global()`], so `/metrics` on the server and `cinct stats
//! --metrics` on the CLI expose one coherent view spanning index, shard,
//! and serving layers.
//!
//! Names follow the Prometheus convention already used by the core
//! catalog: `_total` counters, `_ns` nanosecond histograms, bare names
//! for gauges; everything here is prefixed `cinct_serve_`.

use cinct_obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

/// Serving metrics: one handle per instrumentation point in the accept
/// loop, worker pool, cache, and append path.
pub struct ServeMetrics {
    /// Connections accepted and handed to a worker.
    pub connections: Arc<Counter>,
    /// Connections refused with 429 because the accept queue was full.
    pub shed: Arc<Counter>,
    /// Requests fully parsed and dispatched.
    pub requests: Arc<Counter>,
    /// Requests answered with a 4xx/5xx status.
    pub errors: Arc<Counter>,
    /// Requests rejected because the per-request deadline had passed.
    pub deadline_exceeded: Arc<Counter>,
    /// Append batches installed through the serving layer.
    pub appends: Arc<Counter>,
    /// Hot-pattern cache hits.
    pub cache_hits: Arc<Counter>,
    /// Hot-pattern cache misses (no entry).
    pub cache_misses: Arc<Counter>,
    /// Cache entries found stale (pre-append epoch) and evicted.
    pub cache_stale: Arc<Counter>,
    /// Cache entries evicted by LRU pressure.
    pub cache_evictions: Arc<Counter>,
    /// End-to-end request latency, parse to serialized response (ns).
    pub request_ns: Arc<Histogram>,
    /// Append-request latency, including index construction (ns).
    pub append_ns: Arc<Histogram>,
    /// Requests currently executing in workers.
    pub inflight: Arc<Gauge>,
    /// Current corpus epoch (appends since the server started).
    pub epoch: Arc<Gauge>,
    /// 1 while the server is draining, else 0.
    pub draining: Arc<Gauge>,
    /// Worker threads in the pool.
    pub workers: Arc<Gauge>,
    /// Per-query fan-out threads the corpus was pinned to at start.
    pub fan_out_threads: Arc<Gauge>,
    /// Appends answered from the idempotency registry (retried writes
    /// deduplicated instead of re-applied).
    pub idem_hits: Arc<Counter>,
    /// 1 while serving a degraded corpus (quarantined shards), else 0.
    pub degraded: Arc<Gauge>,
    /// HTTP client retries (reconnects after IO errors or retryable
    /// statuses). Lives in the serve catalog so server and client
    /// processes share one registry.
    pub client_retries: Arc<Counter>,
    /// Replication role: 0 = primary (accepts writes), 1 = follower
    /// (read-only, pulling a primary's WAL).
    pub repl_role: Arc<Gauge>,
    /// Records behind the primary's tip (follower only; 0 when caught
    /// up or when primary).
    pub repl_lag_records: Arc<Gauge>,
    /// Last sequence number this node has applied/journaled (its WAL
    /// `next_seq`); on a follower, primary tip minus this is the lag.
    pub repl_lag_seq: Arc<Gauge>,
    /// WAL records applied from a replication stream (follower side).
    pub repl_records_applied: Arc<Counter>,
    /// WAL records served to followers over `/repl/wal`.
    pub repl_records_shipped: Arc<Counter>,
    /// Snapshot streams served to bootstrapping followers.
    pub repl_snapshots_served: Arc<Counter>,
    /// Snapshot bootstraps this node performed as a follower.
    pub repl_bootstraps: Arc<Counter>,
    /// Sealed WAL segments reclaimed after every follower passed them.
    pub repl_segments_reclaimed: Arc<Counter>,
    /// Promotions this node performed (follower → primary).
    pub repl_promotions: Arc<Counter>,
}

/// Serving metric handles (resolved once, then lock-free).
pub fn serve() -> &'static ServeMetrics {
    static M: OnceLock<ServeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cinct_obs::global();
        ServeMetrics {
            connections: r.counter(
                "cinct_serve_connections_total",
                "Connections accepted and handed to a worker",
            ),
            shed: r.counter(
                "cinct_serve_shed_total",
                "Connections refused with 429 under accept-queue overload",
            ),
            requests: r.counter(
                "cinct_serve_requests_total",
                "Requests fully parsed and dispatched",
            ),
            errors: r.counter(
                "cinct_serve_errors_total",
                "Requests answered with a 4xx/5xx status",
            ),
            deadline_exceeded: r.counter(
                "cinct_serve_deadline_exceeded_total",
                "Requests rejected past their per-request deadline",
            ),
            appends: r.counter(
                "cinct_serve_appends_total",
                "Append batches installed through the serving layer",
            ),
            cache_hits: r.counter("cinct_serve_cache_hits_total", "Hot-pattern cache hits"),
            cache_misses: r.counter("cinct_serve_cache_misses_total", "Hot-pattern cache misses"),
            cache_stale: r.counter(
                "cinct_serve_cache_stale_total",
                "Cache entries found stale after an append and evicted",
            ),
            cache_evictions: r.counter(
                "cinct_serve_cache_evictions_total",
                "Cache entries evicted by LRU pressure",
            ),
            request_ns: r.histogram("cinct_serve_request_ns", "End-to-end request latency (ns)"),
            append_ns: r.histogram(
                "cinct_serve_append_ns",
                "Append-request latency including index construction (ns)",
            ),
            inflight: r.gauge(
                "cinct_serve_inflight",
                "Requests currently executing in workers",
            ),
            epoch: r.gauge(
                "cinct_serve_epoch",
                "Corpus epoch: appends installed since server start",
            ),
            draining: r.gauge("cinct_serve_draining", "1 while draining, else 0"),
            workers: r.gauge("cinct_serve_workers", "Worker threads in the pool"),
            fan_out_threads: r.gauge(
                "cinct_serve_fan_out_threads",
                "Per-query shard fan-out threads pinned at server start",
            ),
            idem_hits: r.counter(
                "cinct_serve_idempotent_hits_total",
                "Appends deduplicated by idempotency key",
            ),
            degraded: r.gauge(
                "cinct_serve_degraded",
                "1 while serving a degraded (quarantined-shard) corpus, else 0",
            ),
            client_retries: r.counter(
                "cinct_client_retries_total",
                "HTTP client retries after IO errors or retryable statuses",
            ),
            repl_role: r.gauge(
                "cinct_repl_role",
                "Replication role: 0 = primary, 1 = follower",
            ),
            repl_lag_records: r.gauge(
                "cinct_repl_lag_records",
                "Records behind the primary's replication tip",
            ),
            repl_lag_seq: r.gauge(
                "cinct_repl_lag_seq",
                "Last sequence number applied/journaled locally",
            ),
            repl_records_applied: r.counter(
                "cinct_repl_records_applied_total",
                "WAL records applied from a replication stream",
            ),
            repl_records_shipped: r.counter(
                "cinct_repl_records_shipped_total",
                "WAL records served to followers over /repl/wal",
            ),
            repl_snapshots_served: r.counter(
                "cinct_repl_snapshots_served_total",
                "Snapshot streams served to bootstrapping followers",
            ),
            repl_bootstraps: r.counter(
                "cinct_repl_bootstraps_total",
                "Snapshot bootstraps performed as a follower",
            ),
            repl_segments_reclaimed: r.counter(
                "cinct_repl_segments_reclaimed_total",
                "Sealed WAL segments reclaimed after followers passed them",
            ),
            repl_promotions: r.counter(
                "cinct_repl_promotions_total",
                "Promotions performed (follower to primary)",
            ),
        }
    })
}

/// Resolve the full workspace catalog — core engine/shard/store/build
/// handles plus the serving handles above — so `/metrics` exposes idle
/// metrics as zeros instead of omitting them.
pub fn register_all() {
    cinct::metrics::register_all();
    let _ = serve();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_and_samples() {
        register_all();
        let before = serve().requests.get();
        serve().requests.inc();
        assert_eq!(serve().requests.get(), before + 1);
        serve().inflight.inc();
        serve().inflight.dec();
        assert_eq!(serve().inflight.get(), 0);
        let text = cinct_obs::global().render_prometheus();
        assert!(text.contains("cinct_serve_requests_total"), "{text}");
        assert!(text.contains("cinct_serve_cache_hits_total"));
        // Core catalog rides along.
        assert!(text.contains("cinct_queries_total"));
    }
}
