//! Hot-pattern result cache: a sharded, epoch-stamped LRU.
//!
//! Fleet-analytics traffic is heavily skewed — a handful of corridors
//! account for most count/locate queries — so repeated backward searches
//! over the same pattern are pure waste. The cache memoizes results
//! keyed by `(operation, path)`, sharded across independently locked
//! LRU maps so concurrent workers rarely contend on one mutex.
//!
//! **Staleness discipline.** Every entry is stamped with the corpus
//! *epoch*, an [`AtomicU64`] that advances exactly once per installed
//! append batch — and only while the appender holds the corpus write
//! lock (see `CorpusService::append`), so readers holding the read lock
//! always observe a (corpus, epoch) pair that is mutually consistent.
//! A lookup whose entry carries an older epoch is a miss: the entry is
//! evicted on the spot and the caller recomputes against the grown
//! corpus. Cached results are therefore never stale — an append
//! invalidates the whole cache by bumping one integer, O(1), no sweep.
//!
//! The LRU itself is an index-linked list over a slab (`Vec<Node>` +
//! free list): no unsafe, no per-entry allocation churn, O(1)
//! get/insert/evict while holding the shard mutex.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which query operation a cached value answers. Count and occurrence
/// results are distinct entries: a count is one word, an occurrence
/// list can be thousands, and callers that only count must not pay to
/// materialize positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOp {
    /// `count` — number of matching trajectories.
    Count,
    /// `occurrences`/`locate` — the full sorted `(trajectory, offset)`
    /// list (shared via `Arc`; responses slice it per-request).
    Occurrences,
}

/// A memoized query result.
#[derive(Debug, Clone)]
pub enum CachedValue {
    /// A `count` result.
    Count(usize),
    /// A full sorted occurrence list, shared between the cache and any
    /// in-flight responses without copying.
    Occurrences(Arc<Vec<(usize, usize)>>),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    op: CacheOp,
    path: Box<[u32]>,
}

/// What a [`QueryCache::get`] observed — the caller translates these
/// into hit/miss/stale metrics.
#[derive(Debug)]
pub enum Lookup {
    /// Fresh entry for the current epoch.
    Hit(CachedValue),
    /// No entry.
    Miss,
    /// An entry existed but predated the last append; it has been
    /// evicted.
    Stale,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: Key,
    value: CachedValue,
    epoch: u64,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct LruShard {
    map: HashMap<Key, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity.min(1024)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn remove(&mut self, i: usize) {
        self.unlink(i);
        self.map.remove(&self.nodes[i].key);
        self.free.push(i);
    }

    /// Evict the least-recently-used entry; returns whether one existed.
    fn evict_tail(&mut self) -> bool {
        let t = self.tail;
        if t == NIL {
            return false;
        }
        self.remove(t);
        true
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The sharded, epoch-stamped LRU. See the module docs for semantics.
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<LruShard>>,
    epoch: AtomicU64,
    capacity: usize,
}

impl QueryCache {
    /// A cache holding up to `capacity` entries spread over `shards`
    /// independently locked LRUs. `capacity == 0` disables caching
    /// entirely (every lookup misses, inserts are dropped) — the epoch
    /// still advances so `current_epoch` stays meaningful for stats.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        QueryCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            epoch: AtomicU64::new(0),
            capacity,
        }
    }

    /// Total entry capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current corpus epoch. `Acquire` pairs with the `Release` in
    /// [`QueryCache::advance_epoch`]: a thread that observes epoch `e`
    /// also observes every corpus write that happened before `e` was
    /// published (the corpus `RwLock` provides the heavyweight ordering;
    /// the fence keeps the bare stat reads coherent too).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the epoch, invalidating every cached entry at once.
    /// **Call only while holding the corpus write lock**, immediately
    /// after installing an append, so readers under the read lock never
    /// see a new corpus with an old epoch or vice versa.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }

    fn shard_for(&self, key: &Key) -> &Mutex<LruShard> {
        // FNV-1a over the key; independent of HashMap's SipHash so one
        // bad distribution cannot align with the other.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(key.op as u8);
        for &e in key.path.iter() {
            for b in e.to_le_bytes() {
                eat(b);
            }
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up `(op, path)`. A stale entry (older epoch) is evicted and
    /// reported as [`Lookup::Stale`] so the caller can count it.
    pub fn get(&self, op: CacheOp, path: &[u32]) -> Lookup {
        if self.capacity == 0 {
            return Lookup::Miss;
        }
        let key = Key {
            op,
            path: path.into(),
        };
        let epoch = self.current_epoch();
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(&i) = shard.map.get(&key) else {
            return Lookup::Miss;
        };
        if shard.nodes[i].epoch != epoch {
            shard.remove(i);
            return Lookup::Stale;
        }
        // Touch: move to MRU position.
        shard.unlink(i);
        shard.push_front(i);
        Lookup::Hit(shard.nodes[i].value.clone())
    }

    /// Insert a result computed against epoch `epoch` (read under the
    /// corpus read lock). If an append has advanced the epoch since,
    /// the value describes a corpus that no longer exists and is
    /// silently dropped. Returns whether an LRU eviction occurred.
    pub fn insert(&self, op: CacheOp, path: &[u32], value: CachedValue, epoch: u64) -> bool {
        if self.capacity == 0 || epoch != self.current_epoch() {
            return false;
        }
        let key = Key {
            op,
            path: path.into(),
        };
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: an append may have landed between the
        // argument check and acquiring the shard.
        if epoch != self.current_epoch() {
            return false;
        }
        if let Some(&i) = shard.map.get(&key) {
            shard.nodes[i].value = value;
            shard.nodes[i].epoch = epoch;
            shard.unlink(i);
            shard.push_front(i);
            return false;
        }
        let mut evicted = false;
        if shard.len() >= shard.capacity {
            if !shard.evict_tail() {
                return false; // capacity-0 shard (unreachable given the guard)
            }
            evicted = true;
        }
        let node = Node {
            key: key.clone(),
            value,
            epoch,
            prev: NIL,
            next: NIL,
        };
        let i = match shard.free.pop() {
            Some(i) => {
                shard.nodes[i] = node;
                i
            }
            None => {
                shard.nodes.push(node);
                shard.nodes.len() - 1
            }
        };
        shard.map.insert(key, i);
        shard.push_front(i);
        evicted
    }

    /// Number of live entries across all shards (stats endpoint).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(n: usize) -> CachedValue {
        CachedValue::Count(n)
    }

    fn get_count(c: &QueryCache, path: &[u32]) -> Lookup {
        c.get(CacheOp::Count, path)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = QueryCache::new(16, 2);
        assert!(matches!(get_count(&c, &[1, 2]), Lookup::Miss));
        c.insert(CacheOp::Count, &[1, 2], count(7), c.current_epoch());
        match get_count(&c, &[1, 2]) {
            Lookup::Hit(CachedValue::Count(7)) => {}
            other => panic!("{other:?}"),
        }
        // Different op, same path: distinct entry.
        assert!(matches!(c.get(CacheOp::Occurrences, &[1, 2]), Lookup::Miss));
    }

    #[test]
    fn epoch_advance_invalidates_everything() {
        let c = QueryCache::new(16, 4);
        let e = c.current_epoch();
        c.insert(CacheOp::Count, &[1], count(1), e);
        c.insert(CacheOp::Count, &[2], count(2), e);
        assert_eq!(c.advance_epoch(), e + 1);
        assert!(matches!(get_count(&c, &[1]), Lookup::Stale));
        assert!(matches!(get_count(&c, &[1]), Lookup::Miss)); // evicted
        assert!(matches!(get_count(&c, &[2]), Lookup::Stale));
        // Re-inserting under the new epoch works.
        c.insert(CacheOp::Count, &[1], count(3), c.current_epoch());
        assert!(matches!(get_count(&c, &[1]), Lookup::Hit(_)));
    }

    #[test]
    fn insert_with_outdated_epoch_is_dropped() {
        let c = QueryCache::new(16, 1);
        let old = c.current_epoch();
        c.advance_epoch();
        c.insert(CacheOp::Count, &[9], count(9), old);
        assert!(matches!(get_count(&c, &[9]), Lookup::Miss));
    }

    #[test]
    fn lru_evicts_oldest_and_touch_refreshes() {
        let c = QueryCache::new(2, 1); // one shard, two slots
        let e = c.current_epoch();
        c.insert(CacheOp::Count, &[1], count(1), e);
        c.insert(CacheOp::Count, &[2], count(2), e);
        // Touch [1] so [2] becomes LRU.
        assert!(matches!(get_count(&c, &[1]), Lookup::Hit(_)));
        let evicted = c.insert(CacheOp::Count, &[3], count(3), e);
        assert!(evicted);
        assert!(matches!(get_count(&c, &[2]), Lookup::Miss));
        assert!(matches!(get_count(&c, &[1]), Lookup::Hit(_)));
        assert!(matches!(get_count(&c, &[3]), Lookup::Hit(_)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let c = QueryCache::new(0, 4);
        c.insert(CacheOp::Count, &[1], count(1), c.current_epoch());
        assert!(matches!(get_count(&c, &[1]), Lookup::Miss));
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        c.advance_epoch(); // still meaningful for stats
        assert_eq!(c.current_epoch(), 1);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let c = QueryCache::new(2, 1);
        let e = c.current_epoch();
        for round in 0..100u32 {
            c.insert(CacheOp::Count, &[round], count(round as usize), e);
        }
        // Only capacity nodes + at most capacity freed slots ever exist.
        let shard = c.shards[0].lock().unwrap();
        assert!(shard.nodes.len() <= 4, "slab grew to {}", shard.nodes.len());
        assert_eq!(shard.len(), 2);
    }

    #[test]
    fn concurrent_readers_and_epoch_bumps_never_see_stale_hits() {
        // After an appender bumps the epoch, no reader may observe a
        // hit carrying a pre-bump value for the current epoch.
        use std::sync::atomic::{AtomicBool, Ordering as O};
        let c = QueryCache::new(64, 4);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while !stop.load(O::Relaxed) {
                        let e = c.current_epoch();
                        c.insert(CacheOp::Count, &[1], count(e as usize), e);
                        if let Lookup::Hit(CachedValue::Count(n)) = c.get(CacheOp::Count, &[1]) {
                            // The value was stamped with the epoch it was
                            // computed at; a hit must never deliver a value
                            // from an epoch older than the one the entry
                            // validated against.
                            assert!(n <= c.current_epoch() as usize);
                        }
                    }
                });
            }
            for _ in 0..500 {
                c.advance_epoch();
                std::hint::spin_loop();
            }
            stop.store(true, O::Relaxed);
        });
    }
}
