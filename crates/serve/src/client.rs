//! A minimal blocking HTTP/1.1 client for the serve protocol: one
//! persistent keep-alive connection, `Content-Length` bodies only —
//! the exact subset the server speaks. Shared by the integration
//! tests, the `servepath` bench, the CI smoke client, and examples.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;

/// A persistent connection to a serve endpoint.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect (with a 5s connect/read timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Issue `GET target`; returns `(status, body)`.
    pub fn get(&mut self, target: &str) -> io::Result<(u16, String)> {
        self.request("GET", target, None)
    }

    /// Issue `POST target` with a JSON string body.
    pub fn post(&mut self, target: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", target, Some(body))
    }

    /// `POST` a [`Json`] body, parse the JSON response.
    pub fn post_json(&mut self, target: &str, body: &Json) -> io::Result<(u16, Json)> {
        let (status, text) = self.post(target, &body.render())?;
        let parsed = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {text}")))?;
        Ok((status, parsed))
    }

    /// One request/response cycle on the persistent connection.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        {
            let stream = self.reader.get_mut();
            match body {
                Some(b) => write!(
                    stream,
                    "{method} {target} HTTP/1.1\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\n\r\n{b}",
                    b.len()
                )?,
                None => write!(stream, "{method} {target} HTTP/1.1\r\n\r\n")?,
            }
            stream.flush()?;
        }
        self.read_response()
    }

    /// Send raw bytes down the connection (tests exercising truncated
    /// or malformed requests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(bytes)?;
        stream.flush()
    }

    /// Read one response off the connection.
    pub fn read_response(&mut self) -> io::Result<(u16, String)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let header = header.trim_end_matches(['\r', '\n']);
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|text| (status, text))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }
}
