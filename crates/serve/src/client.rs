//! A minimal blocking HTTP/1.1 client for the serve protocol: one
//! persistent keep-alive connection, `Content-Length` bodies only —
//! the exact subset the server speaks. Shared by the integration
//! tests, the `servepath` bench, the CI smoke client, and examples.
//!
//! [`Client::connect`] keeps the historical single-attempt semantics.
//! [`Client::connect_with`] installs a [`RetryPolicy`]: a per-request
//! timeout, bounded reconnect-and-retry on IO failures, and retry on
//! `429`/`503` honoring `Retry-After` — with jittered exponential
//! backoff between attempts. Retries only fire for requests the caller
//! marks idempotent; [`Client::append_idempotent`] makes appends safe
//! to mark by attaching an `Idempotency-Key` the server deduplicates.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics;

/// Retry/timeout knobs for [`Client::connect_with`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = no retry).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling (also caps an honored `Retry-After`).
    pub max_backoff: Duration,
    /// Connect and per-read timeout for every attempt.
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            timeout: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// Single-attempt policy: the pre-retry client behavior.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// A persistent connection to a serve endpoint.
pub struct Client {
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
    policy: RetryPolicy,
    /// A request that died mid-flight leaves the connection in an
    /// unknown framing state; the next attempt must reconnect.
    dirty: bool,
    /// Backoff-jitter state (xorshift64, seeded from the process's
    /// hash randomness — no clock or RNG dependency).
    jitter: u64,
}

impl Client {
    /// Connect (with a 5s connect/read timeout). No retries: exactly
    /// one attempt per request, IO errors surface to the caller.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::connect_with(addr, RetryPolicy::none())
    }

    /// Connect under a [`RetryPolicy`]. The connect itself gets the
    /// policy's attempt budget and backoff, like every later request.
    pub fn connect_with(addr: impl ToSocketAddrs, policy: RetryPolicy) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let mut jitter = RandomState::new().build_hasher().finish() | 1;
        let mut attempt = 0u32;
        let reader = loop {
            attempt += 1;
            match Self::dial(&addr, policy.timeout) {
                Ok(r) => break r,
                Err(e) => {
                    if attempt >= policy.attempts.max(1) {
                        return Err(e);
                    }
                    metrics::serve().client_retries.inc();
                    std::thread::sleep(backoff_for(&policy, attempt, None, &mut jitter));
                }
            }
        };
        Ok(Client {
            reader,
            addr,
            policy,
            dirty: false,
            jitter,
        })
    }

    fn dial(addr: &SocketAddr, timeout: Duration) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    /// Issue `GET target`; returns `(status, body)`. GETs are
    /// idempotent, so the retry policy applies.
    pub fn get(&mut self, target: &str) -> io::Result<(u16, String)> {
        self.request_opts("GET", target, None, None, true)
    }

    /// Issue `GET target` for a binary body (`/repl/snapshot` streams
    /// raw bytes, not UTF-8). One attempt, no retries — the caller (the
    /// replicator's bootstrap loop) owns the retry decision.
    pub fn get_bytes(&mut self, target: &str) -> io::Result<(u16, Vec<u8>)> {
        if self.dirty {
            self.reader = Self::dial(&self.addr, self.policy.timeout)?;
        }
        self.dirty = true;
        {
            let stream = self.reader.get_mut();
            write!(stream, "GET {target} HTTP/1.1\r\n\r\n")?;
            stream.flush()?;
        }
        let (status, body, _) = self.read_response_bytes()?;
        self.dirty = false;
        Ok((status, body))
    }

    /// Issue `POST target` with a JSON string body. Never retried — a
    /// bare POST is not idempotent; see [`Client::append_idempotent`]
    /// for the retry-safe write path.
    pub fn post(&mut self, target: &str, body: &str) -> io::Result<(u16, String)> {
        self.request_opts("POST", target, Some(body), None, false)
    }

    /// `POST` a [`Json`] body, parse the JSON response.
    pub fn post_json(&mut self, target: &str, body: &Json) -> io::Result<(u16, Json)> {
        let (status, text) = self.post(target, &body.render())?;
        let parsed = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {text}")))?;
        Ok((status, parsed))
    }

    /// `POST /v1/append` carrying an `Idempotency-Key`: the server
    /// applies the batch exactly once per key, which is what makes
    /// retrying a write safe — a retry whose original attempt actually
    /// landed is acked with the original assignment, `deduplicated:
    /// true`, instead of appending twice.
    pub fn append_idempotent(&mut self, body: &Json, key: &str) -> io::Result<(u16, Json)> {
        let rendered = body.render();
        let (status, text) =
            self.request_opts("POST", "/v1/append", Some(&rendered), Some(key), true)?;
        let parsed = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {text}")))?;
        Ok((status, parsed))
    }

    /// One request/response cycle on the persistent connection, no
    /// retries (the historical behavior, kept for callers that do
    /// their own error handling).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        self.request_opts(method, target, body, None, false)
    }

    /// The full request path: attempt, classify, back off, retry.
    ///
    /// Retries fire only when `idempotent` — on IO errors (connection
    /// reset, timeout; the next attempt reconnects) and on `429`/`503`
    /// (honoring `Retry-After` up to the backoff ceiling). Everything
    /// else, including 4xx and 5xx like `corrupt_index`, returns
    /// immediately: those answers won't improve by asking again.
    fn request_opts(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
        idempotency_key: Option<&str>,
        idempotent: bool,
    ) -> io::Result<(u16, String)> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = self.try_request(method, target, body, idempotency_key);
            let (retryable, retry_after) = match &outcome {
                Err(_) => (true, None),
                Ok((429 | 503, _, retry_after)) => (true, *retry_after),
                Ok(_) => (false, None),
            };
            if !retryable || !idempotent || attempt >= self.policy.attempts.max(1) {
                return outcome.map(|(status, text, _)| (status, text));
            }
            metrics::serve().client_retries.inc();
            std::thread::sleep(backoff_for(
                &self.policy,
                attempt,
                retry_after,
                &mut self.jitter,
            ));
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
        idempotency_key: Option<&str>,
    ) -> io::Result<(u16, String, Option<u64>)> {
        if self.dirty {
            self.reader = Self::dial(&self.addr, self.policy.timeout)?;
        }
        // Dirty until a complete response comes back: a failure
        // anywhere in between leaves unknown bytes in flight, so the
        // next attempt starts from a fresh connection.
        self.dirty = true;
        {
            let stream = self.reader.get_mut();
            let key_header = match idempotency_key {
                Some(k) => format!("Idempotency-Key: {k}\r\n"),
                None => String::new(),
            };
            match body {
                Some(b) => write!(
                    stream,
                    "{method} {target} HTTP/1.1\r\nContent-Type: application/json\r\n\
                     {key_header}Content-Length: {}\r\n\r\n{b}",
                    b.len()
                )?,
                None => write!(stream, "{method} {target} HTTP/1.1\r\n{key_header}\r\n")?,
            }
            stream.flush()?;
        }
        let resp = self.read_response_full()?;
        self.dirty = false;
        Ok(resp)
    }

    /// Send raw bytes down the connection (tests exercising truncated
    /// or malformed requests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(bytes)?;
        stream.flush()
    }

    /// Read one response off the connection.
    pub fn read_response(&mut self) -> io::Result<(u16, String)> {
        self.read_response_full()
            .map(|(status, text, _)| (status, text))
    }

    /// [`Client::read_response`] plus the parsed `Retry-After` header
    /// (seconds), which the retry loop honors on 429/503.
    fn read_response_full(&mut self) -> io::Result<(u16, String, Option<u64>)> {
        let (status, body, retry_after) = self.read_response_bytes()?;
        String::from_utf8(body)
            .map(|text| (status, text, retry_after))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }

    /// Read one response off the connection as raw bytes.
    fn read_response_bytes(&mut self) -> io::Result<(u16, Vec<u8>, Option<u64>)> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let header = header.trim_end_matches(['\r', '\n']);
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = value.trim().parse::<u64>().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, body, retry_after))
    }
}

/// Consecutive failures that open an endpoint's circuit breaker.
const CIRCUIT_THRESHOLD: u32 = 3;

/// How long an open breaker keeps an endpoint out of rotation before
/// one trial request is let through again (half-open).
const CIRCUIT_COOLDOWN: Duration = Duration::from_secs(1);

/// One endpoint of a [`FailoverClient`]: a lazily-dialed connection
/// plus its circuit-breaker state.
struct Endpoint {
    addr: String,
    client: Option<Client>,
    /// Consecutive failures; the breaker opens at [`CIRCUIT_THRESHOLD`].
    failures: u32,
    /// While in the future, the breaker is open and rotation skips
    /// this endpoint.
    open_until: Option<Instant>,
}

impl Endpoint {
    fn new(addr: &str) -> Endpoint {
        Endpoint {
            addr: addr.to_string(),
            client: None,
            failures: 0,
            open_until: None,
        }
    }

    fn available(&self) -> bool {
        match self.open_until {
            Some(until) => Instant::now() >= until,
            None => true,
        }
    }
}

/// A client over a **replicated deployment**: one primary plus any
/// number of followers.
///
/// * **Reads** round-robin across every endpoint — followers serve
///   queries — skipping endpoints whose circuit breaker is open. A
///   failed endpoint takes [`CIRCUIT_THRESHOLD`] consecutive errors,
///   then sits out [`CIRCUIT_COOLDOWN`] before one half-open trial.
/// * **Writes** go to the current primary hint. A `421 Misdirected
///   Request` answer carries the real primary's location; the client
///   re-routes and retries **at most once** per call — two 421s in a
///   row (no primary anywhere) surface to the caller. A dead primary
///   rotates the hint to the next endpoint, which after a promotion is
///   exactly where writes should land.
///
/// Each underlying connection runs single-attempt ([`RetryPolicy`]
/// `attempts: 1`): failover to the *next endpoint* is this client's
/// retry, so per-connection retry loops would only multiply latency.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    policy: RetryPolicy,
    /// Round-robin cursor for reads.
    cursor: usize,
    /// Index of the endpoint writes currently target.
    primary: usize,
}

impl FailoverClient {
    /// Assemble a client over `endpoints` (`host:port` each; the first
    /// is the initial primary hint). No connection is made until the
    /// first request. Errors on an empty list.
    pub fn new(endpoints: &[&str], policy: RetryPolicy) -> io::Result<FailoverClient> {
        if endpoints.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "FailoverClient needs at least one endpoint",
            ));
        }
        Ok(FailoverClient {
            endpoints: endpoints.iter().map(|a| Endpoint::new(a)).collect(),
            policy,
            cursor: 0,
            primary: 0,
        })
    }

    /// The endpoint index writes currently target.
    pub fn primary_index(&self) -> usize {
        self.primary
    }

    fn dial(&mut self, i: usize) -> io::Result<&mut Client> {
        let single = RetryPolicy {
            attempts: 1,
            ..self.policy.clone()
        };
        let ep = &mut self.endpoints[i];
        if ep.client.is_none() {
            ep.client = Some(Client::connect_with(&*ep.addr, single)?);
        }
        Ok(ep.client.as_mut().expect("just connected"))
    }

    fn mark_ok(&mut self, i: usize) {
        let ep = &mut self.endpoints[i];
        ep.failures = 0;
        ep.open_until = None;
    }

    fn mark_failed(&mut self, i: usize) {
        let ep = &mut self.endpoints[i];
        ep.client = None;
        ep.failures += 1;
        if ep.failures >= CIRCUIT_THRESHOLD {
            ep.open_until = Some(Instant::now() + CIRCUIT_COOLDOWN);
        }
    }

    /// Index of `addr` in the endpoint list, adding it if a 421
    /// redirect names a primary this client wasn't configured with.
    fn endpoint_index(&mut self, addr: &str) -> usize {
        match self.endpoints.iter().position(|e| e.addr == addr) {
            Some(i) => i,
            None => {
                self.endpoints.push(Endpoint::new(addr));
                self.endpoints.len() - 1
            }
        }
    }

    /// `GET target`, load-balanced across live endpoints. Tries each
    /// closed-breaker endpoint once; if every breaker is open, tries
    /// them all anyway (half-open on demand) rather than failing a
    /// read the deployment could still serve.
    pub fn get(&mut self, target: &str) -> io::Result<(u16, String)> {
        let n = self.endpoints.len();
        let any_available = self.endpoints.iter().any(Endpoint::available);
        let mut last_err: Option<io::Error> = None;
        for k in 0..n {
            let i = (self.cursor + k) % n;
            if any_available && !self.endpoints[i].available() {
                continue;
            }
            match self.dial(i).and_then(|c| c.get(target)) {
                Ok(resp) => {
                    self.mark_ok(i);
                    self.cursor = (i + 1) % n;
                    return Ok(resp);
                }
                Err(e) => {
                    self.mark_failed(i);
                    metrics::serve().client_retries.inc();
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no endpoint answered")))
    }

    /// `POST /v1/append` with an `Idempotency-Key`, routed to the
    /// primary. Follows one 421 redirect; rotates the hint past dead
    /// endpoints (trying each at most once) so a promoted follower is
    /// found without operator help.
    pub fn append_idempotent(&mut self, body: &Json, key: &str) -> io::Result<(u16, Json)> {
        let n = self.endpoints.len();
        let mut redirects = 0u32;
        let mut attempts = 0usize;
        let mut last_err: Option<io::Error> = None;
        while attempts <= n {
            let i = self.primary;
            match self.dial(i).and_then(|c| c.append_idempotent(body, key)) {
                Ok((421, resp)) => {
                    // The endpoint is alive — just not the primary.
                    self.mark_ok(i);
                    let named = resp.get("primary").and_then(Json::as_str).map(String::from);
                    match named {
                        Some(addr) if redirects == 0 => {
                            redirects = 1;
                            self.primary = self.endpoint_index(&addr);
                            attempts += 1;
                        }
                        // Second 421, or a 421 that names no primary:
                        // the caller decides, this client won't loop.
                        _ => return Ok((421, resp)),
                    }
                }
                Ok(resp) => {
                    self.mark_ok(i);
                    return Ok(resp);
                }
                Err(e) => {
                    self.mark_failed(i);
                    metrics::serve().client_retries.inc();
                    self.primary = (i + 1) % self.endpoints.len();
                    last_err = Some(e);
                    attempts += 1;
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no endpoint accepted the write")))
    }
}

/// Backoff before retry `attempt` (1-based): exponential from the
/// policy base, capped at the ceiling, stretched to an honored
/// `Retry-After`, then jittered into `[wait/2, wait]` so a thundering
/// herd of clients doesn't re-arrive in lockstep.
fn backoff_for(
    policy: &RetryPolicy,
    attempt: u32,
    retry_after_secs: Option<u64>,
    jitter: &mut u64,
) -> Duration {
    let exp = policy
        .base_backoff
        .saturating_mul(1u32 << (attempt - 1).min(16));
    let mut wait = exp.min(policy.max_backoff);
    if let Some(secs) = retry_after_secs {
        wait = wait.max(Duration::from_secs(secs).min(policy.max_backoff));
    }
    *jitter ^= *jitter << 13;
    *jitter ^= *jitter >> 7;
    *jitter ^= *jitter << 17;
    let nanos = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
    Duration::from_nanos(nanos / 2 + *jitter % (nanos / 2 + 1))
}
