//! A hand-rolled HTTP/1.1 subset: exactly what a JSON query protocol
//! needs, and nothing the container would need a registry for.
//!
//! Supported: request line + headers with RFC 7230 obs-fold continuation
//! lines, `Content-Length`-delimited bodies, keep-alive and pipelining
//! (requests are read back-to-back off one [`BufRead`]), HTTP/1.0 and
//! 1.1 `Connection` semantics. Deliberately unsupported, as typed
//! errors rather than silent misbehavior: `Transfer-Encoding: chunked`
//! (501), heads over [`Limits::max_head_bytes`] (431), bodies over
//! [`Limits::max_body_bytes`] (413), truncated messages (400).
//!
//! Timeouts are cooperative: the caller arms a socket read timeout (the
//! server's idle tick) and [`read_request`] translates a timeout with
//! **no bytes buffered** into [`NextRequest::Idle`] — the worker's cue to
//! check the drain flag and come back — while a timeout **mid-request**
//! is a dead client ([`HttpError::Timeout`], 408).

use std::io::{self, BufRead, Write};

use crate::json::{obj, Json};

/// Parser limits; defaults come from [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the request line + headers, in raw bytes (431 beyond).
    pub max_head_bytes: usize,
    /// Cap on `Content-Length` (413 beyond).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1 << 20,
        }
    }
}

/// A parsed request. Header names are lowercased at parse time; values
/// keep their bytes (leading/trailing whitespace trimmed, obs-fold
/// continuations joined with a single space).
#[derive(Debug)]
pub struct Request {
    /// Request method, verbatim (methods are case-sensitive).
    pub method: String,
    /// Request target, e.g. `/v1/count`.
    pub target: String,
    /// Parsed headers, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-delimited body (empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response,
    /// from the HTTP version + `Connection` header.
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of one [`read_request`] call on a keep-alive connection.
#[derive(Debug)]
pub enum NextRequest {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The idle tick elapsed with no bytes received; no request has
    /// started. Check for drain and call again.
    Idle,
    /// A complete request.
    Request(Request),
}

/// Typed protocol errors; each maps to a status via [`HttpError::status`]
/// and to the wire via [`HttpError::into_response`].
#[derive(Debug)]
pub enum HttpError {
    /// Malformed or truncated message (400).
    BadRequest(String),
    /// The peer stalled mid-request for a full idle tick (408).
    Timeout,
    /// Declared body exceeds [`Limits::max_body_bytes`] (413).
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// Head exceeds [`Limits::max_head_bytes`] (431).
    HeaderTooLarge,
    /// A feature this parser deliberately omits (501).
    NotImplemented(&'static str),
    /// Transport-level failure; the connection is torn down without a
    /// response.
    Io(io::Error),
}

impl HttpError {
    /// The HTTP status this error responds with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::Timeout => 408,
            HttpError::PayloadTooLarge { .. } => 413,
            HttpError::HeaderTooLarge => 431,
            HttpError::NotImplemented(_) => 501,
            HttpError::Io(_) => 500,
        }
    }

    /// Stable machine-readable discriminant for error bodies and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::BadRequest(_) => "bad_request",
            HttpError::Timeout => "request_timeout",
            HttpError::PayloadTooLarge { .. } => "payload_too_large",
            HttpError::HeaderTooLarge => "headers_too_large",
            HttpError::NotImplemented(_) => "not_implemented",
            HttpError::Io(_) => "io",
        }
    }

    /// Render as a closing JSON error response.
    pub fn into_response(self) -> Response {
        let message = match &self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::Timeout => "peer stalled mid-request".into(),
            HttpError::PayloadTooLarge { declared, limit } => {
                format!("declared body of {declared} bytes exceeds the {limit}-byte cap")
            }
            HttpError::HeaderTooLarge => "request head exceeds the configured cap".into(),
            HttpError::NotImplemented(what) => format!("{what} is not supported"),
            HttpError::Io(e) => e.to_string(),
        };
        let mut resp = Response::error(self.status(), self.kind(), &message);
        resp.keep_alive = false; // parse state is unknowable; always close
        resp
    }
}

/// A response ready for [`Response::write_to`].
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to keep the connection open (the worker ANDs this with
    /// the request's wish and the drain flag).
    pub keep_alive: bool,
    /// Emit a `Retry-After` header (load-shed and deadline responses).
    pub retry_after_secs: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.render().into_bytes(),
            keep_alive: true,
            retry_after_secs: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            keep_alive: true,
            retry_after_secs: None,
        }
    }

    /// The protocol's uniform error body:
    /// `{"error":{"kind":…,"message":…,"status":…}}`.
    pub fn error(status: u16, kind: &str, message: &str) -> Response {
        let body = obj(&[(
            "error",
            obj(&[
                ("kind", kind.into()),
                ("message", message.into()),
                ("status", usize::from(status).into()),
            ]),
        )]);
        Response::json(status, &body)
    }

    /// Serialize onto the wire. `keep_alive` here is the final decision
    /// (already ANDed with drain state by the caller).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if self.keep_alive {
                "keep-alive"
            } else {
                "close"
            },
        )?;
        if let Some(secs) = self.retry_after_secs {
            write!(w, "Retry-After: {secs}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn trim_ascii(s: &str) -> &str {
    s.trim_matches(|c| c == ' ' || c == '\t')
}

/// Read one request off a (possibly pipelined) connection. See the
/// module docs for the timeout contract; `Ok(NextRequest::Idle)` only
/// occurs when the underlying reader has a read timeout armed.
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<NextRequest, HttpError> {
    // -- head: raw bytes up to and including the blank line ------------
    let mut head: Vec<u8> = Vec::new();
    let mut line_start = 0usize;
    let mut started = false; // a non-blank line has been seen
    loop {
        match r.read_until(b'\n', &mut head) {
            Ok(0) => {
                return if head.is_empty() {
                    Ok(NextRequest::Closed)
                } else {
                    Err(HttpError::BadRequest("truncated request head".into()))
                };
            }
            Ok(_) => {
                if head.len() > limits.max_head_bytes {
                    return Err(HttpError::HeaderTooLarge);
                }
                if head.last() != Some(&b'\n') {
                    // EOF mid-line.
                    return Err(HttpError::BadRequest("truncated request head".into()));
                }
                let line = trim_crlf(&head[line_start..]);
                if line.is_empty() {
                    if started {
                        break; // end of head
                    }
                    // Tolerate stray CRLFs between pipelined requests
                    // (RFC 7230 §3.5); restart the head.
                    head.clear();
                    line_start = 0;
                    continue;
                }
                started = true;
                line_start = head.len();
            }
            Err(e) if is_timeout(&e) => {
                return if head.is_empty() {
                    Ok(NextRequest::Idle)
                } else {
                    Err(HttpError::Timeout)
                };
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    // -- split into logical lines, folding obs-fold continuations ------
    let head_text = std::str::from_utf8(&head)
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines: Vec<String> = Vec::new();
    for raw in head_text.split('\n') {
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        if line.is_empty() {
            continue;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // obs-fold: continuation of the previous header's value.
            let prev = lines
                .last_mut()
                .ok_or_else(|| HttpError::BadRequest("continuation before any header".into()))?;
            prev.push(' ');
            prev.push_str(trim_ascii(line));
        } else {
            lines.push(line.to_string());
        }
    }

    // -- request line --------------------------------------------------
    let mut parts = lines[0].split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no HTTP version".into()))?;
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version {other:?}"
            )))
        }
    };
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line".into()));
    }

    // -- headers -------------------------------------------------------
    let mut headers = Vec::with_capacity(lines.len().saturating_sub(1));
    for line in &lines[1..] {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header without ':': {line:?}")))?;
        let name = trim_ascii(name);
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), trim_ascii(value).to_string()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };

    if header("transfer-encoding").is_some() {
        return Err(HttpError::NotImplemented("transfer-encoding"));
    }

    // -- body ----------------------------------------------------------
    let content_length = match header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("unparseable content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: limits.max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => HttpError::BadRequest(format!(
                "truncated body: connection closed before {content_length} bytes arrived"
            )),
            _ if is_timeout(&e) => HttpError::Timeout,
            _ => HttpError::Io(e),
        })?;
    }

    // -- connection semantics -----------------------------------------
    let conn = header("connection").map(|v| v.to_ascii_lowercase());
    let keep_alive = match conn.as_deref() {
        Some(v) if v.split(',').any(|t| trim_ascii(t) == "close") => false,
        Some(v) if v.split(',').any(|t| trim_ascii(t) == "keep-alive") => true,
        _ => http11, // 1.1 defaults open, 1.0 defaults closed
    };

    Ok(NextRequest::Request(Request {
        method,
        target,
        headers,
        body,
        keep_alive,
    }))
}

fn trim_crlf(line: &[u8]) -> &[u8] {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    line.strip_suffix(b"\r").unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn req(text: &str) -> Result<NextRequest, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes()), &Limits::default())
    }

    fn must(text: &str) -> Request {
        match req(text) {
            Ok(NextRequest::Request(r)) => r,
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            must("POST /v1/count HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\n{\"path\":[0]}");
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/v1/count");
        assert_eq!(r.body, b"{\"path\":[0]}");
        assert!(r.keep_alive);
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn folds_continuation_lines() {
        let r = must("GET /healthz HTTP/1.1\r\nX-Note: first\r\n  folded   tail\r\n\tmore\r\n\r\n");
        assert_eq!(r.header("x-note"), Some("first folded   tail more"));
    }

    #[test]
    fn folding_before_any_header_is_rejected() {
        // A continuation line directly after the request line has no
        // header to extend.
        let e = req("GET / HTTP/1.1\r\n  orphan fold\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let two = "POST /v1/count HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}\
                   GET /healthz HTTP/1.1\r\n\r\n";
        let mut cur = Cursor::new(two.as_bytes());
        let limits = Limits::default();
        let a = match read_request(&mut cur, &limits).unwrap() {
            NextRequest::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(a.target, "/v1/count");
        assert_eq!(a.body, b"{}");
        let b = match read_request(&mut cur, &limits).unwrap() {
            NextRequest::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(b.target, "/healthz");
        assert!(b.body.is_empty());
        assert!(matches!(
            read_request(&mut cur, &limits).unwrap(),
            NextRequest::Closed
        ));
    }

    #[test]
    fn stray_crlf_between_pipelined_requests_is_tolerated() {
        let r = must("\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(r.target, "/healthz");
    }

    #[test]
    fn clean_close_is_not_an_error() {
        assert!(matches!(req("").unwrap(), NextRequest::Closed));
    }

    #[test]
    fn truncated_head_is_400() {
        for text in ["GET / HTT", "GET / HTTP/1.1\r\nHost: x\r\n"] {
            let e = req(text).unwrap_err();
            assert_eq!(e.status(), 400, "{text:?}");
            assert_eq!(e.kind(), "bad_request");
        }
    }

    #[test]
    fn truncated_body_is_400() {
        let e = req("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert_eq!(e.status(), 400);
        let HttpError::BadRequest(msg) = e else {
            panic!("wrong variant")
        };
        assert!(msg.contains("truncated body"), "{msg}");
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        let limits = Limits {
            max_body_bytes: 10,
            ..Limits::default()
        };
        // Note: no body bytes follow — the length check must fire on the
        // declaration alone.
        let mut cur = Cursor::new(&b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n"[..]);
        let e = read_request(&mut cur, &limits).unwrap_err();
        assert_eq!(e.status(), 413);
        assert_eq!(e.kind(), "payload_too_large");
    }

    #[test]
    fn oversized_head_is_431() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let big = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(100));
        let e = read_request(&mut Cursor::new(big.as_bytes()), &limits).unwrap_err();
        assert_eq!(e.status(), 431);
    }

    #[test]
    fn chunked_encoding_is_501() {
        let e = req("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status(), 501);
        assert_eq!(e.kind(), "not_implemented");
    }

    #[test]
    fn bad_request_lines_are_400() {
        for text in [
            "GET /\r\n\r\n",                                  // no version
            "GET / SPDY/3\r\n\r\n",                           // unknown protocol
            "GET / HTTP/1.1 extra\r\n\r\n",                   // trailing token
            "GET / HTTP/1.1\r\nNo-Colon-Here\r\n\r\n",        // malformed header
            "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",          // space in name
            "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", // bad length
        ] {
            assert_eq!(req(text).unwrap_err().status(), 400, "{text:?}");
        }
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        assert!(!must("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(must("GET / HTTP/1.1\r\n\r\n").keep_alive);
        assert!(!must("GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(must("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        assert!(!must("GET / HTTP/1.1\r\nConnection: x, close\r\n\r\n").keep_alive);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        let mut resp = Response::text(200, "ok\n");
        resp.keep_alive = false;
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn error_response_body_shape() {
        let resp = HttpError::PayloadTooLarge {
            declared: 99,
            limit: 10,
        }
        .into_response();
        assert_eq!(resp.status, 413);
        assert!(!resp.keep_alive);
        let body = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = body.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("payload_too_large"));
        assert_eq!(err.get("status").unwrap().as_usize(), Some(413));
    }
}
