//! Criterion end-to-end query benchmarks: suffix-range search, occurrence
//! listing (streaming vs legacy eager), and extraction on paper-like
//! corpora, CiNCT vs each baseline — all driven through the unified
//! `PathQuery` trait. This is the Criterion counterpart of the
//! fig10/fig15 harness binaries.

use cinct::{CinctBuilder, Path, PathQuery};
use cinct_bench::{build_variant, sample_patterns, Variant};
use cinct_bwt::TrajectoryString;
use cinct_fmindex::ExtractIter;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_suffix_range(c: &mut Criterion) {
    let ds = cinct_datasets::singapore2(0.1);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let patterns = sample_patterns(&ds.trajectories, 20, 100, 42);
    let mut group = c.benchmark_group("suffix_range_singapore2");
    for v in [
        Variant::Cinct { b: 63 },
        Variant::Ufmi,
        Variant::IcbWm { b: 63 },
        Variant::IcbHuff { b: 63 },
        Variant::FmGmr,
        Variant::FmApHyb,
    ] {
        let built = build_variant(v, &ts, ds.n_edges());
        group.bench_function(built.name.clone(), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for p in &patterns {
                    acc += built.index.count(black_box(Path::new(p)));
                }
                acc
            })
        });
    }
    group.finish();
}

/// Streaming `occurrences()` vs the deprecated eager `locate_path`: same
/// matches, but the iterator needs no intermediate `Vec` — counting
/// matched trajectories allocates nothing at all.
fn bench_occurrences(c: &mut Criterion) {
    let ds = cinct_datasets::singapore2(0.05);
    let idx = CinctBuilder::new()
        .locate_sampling(32)
        .build(&ds.trajectories, ds.n_edges());
    let patterns = sample_patterns(&ds.trajectories, 8, 50, 7);
    let mut group = c.benchmark_group("occurrences_singapore2");
    group.bench_function("streaming_iter", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for p in &patterns {
                acc += idx
                    .occurrences(black_box(Path::new(p)))
                    .expect("locate enabled")
                    .map(|(t, _)| t)
                    .sum::<usize>();
            }
            acc
        })
    });
    #[allow(deprecated)]
    group.bench_function("legacy_eager_vec", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for p in &patterns {
                acc += idx
                    .locate_path(black_box(p))
                    .expect("locate enabled")
                    .iter()
                    .map(|&(t, _)| t)
                    .sum::<usize>();
            }
            acc
        })
    });
    group.finish();
}

fn bench_extract(c: &mut Criterion) {
    let ds = cinct_datasets::roma(0.1);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let mut group = c.benchmark_group("extract_roma");
    for v in [
        Variant::Cinct { b: 63 },
        Variant::Ufmi,
        Variant::IcbHuff { b: 63 },
    ] {
        let built = build_variant(v, &ts, ds.n_edges());
        group.bench_function(built.name.clone(), |bch| {
            bch.iter(|| {
                ExtractIter::new(built.index.as_ref(), black_box(0), black_box(5_000))
                    .collect_forward()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_suffix_range, bench_occurrences, bench_extract
}
criterion_main!(benches);
