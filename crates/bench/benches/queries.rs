//! Criterion end-to-end query benchmarks: suffix-range search and
//! extraction on a Singapore-2-like corpus, CiNCT vs each baseline. This
//! is the Criterion counterpart of the fig10/fig15 harness binaries.

use cinct_bench::{build_variant, sample_patterns, Variant};
use cinct_bwt::TrajectoryString;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_suffix_range(c: &mut Criterion) {
    let ds = cinct_datasets::singapore2(0.1);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let patterns = sample_patterns(&ds.trajectories, 20, 100, 42);
    let encoded: Vec<Vec<u32>> = patterns
        .iter()
        .map(|p| TrajectoryString::encode_pattern(p))
        .collect();
    let mut group = c.benchmark_group("suffix_range_singapore2");
    for v in [
        Variant::Cinct { b: 63 },
        Variant::Ufmi,
        Variant::IcbWm { b: 63 },
        Variant::IcbHuff { b: 63 },
        Variant::FmGmr,
        Variant::FmApHyb,
    ] {
        let built = build_variant(v, &ts, ds.n_edges());
        group.bench_function(built.name.clone(), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for e in &encoded {
                    if let Some(r) = built.index.suffix_range(black_box(e)) {
                        acc += r.len();
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_extract(c: &mut Criterion) {
    let ds = cinct_datasets::roma(0.1);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let mut group = c.benchmark_group("extract_roma");
    for v in [Variant::Cinct { b: 63 }, Variant::Ufmi, Variant::IcbHuff { b: 63 }] {
        let built = build_variant(v, &ts, ds.n_edges());
        group.bench_function(built.name.clone(), |bch| {
            bch.iter(|| built.index.extract(black_box(0), black_box(5_000)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_suffix_range, bench_extract
}
criterion_main!(benches);
