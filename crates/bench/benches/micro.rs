//! Criterion micro-benchmarks for the succinct substrate: bit-level rank
//! (plain vs RRR at the paper's block sizes), symbol rank (HWT vs WM),
//! and PseudoRank vs true rank — the operations whose costs drive every
//! figure in the paper.

use cinct::{CinctBuilder, LabelingStrategy};
use cinct_bwt::TrajectoryString;
use cinct_succinct::{
    BitBuf, BitRank, HuffmanWaveletTree, RankBitVec, RrrBitVec, SymbolSeq, WaveletMatrix,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn pseudo_bits(n: usize, density_pct: u64, seed: u64) -> BitBuf {
    let mut b = BitBuf::new();
    let mut x = seed | 1;
    for _ in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        b.push((x >> 33) % 100 < density_pct);
    }
    b
}

fn bench_bit_rank(c: &mut Criterion) {
    let n = 1 << 20;
    let bits = pseudo_bits(n, 30, 7);
    let plain = RankBitVec::new(bits.clone());
    let mut group = c.benchmark_group("bit_rank");
    let mut positions: Vec<usize> = Vec::new();
    let mut x = 99u64;
    for _ in 0..1024 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        positions.push((x >> 33) as usize % n);
    }
    group.bench_function("plain", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &p in &positions {
                acc += plain.rank1(black_box(p));
            }
            acc
        })
    });
    for b in [15usize, 31, 63] {
        let rrr = RrrBitVec::new(&bits, b);
        group.bench_function(format!("rrr_b{b}"), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    acc += rrr.rank1(black_box(p));
                }
                acc
            })
        });
    }
    group.finish();
}

fn skewed_seq(n: usize, sigma: u32, seed: u64) -> Vec<u32> {
    // Zipf-ish label-like distribution.
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (x >> 33) % 100;
            match r {
                0..=69 => 1,
                70..=89 => 2,
                _ => 3 + ((x >> 40) as u32 % (sigma - 3).max(1)),
            }
        })
        .collect()
}

fn bench_symbol_rank(c: &mut Criterion) {
    let n = 1 << 19;
    let seq = skewed_seq(n, 16, 3);
    let hwt = HuffmanWaveletTree::<RrrBitVec>::with_params(&seq, 63);
    let wm = WaveletMatrix::<RrrBitVec>::with_params(&seq, 63);
    let mut group = c.benchmark_group("symbol_rank_low_entropy");
    group.bench_function("hwt_rrr", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for i in (0..n).step_by(4097) {
                acc += hwt.rank(black_box(1), black_box(i));
            }
            acc
        })
    });
    group.bench_function("wm_rrr", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for i in (0..n).step_by(4097) {
                acc += wm.rank(black_box(1), black_box(i));
            }
            acc
        })
    });
    group.finish();
}

fn bench_pseudo_rank(c: &mut Criterion) {
    // The paper's headline op: simulated rank over the labeled BWT vs the
    // same rank on the raw BWT in an ICB-Huff-style HWT.
    let ds = cinct_datasets::roma(0.1);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let idx = CinctBuilder::new()
        .labeling(LabelingStrategy::BigramSorted)
        .build_from_trajectory_string(&ts, ds.n_edges())
        .0;
    let (_, tbwt) = cinct_bwt::bwt(ts.text(), ts.sigma());
    let raw_hwt = HuffmanWaveletTree::<RrrBitVec>::with_params(&tbwt, 63);

    // Collect valid (j, w, w') probes: positions within contexts.
    let c_arr = idx.c_array();
    let mut probes = Vec::new();
    'outer: for w_prime in 0..idx.sigma() as u32 {
        let range = c_arr.symbol_range(w_prime);
        if range.is_empty() {
            continue;
        }
        for w in idx.rml().graph().out(w_prime) {
            probes.push((range.start + range.len() / 2, w, w_prime));
            if probes.len() >= 2048 {
                break 'outer;
            }
        }
    }
    let mut group = c.benchmark_group("rank_on_bwt");
    group.bench_function("cinct_pseudo_rank", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(j, w, w_prime) in &probes {
                acc += idx.pseudo_rank(black_box(j), w, w_prime).unwrap_or(0);
            }
            acc
        })
    });
    group.bench_function("icb_huff_true_rank", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(j, w, _) in &probes {
                acc += raw_hwt.rank(black_box(w), black_box(j));
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bit_rank, bench_symbol_rank, bench_pseudo_rank
}
criterion_main!(benches);
