//! Index-variant zoo: build any of the paper's Table II methods over a
//! trajectory string, behind one object-safe interface.

use cinct::{CinctBuilder, CinctIndex, LabelingStrategy};
use cinct_bwt::TrajectoryString;
use cinct_fmindex::{FmApHyb, FmGmr, IcbHuff, IcbWm, PathQuery, Ufmi};
use cinct_succinct::{HuffmanWaveletTree, RrrBitVec, WaveletMatrix};
use std::time::Instant;

/// The methods compared in the paper (Table II) plus the Fig. 14 ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// CiNCT with bigram-sorted RML; `b` = RRR block size.
    Cinct {
        /// RRR block size (paper: 15, 31, 63).
        b: usize,
    },
    /// CiNCT with randomly permuted labels (Fig. 14 strawman).
    CinctRandomLabels {
        /// RRR block size.
        b: usize,
        /// Permutation seed.
        seed: u64,
    },
    /// Wavelet matrix over plain bitmaps (uncompressed FM-index).
    Ufmi,
    /// Wavelet matrix over RRR (implicit compression boosting).
    IcbWm {
        /// RRR block size.
        b: usize,
    },
    /// Huffman wavelet tree over RRR.
    IcbHuff {
        /// RRR block size.
        b: usize,
    },
    /// Large-alphabet position-list FM-index (FM-GMR stand-in).
    FmGmr,
    /// Alphabet-partitioned FM-index (FM-AP-HYB stand-in).
    FmApHyb,
}

impl Variant {
    /// Paper display name.
    pub fn name(&self) -> String {
        match self {
            Variant::Cinct { .. } => "CiNCT".into(),
            Variant::CinctRandomLabels { .. } => "CiNCT-rand".into(),
            Variant::Ufmi => "UFMI".into(),
            Variant::IcbWm { .. } => "ICB-WM".into(),
            Variant::IcbHuff { .. } => "ICB-Huff".into(),
            Variant::FmGmr => "FM-GMR".into(),
            Variant::FmApHyb => "FM-AP-HYB".into(),
        }
    }
}

/// The six defaults compared in Figs. 10–13 (b = 63 where applicable).
pub const ALL_VARIANTS: [Variant; 6] = [
    Variant::Cinct { b: 63 },
    Variant::Ufmi,
    Variant::IcbWm { b: 63 },
    Variant::IcbHuff { b: 63 },
    Variant::FmGmr,
    Variant::FmApHyb,
];

/// A built index, its metadata, and (for CiNCT) the w/o-ET-graph size.
///
/// Every variant sits behind the same `dyn PathQuery` object: the harness
/// has no per-variant query dispatch, only per-variant *construction*.
pub struct BuiltIndex {
    /// Display name.
    pub name: String,
    /// The queryable index.
    pub index: Box<dyn PathQuery>,
    /// Construction wall-clock seconds.
    pub build_secs: f64,
    /// Size excluding the ET-graph, if the variant has one.
    pub size_without_et_graph: Option<usize>,
}

impl BuiltIndex {
    /// Bits per indexed symbol.
    pub fn bits_per_symbol(&self) -> f64 {
        self.index.bits_per_symbol()
    }
}

/// Build the given variant over a prepared trajectory string.
pub fn build_variant(variant: Variant, ts: &TrajectoryString, n_edges: usize) -> BuiltIndex {
    let t0 = Instant::now();
    let (index, without_et): (Box<dyn PathQuery>, Option<usize>) = match variant {
        Variant::Cinct { b } => {
            let (idx, _) = CinctBuilder::new()
                .block_size(b)
                .build_from_trajectory_string(ts, n_edges);
            let w = idx.size_without_et_graph();
            (Box::new(idx), Some(w))
        }
        Variant::CinctRandomLabels { b, seed } => {
            let (idx, _) = CinctBuilder::new()
                .block_size(b)
                .labeling(LabelingStrategy::Random { seed })
                .build_from_trajectory_string(ts, n_edges);
            let w = idx.size_without_et_graph();
            (Box::new(idx), Some(w))
        }
        Variant::Ufmi => (Box::new(Ufmi::from_text(ts.text(), ts.sigma())), None),
        Variant::IcbWm { b } => (
            Box::new(IcbWm::from_text_with(ts.text(), ts.sigma(), |bwt| {
                WaveletMatrix::<RrrBitVec>::with_params(bwt, b)
            })),
            None,
        ),
        Variant::IcbHuff { b } => (
            Box::new(IcbHuff::from_text_with(ts.text(), ts.sigma(), |bwt| {
                HuffmanWaveletTree::<RrrBitVec>::with_params(bwt, b)
            })),
            None,
        ),
        Variant::FmGmr => (Box::new(FmGmr::from_text(ts.text(), ts.sigma())), None),
        Variant::FmApHyb => (Box::new(FmApHyb::from_text(ts.text(), ts.sigma())), None),
    };
    BuiltIndex {
        name: variant.name(),
        index,
        build_secs: t0.elapsed().as_secs_f64(),
        size_without_et_graph: without_et,
    }
}

/// Reference to the concrete CiNCT index when timing its internals.
pub fn build_cinct(ts: &TrajectoryString, n_edges: usize, b: usize) -> CinctIndex {
    CinctBuilder::new()
        .block_size(b)
        .build_from_trajectory_string(ts, n_edges)
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ts() -> TrajectoryString {
        let trajs = vec![vec![0u32, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        TrajectoryString::build(&trajs, 6)
    }

    #[test]
    fn every_variant_builds_and_agrees() {
        let ts = tiny_ts();
        let path = cinct_fmindex::Path::new(&[0, 1]);
        let expected = Some(9..11);
        for v in ALL_VARIANTS {
            let built = build_variant(v, &ts, 6);
            assert_eq!(
                built.index.range(path),
                expected,
                "{} disagrees",
                built.name
            );
            assert_eq!(built.index.count(path), 2, "{} miscounts", built.name);
            assert!(built.bits_per_symbol() > 0.0);
        }
    }

    #[test]
    fn cinct_reports_et_graph_split() {
        let ts = tiny_ts();
        let built = build_variant(Variant::Cinct { b: 63 }, &ts, 6);
        let without = built.size_without_et_graph.expect("cinct splits size");
        assert!(without < built.index.size_in_bytes());
        let baseline = build_variant(Variant::Ufmi, &ts, 6);
        assert!(baseline.size_without_et_graph.is_none());
    }
}
