//! Query workloads and timing, matching the paper's measurement protocol
//! (§VI-A3: search time averaged over 500 suffix range queries of length
//! 20 randomly sampled from the data).
//!
//! Every variant is driven through the identical [`PathQuery`] dispatch
//! path. Hit/match accounting goes through the backend-agnostic
//! [`cinct::engine::QueryEngine`] — the same batch layer the CLI and
//! integration tests use — while the timed loop uses one timer around the
//! whole batch, per the paper's protocol (per-query timers would add
//! constant overhead comparable to a fast backend's query time).

use cinct::engine::{Query, QueryEngine};
use cinct_fmindex::{Path, PathQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample `count` sub-paths of `len` edges from the trajectory corpus
/// (only trajectories long enough contribute). Returned as forward paths.
pub fn sample_patterns(
    trajectories: &[Vec<u32>],
    len: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let eligible: Vec<&Vec<u32>> = trajectories.iter().filter(|t| t.len() >= len).collect();
    assert!(
        !eligible.is_empty(),
        "no trajectory long enough for patterns of length {len}"
    );
    (0..count)
        .map(|_| {
            let t = eligible[rng.gen_range(0..eligible.len())];
            let start = rng.gen_range(0..=t.len() - len);
            t[start..start + len].to_vec()
        })
        .collect()
}

/// Sample `count` *selective* sub-paths of `len` edges: windows whose
/// rarest edge sits in the bottom percentile of per-edge trajectory
/// frequency. Rare edges land in few shards, so these are the patterns
/// shard pruning can skip work for — the fan-out tax workload, where a
/// uniform [`sample_patterns`] draw would be dominated by popular edges
/// every shard contains.
pub fn selective_patterns(
    trajectories: &[Vec<u32>],
    len: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    use std::collections::HashMap;
    let mut freq: HashMap<u32, usize> = HashMap::new();
    for t in trajectories {
        let mut edges = t.clone();
        edges.sort_unstable();
        edges.dedup();
        for e in edges {
            *freq.entry(e).or_default() += 1;
        }
    }
    // Every window, keyed by how many trajectories its rarest edge
    // appears in. Stable sort keeps corpus order among ties, so the
    // pool — and therefore the draw — is deterministic.
    let mut windows: Vec<(usize, &[u32])> = Vec::new();
    for t in trajectories.iter().filter(|t| t.len() >= len) {
        for w in t.windows(len) {
            let rarest = w.iter().map(|e| freq[e]).min().expect("len >= 1");
            windows.push((rarest, w));
        }
    }
    assert!(
        !windows.is_empty(),
        "no trajectory long enough for patterns of length {len}"
    );
    windows.sort_by_key(|&(rarest, _)| rarest);
    // Cut at the bottom percentile of the per-edge frequency
    // distribution; the floor at the rarest achievable window keeps the
    // pool non-empty even when every edge is popular.
    let mut freqs: Vec<usize> = freq.values().copied().collect();
    freqs.sort_unstable();
    let cutoff = freqs[freqs.len() / 100].max(windows[0].0);
    let pool: Vec<&[u32]> = windows
        .iter()
        .take_while(|&&(rarest, _)| rarest <= cutoff)
        .map(|&(_, w)| w)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| pool[rng.gen_range(0..pool.len())].to_vec())
        .collect()
}

/// Timing results over a pattern batch.
#[derive(Clone, Copy, Debug)]
pub struct QueryTiming {
    /// Mean time per query, microseconds.
    pub mean_us: f64,
    /// Number of queries that found at least one match.
    pub hits: usize,
    /// Total matches across queries (sanity check between variants).
    pub total_matches: usize,
}

/// Run every pattern as a counting query and time it (one timer around the
/// whole batch, §VI-A3). Hits/matches come from an engine pass that doubles
/// as warm-up.
pub fn time_queries(index: &dyn PathQuery, patterns: &[Vec<u32>]) -> QueryTiming {
    if patterns.is_empty() {
        return QueryTiming {
            mean_us: 0.0,
            hits: 0,
            total_matches: 0,
        };
    }
    let batch: Vec<Query> = patterns.iter().map(|p| Query::count(p)).collect();
    let report = QueryEngine::new(index).run(&batch);
    debug_assert_eq!(report.errors(), 0, "sampled patterns must be well-formed");
    let t0 = std::time::Instant::now();
    for p in patterns {
        std::hint::black_box(index.count(Path::new(p)));
    }
    let elapsed = t0.elapsed();
    QueryTiming {
        mean_us: elapsed.as_secs_f64() * 1e6 / patterns.len() as f64,
        hits: report.hits(),
        total_matches: report.total_matches(),
    }
}

/// Time full-text extraction (paper Fig. 15: extract the entire `T`, i.e.
/// `l = |T|` from `j = 0`); returns microseconds **per symbol**.
pub fn time_full_extraction(index: &dyn PathQuery) -> f64 {
    let l = index.text_len() - 1; // all of T except the final sentinel
    let outcome = QueryEngine::new(index).run_one(&Query::extract(0, l));
    std::hint::black_box(&outcome.value);
    outcome.elapsed.as_secs_f64() * 1e6 / l as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_come_from_data() {
        let trajs = vec![vec![1u32, 2, 3, 4, 5, 6], vec![7, 8, 9, 10]];
        let pats = sample_patterns(&trajs, 3, 20, 42);
        assert_eq!(pats.len(), 20);
        for p in &pats {
            assert_eq!(p.len(), 3);
            let found = trajs.iter().any(|t| t.windows(3).any(|w| w == &p[..]));
            assert!(found, "pattern {p:?} not a sub-path of any trajectory");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let trajs = vec![vec![1u32, 2, 3, 4, 5, 6]];
        assert_eq!(
            sample_patterns(&trajs, 2, 5, 9),
            sample_patterns(&trajs, 2, 5, 9)
        );
    }

    #[test]
    #[should_panic(expected = "no trajectory long enough")]
    fn rejects_too_long_patterns() {
        sample_patterns(&[vec![1u32, 2]], 5, 1, 0);
    }

    #[test]
    fn selective_patterns_prefer_rare_edges() {
        // Edge 9 appears in one trajectory; edges 0..3 are everywhere.
        let mut trajs: Vec<Vec<u32>> = (0..20).map(|_| vec![0u32, 1, 2, 3]).collect();
        trajs.push(vec![0, 9, 1]);
        let pats = selective_patterns(&trajs, 2, 30, 11);
        assert_eq!(pats.len(), 30);
        for p in &pats {
            assert!(p.contains(&9), "selective pattern {p:?} has no rare edge");
            let found = trajs.iter().any(|t| t.windows(2).any(|w| w == &p[..]));
            assert!(found, "pattern {p:?} not a sub-path of any trajectory");
        }
        assert_eq!(
            selective_patterns(&trajs, 2, 30, 11),
            selective_patterns(&trajs, 2, 30, 11)
        );
    }

    #[test]
    fn timing_counts_hits() {
        let trajs = vec![vec![0u32, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = cinct_bwt::TrajectoryString::build(&trajs, 6);
        let idx = cinct_fmindex::Ufmi::from_text(ts.text(), ts.sigma());
        let patterns = vec![vec![0u32, 1], vec![1, 2]];
        let t = time_queries(&idx, &patterns);
        assert_eq!(t.hits, 2);
        assert_eq!(t.total_matches, 4);
        assert!(t.mean_us >= 0.0);
    }

    #[test]
    fn extraction_timing_is_finite() {
        let trajs = vec![vec![0u32, 1, 4, 5], vec![0, 1, 2]];
        let ts = cinct_bwt::TrajectoryString::build(&trajs, 6);
        let idx = cinct_fmindex::Ufmi::from_text(ts.text(), ts.sigma());
        let us = time_full_extraction(&idx);
        assert!(us.is_finite() && us >= 0.0);
    }
}
