//! The bench-regression gate: compare a bench run's JSON report against a
//! committed baseline and fail on ratio regressions.
//!
//! The recorded baselines (`BENCH_PR3.json`, `BENCH_PR4.json`,
//! `BENCH_PR5.json`) carry two kinds of numbers: absolute wall-clock
//! (host- and scale-specific, not comparable across machines) and
//! **ratios** — optimized-vs-reference speedups, sharded-vs-monolithic
//! factors. Ratios compare the same binary against itself on the same
//! host in the same run, so they transfer: if the committed baseline says
//! the optimized count path is 2.0x the seed path and a CI smoke run
//! measures 0.9x, the optimization bit-rotted regardless of how slow the
//! runner is. This module extracts every ratio metric (any numeric field
//! whose key contains `"speedup"`), matches baseline against current by
//! JSON path, and fails when `current < baseline * (1 - tolerance)`.
//!
//! Parallel metrics (`"parallel_engine"`, `"parallel_fanout"`) are
//! **armed conditionally**: thread scaling measures the host's core
//! count as much as the code, so those entries are gated only when
//! `meta.host_parallelism > 1` in **both** the baseline and the current
//! report (a missing field reads as 1). The committed baselines were
//! recorded on a 1-vCPU host where every such entry pins ≈ 1.0 — they
//! stay ungated until a multi-core baseline is recorded, at which point
//! the gate starts holding parallel speedups to it automatically.
//!
//! Two entry points:
//!
//! * the `bench_gate` binary — `bench_gate <baseline.json> <current.json>
//!   [--tolerance 0.25]` — used by CI after the smoke runs;
//! * [`enforce_baseline_from_env`] — every bench binary calls this after
//!   writing its report, so `CINCT_BENCH_BASELINE=BENCH_PR3.json cargo
//!   run --bin hotpath` self-gates without a second process.
//!
//! The JSON parser below is a minimal recursive-descent reader for the
//! reports this crate itself emits (the container builds offline — no
//! serde), but it accepts arbitrary well-formed JSON.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order (plenty for
/// path-addressed metric lookup).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs don't appear in our reports;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape \\{}", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through verbatim).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

/// JSON paths whose metrics are host-parallelism dependent: gated only
/// when both reports were recorded on multi-core hosts (see the module
/// docs).
const PARALLEL_PATHS: &[&str] = &["parallel_engine", "parallel_fanout"];

/// The `meta.host_parallelism` a report was recorded with (`1` when the
/// field is absent — older baselines predate it).
pub fn host_parallelism(v: &Json) -> u64 {
    v.get("meta")
        .and_then(|m| m.get("host_parallelism"))
        .and_then(Json::as_f64)
        .map_or(1, |n| n as u64)
}

/// Extract every gateable ratio metric: numeric fields whose key contains
/// `"speedup"`, addressed by a stable JSON path. Array elements are
/// addressed by their `"name"`/`"shards"` field when present (so a
/// reordered report still matches), by index otherwise. Parallel metrics
/// ([`PARALLEL_PATHS`]) are included only when `armed`.
pub fn collect_ratio_metrics(v: &Json, armed: bool) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(v, String::new(), armed, &mut out);
    out
}

fn walk(v: &Json, path: String, armed: bool, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Obj(fields) => {
            for (k, child) in fields {
                let child_path = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                if let Json::Num(n) = child {
                    if k.contains("speedup")
                        && (armed || !PARALLEL_PATHS.iter().any(|ex| child_path.contains(ex)))
                    {
                        out.push((child_path, *n));
                        continue;
                    }
                }
                walk(child, child_path, armed, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                let tag = child
                    .get("name")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .or_else(|| {
                        child
                            .get("shards")
                            .and_then(Json::as_f64)
                            .map(|s| format!("shards_{s}"))
                    })
                    .unwrap_or_else(|| i.to_string());
                walk(child, format!("{path}[{tag}]"), armed, out);
            }
        }
        _ => {}
    }
}

/// One gated metric's verdict.
#[derive(Clone, Debug)]
pub struct GateRow {
    /// JSON path of the metric.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// `current >= baseline * (1 - tolerance)`.
    pub pass: bool,
}

/// Result of gating one report against one baseline.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Per-metric verdicts for every metric present in **both** reports.
    pub rows: Vec<GateRow>,
    /// Baseline metrics the current report no longer emits (reported,
    /// not gated — bench shapes evolve across PRs).
    pub missing_in_current: Vec<String>,
    /// The tolerance the verdicts used.
    pub tolerance: f64,
    /// Whether parallel metrics were gated (both reports recorded with
    /// `meta.host_parallelism > 1`).
    pub parallel_armed: bool,
}

impl GateReport {
    /// `true` when no compared metric regressed past the tolerance.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Number of regressed metrics.
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| !r.pass).count()
    }

    /// Human-readable verdict table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<44} {:>10} {:>10} {:>8}  verdict",
            "metric", "baseline", "current", "ratio"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<44} {:>10.3} {:>10.3} {:>8.3}  {}",
                r.metric,
                r.baseline,
                r.current,
                r.ratio,
                if r.pass { "ok" } else { "REGRESSED" }
            );
        }
        for m in &self.missing_in_current {
            let _ = writeln!(s, "{m:<44} (in baseline only — not gated)");
        }
        let _ = writeln!(
            s,
            "{} metric(s) compared, {} regression(s), tolerance {:.0}%, parallel metrics {}",
            self.rows.len(),
            self.failures(),
            self.tolerance * 100.0,
            if self.parallel_armed {
                "armed (both hosts multi-core)"
            } else {
                "not gated (host_parallelism <= 1 in baseline or current)"
            }
        );
        s
    }
}

/// Gate `current` against `baseline`: every ratio metric present in both
/// must satisfy `current >= baseline * (1 - tolerance)`. Improvements
/// never fail the gate.
pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> GateReport {
    let armed = host_parallelism(baseline) > 1 && host_parallelism(current) > 1;
    let base = collect_ratio_metrics(baseline, armed);
    let cur = collect_ratio_metrics(current, armed);
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (metric, b) in &base {
        match cur.iter().find(|(m, _)| m == metric) {
            Some((_, c)) => rows.push(GateRow {
                metric: metric.clone(),
                baseline: *b,
                current: *c,
                ratio: if *b != 0.0 { c / b } else { f64::INFINITY },
                pass: *c >= b * (1.0 - tolerance),
            }),
            None => missing.push(metric.clone()),
        }
    }
    GateReport {
        rows,
        missing_in_current: missing,
        tolerance,
        parallel_armed: armed,
    }
}

/// Tolerance from `CINCT_BENCH_TOLERANCE` (default `0.25`: fail on a
/// > 25% ratio regression).
pub fn tolerance_from_env() -> f64 {
    std::env::var("CINCT_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Self-gate a bench run: when `CINCT_BENCH_BASELINE` names a baseline
/// JSON file, compare `current_json` (the report the binary just wrote)
/// against it and **exit(1)** on regression. No-op when the variable is
/// unset, so local exploratory runs stay unaffected.
pub fn enforce_baseline_from_env(current_json: &str) {
    let Ok(path) = std::env::var("CINCT_BENCH_BASELINE") else {
        return;
    };
    let baseline_text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench gate: cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline = Json::parse(&baseline_text).unwrap_or_else(|e| {
        eprintln!("bench gate: baseline {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let current = Json::parse(current_json).expect("bench reports emit valid JSON");
    let report = compare(&baseline, &current, tolerance_from_env());
    println!("\n== bench-regression gate vs {path} ==");
    print!("{}", report.render());
    if !report.passed() {
        eprintln!("bench gate: ratio regression beyond tolerance — failing the run");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "meta": {"scale": 0.25, "note": "with \"quotes\" and é"},
      "classes": [
        {"name": "count_p2", "speedup": 2.0, "seed_ns_per_op": 100.0},
        {"name": "extract_l20", "speedup": 3.0}
      ],
      "count_workload_speedup": 2.1,
      "parallel_engine": {"speedup": 1.0},
      "build": {"pipelines": [{"name": "optimized_t1", "speedup_vs_reference": 2.2}]}
    }"#;

    #[test]
    fn parser_roundtrips_the_report_shapes() {
        let v = Json::parse(BASELINE).unwrap();
        assert_eq!(
            v.get("meta").unwrap().get("scale").unwrap().as_f64(),
            Some(0.25)
        );
        assert_eq!(
            v.get("meta").unwrap().get("note").unwrap().as_str(),
            Some("with \"quotes\" and é")
        );
        assert!(Json::parse("[1, -2.5, 3e2, true, false, null]").is_ok());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn collects_speedups_by_stable_path() {
        let v = Json::parse(BASELINE).unwrap();
        let metrics = collect_ratio_metrics(&v, false);
        let names: Vec<&str> = metrics.iter().map(|(m, _)| m.as_str()).collect();
        assert!(names.contains(&"classes[count_p2].speedup"), "{names:?}");
        assert!(names.contains(&"count_workload_speedup"));
        assert!(names.contains(&"build.pipelines[optimized_t1].speedup_vs_reference"));
        // Host-parallelism metrics are excluded while unarmed...
        assert!(!names.iter().any(|n| n.contains("parallel_engine")));
        // ...and included when armed.
        let armed = collect_ratio_metrics(&v, true);
        assert!(armed.iter().any(|(m, _)| m == "parallel_engine.speedup"));
        // Non-speedup numerics are not metrics.
        assert!(!names.iter().any(|n| n.contains("seed_ns_per_op")));
    }

    #[test]
    fn parallel_metrics_arm_only_on_shared_multicore() {
        let single = r#"{"meta": {"host_parallelism": 1}, "parallel_engine": {"speedup": 2.0}}"#;
        let multi_ok = r#"{"meta": {"host_parallelism": 8}, "parallel_engine": {"speedup": 2.0}}"#;
        let multi_bad = r#"{"meta": {"host_parallelism": 8}, "parallel_engine": {"speedup": 0.5}}"#;
        let no_meta = r#"{"parallel_engine": {"speedup": 0.5}}"#;
        let parse = |s: &str| Json::parse(s).unwrap();
        assert_eq!(host_parallelism(&parse(single)), 1);
        assert_eq!(host_parallelism(&parse(multi_ok)), 8);
        assert_eq!(host_parallelism(&parse(no_meta)), 1);
        // Single-core on either side: a parallel collapse passes ungated.
        for (b, c) in [(single, multi_bad), (multi_ok, no_meta), (single, no_meta)] {
            let report = compare(&parse(b), &parse(c), 0.25);
            assert!(!report.parallel_armed);
            assert!(report.rows.is_empty(), "{}", report.render());
            assert!(report.passed());
            assert!(report.render().contains("not gated"));
        }
        // Multi-core on both: the same collapse fails the gate.
        let report = compare(&parse(multi_ok), &parse(multi_bad), 0.25);
        assert!(report.parallel_armed);
        assert_eq!(report.failures(), 1, "{}", report.render());
        assert!(report.render().contains("armed"));
        // And a healthy multi-core run passes while armed.
        assert!(compare(&parse(multi_ok), &parse(multi_ok), 0.25).passed());
    }

    #[test]
    fn tolerance_separates_noise_from_regression() {
        let base = Json::parse(BASELINE).unwrap();
        // 10% down: within the default 25% tolerance.
        let wobbled = BASELINE.replace("\"speedup\": 2.0", "\"speedup\": 1.8");
        let report = compare(&base, &Json::parse(&wobbled).unwrap(), 0.25);
        assert!(report.passed(), "{}", report.render());
        // A 2x slowdown (speedup halves): must fail.
        let halved = BASELINE.replace("\"speedup\": 2.0", "\"speedup\": 1.0");
        let report = compare(&base, &Json::parse(&halved).unwrap(), 0.25);
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
        assert!(report.render().contains("REGRESSED"));
        // Improvements never fail.
        let better = BASELINE.replace("\"speedup\": 2.0", "\"speedup\": 9.0");
        assert!(compare(&base, &Json::parse(&better).unwrap(), 0.25).passed());
    }

    #[test]
    fn shape_drift_is_reported_not_gated() {
        let base = Json::parse(BASELINE).unwrap();
        let slimmer = r#"{"count_workload_speedup": 2.0}"#;
        let report = compare(&base, &Json::parse(slimmer).unwrap(), 0.25);
        assert!(report.passed());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.missing_in_current.len(), 3);
        assert!(report.render().contains("not gated"));
    }
}
