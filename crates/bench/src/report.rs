//! Plain-text table rendering for the experiment binaries.

/// A simple aligned-column table printer.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<w$}", c, w = widths[i])
                    } else {
                        format!("{:>w$}", c, w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_rows() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }
}
