//! Shared harness for the per-table / per-figure experiment binaries.
//!
//! Each binary (`table3`, `fig10`, …, `table5`) regenerates one artifact of
//! the paper's evaluation section and prints the same rows/series the paper
//! reports. Workload sizes are controlled by the `CINCT_SCALE` environment
//! variable (default `0.25`; `1.0` ≈ a few million symbols) so the whole
//! suite runs on a laptop. Absolute numbers will differ from the paper's
//! testbed; the comparisons (who wins, by roughly what factor) are the
//! reproduction target — see `EXPERIMENTS.md`.
//!
//! Three binaries are different in kind: they measure the *repo's own*
//! code against itself and emit recorded baselines —
//!
//! * `hotpath`: optimized vs seed-equivalent query paths (`BENCH_PR3.json`);
//! * `buildpath`: allocation-lean vs seed construction (`BENCH_PR4.json`);
//! * `shardpath`: sharded vs monolithic corpus serving (`BENCH_PR5.json`).
//!
//! Each self-gates against a committed baseline when
//! `CINCT_BENCH_BASELINE` is set (see [`gate`]); CI also runs the
//! standalone `bench_gate` comparator over the smoke-run outputs so
//! ratio regressions fail the build. Protocols and cost models are in
//! the repository's `PERFORMANCE.md`.

pub mod gate;
pub mod report;
pub mod variants;
pub mod workload;

pub use gate::{
    collect_ratio_metrics, compare, enforce_baseline_from_env, host_parallelism, GateReport, Json,
};
pub use report::Table;
pub use variants::{build_variant, BuiltIndex, Variant, ALL_VARIANTS};
pub use workload::{sample_patterns, selective_patterns, time_queries, QueryTiming};

/// Best-of-`reps` timing: one warm-up pass, then the minimum wall-clock
/// of `reps` repetitions (the repo's standard protocol — the paper's
/// single-timer batch measurement hardened against scheduler noise; see
/// `PERFORMANCE.md`). Shared by the `hotpath` and `buildpath` binaries so
/// both measure under one definition.
pub fn time_best_of(reps: usize, mut work: impl FnMut()) -> std::time::Duration {
    work();
    let mut best = std::time::Duration::MAX;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        work();
        best = best.min(t0.elapsed());
    }
    best
}

/// Deterministic row sample across a BWT of `n` rows (no RNG: rows must
/// match between compared paths and across reruns).
pub fn sample_rows(n: usize, count: usize) -> Vec<usize> {
    let stride = (n / count.max(1)).max(1);
    (0..count).map(|i| (1 + i * stride) % n).collect()
}

/// Scale factor from the environment (`CINCT_SCALE`, default 0.25).
pub fn scale_from_env() -> f64 {
    std::env::var("CINCT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Query count from the environment (`CINCT_QUERIES`, default 500 — the
/// paper averages over 500 suffix range queries, §VI-A3).
pub fn queries_from_env() -> usize {
    std::env::var("CINCT_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500)
}
