//! `bench_gate` — the standalone bench-regression comparator.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--tolerance 0.25]
//! ```
//!
//! Compares every ratio metric (`*speedup*` fields, see
//! `cinct_bench::gate`) of `current` against `baseline` and exits
//! non-zero when any regresses past the tolerance. CI runs this after
//! each bench smoke run, with the committed `BENCH_PR*.json` files as
//! baselines, so performance bit-rot fails the build; locally it answers
//! "did my change slow anything down?" in one command:
//!
//! ```text
//! CINCT_SCALE=0.05 CINCT_BENCH_OUT=/tmp/now.json cargo run --release -p cinct_bench --bin hotpath
//! cargo run --release -p cinct_bench --bin bench_gate -- BENCH_PR3.json /tmp/now.json
//! ```
//!
//! Exit codes: `0` pass, `1` regression, `2` usage or parse failure.

use cinct_bench::gate::{compare, Json};
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.25f64;
    let mut files: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                tolerance = args
                    .get(i + 1)
                    .ok_or("--tolerance needs a value in [0, 1)")?
                    .parse()
                    .map_err(|_| "bad --tolerance value")?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
                i += 2;
            }
            _ => {
                files.push(&args[i]);
                i += 1;
            }
        }
    }
    let [baseline_path, current_path] = files[..] else {
        return Err("usage: bench_gate <baseline.json> <current.json> [--tolerance 0.25]".into());
    };
    let read_json = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read_json(baseline_path)?;
    let current = read_json(current_path)?;
    let report = compare(&baseline, &current, tolerance);
    println!("== bench-regression gate: {current_path} vs {baseline_path} ==");
    print!("{}", report.render());
    if report.rows.is_empty() {
        return Err("no comparable ratio metrics between the two reports".into());
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench gate: ratio regression beyond tolerance");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::from(2)
        }
    }
}
