//! Serve-path baseline: HTTP loopback serving vs direct `ShardedCinct`
//! calls, one binary.
//!
//! Four sections feed `BENCH_PR7.json`:
//!
//! 1. **Direct baselines** — count and hot-occurrence workloads against
//!    the corpus in-process (fan-out pinned to 1, matching what the
//!    server resolves per worker), the denominator of every ratio.
//! 2. **Served cache-miss traffic** — the same count workload through a
//!    real socket loopback as batched requests with `"cache": false`,
//!    so every query re-executes the backward search. The gated
//!    `speedup_vs_direct` is the protocol tax (target ≥ 0.9x: batching
//!    amortizes parse/format/syscall cost below the search cost).
//! 3. **Served 90%-hot mix** — occurrence queries, 90% drawn from the 8
//!    most expensive patterns, cache on. Hits return the epoch-checked
//!    cached listing without touching the index; the gated
//!    `speedup_vs_direct` is the cache win (target > 2x).
//! 4. **Mixed read/append** — an appender client installs the withheld
//!    corpus tail while reader clients run cached counts; counts must
//!    be monotone under appends, and the final corpus is asserted
//!    outcome-identical to a local mirror fed the same batches. Ends
//!    with a graceful drain (`/admin/shutdown`) and checks new connects
//!    are refused.
//!
//! Run: `cargo run -p cinct_bench --release --bin servepath`
//! Knobs: `CINCT_SCALE` (default 0.25), `CINCT_QUERIES` (default 500),
//! `CINCT_BENCH_REPS` (default 3), `CINCT_SERVE_BATCH` (default 512),
//! `CINCT_BENCH_OUT` (default `BENCH_PR7.json`); `CINCT_BENCH_BASELINE`
//! self-gates the speedup ratios (`cinct_bench::gate`). See
//! `PERFORMANCE.md` ("Serving cost model") for interpretation.

use cinct::ShardedBuilder;
use cinct_bench::{queries_from_env, sample_patterns, scale_from_env};
use cinct_fmindex::{Path, PathQuery};
use cinct_serve::json::{obj, Json};
use cinct_serve::{Client, ServeConfig, Server};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// SA sampling rate (the hot mix is an occurrence workload).
const LOCATE_RATE: usize = 32;
/// Pattern length of the workloads (the Fig. 11 midpoint).
const PATTERN_LEN: usize = 5;
/// Shard count of the served corpus.
const SHARDS: usize = 4;
/// Distinct patterns in the hot set of section 3.
const HOT_SET: usize = 8;
/// Fraction of the corpus in the initial build; the tail is appended
/// live during the mixed phase.
const BASE_FRACTION: f64 = 0.9;
/// Append batches the withheld tail is split into.
const APPEND_BATCHES: usize = 4;
/// Reader clients running concurrently with the appender in section 4.
const MIXED_READERS: usize = 3;

fn ns_per_op(d: Duration, ops: usize) -> f64 {
    d.as_secs_f64() * 1e9 / ops.max(1) as f64
}

/// Percentile over per-request latencies (µs), nearest-rank.
fn percentile_us(lat: &mut [f64], q: f64) -> f64 {
    if lat.is_empty() {
        return 0.0;
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
    lat[rank - 1]
}

fn batch_from_env() -> usize {
    std::env::var("CINCT_SERVE_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(512)
}

fn paths_json(paths: &[Vec<u32>]) -> Json {
    Json::Arr(paths.iter().map(|p| Json::from(p.clone())).collect())
}

/// Render a batched request body straight into a string — what a real
/// client does; building a `Json` tree per request would bill the bench
/// client's own allocations to the server.
fn batch_body(prefix: &str, paths: &[Vec<u32>]) -> String {
    let mut body = String::with_capacity(prefix.len() + paths.len() * 24 + 16);
    body.push_str(prefix);
    for (i, p) in paths.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('[');
        for (j, e) in p.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            let _ = write!(body, "{e}");
        }
        body.push(']');
    }
    body.push_str("]}");
    body
}

/// One pass of batched `/v1/count` requests; returns wall-clock, the
/// per-request latencies (µs) and the concatenated counts.
fn count_pass(
    client: &mut Client,
    patterns: &[Vec<u32>],
    batch: usize,
    cache: bool,
) -> (Duration, Vec<f64>, Vec<usize>) {
    let mut latencies = Vec::with_capacity(patterns.len().div_ceil(batch));
    let mut counts = Vec::with_capacity(patterns.len());
    let prefix = if cache {
        "{\"cache\":true,\"paths\":["
    } else {
        "{\"cache\":false,\"paths\":["
    };
    let t0 = Instant::now();
    for chunk in patterns.chunks(batch) {
        let body = batch_body(prefix, chunk);
        let r0 = Instant::now();
        let (status, text) = client.post("/v1/count", &body).expect("count request");
        latencies.push(r0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(status, 200, "count batch failed: {text}");
        let resp = Json::parse(&text).expect("count response JSON");
        for c in resp.get("counts").and_then(Json::as_arr).expect("counts") {
            counts.push(c.as_usize().expect("count is an integer"));
        }
    }
    (t0.elapsed(), latencies, counts)
}

/// One pass of batched `/v1/occurrences` requests (`limit: 0` — totals
/// travel, listings stay server-side); returns wall-clock, per-request
/// latencies (µs) and the totals.
fn occurrence_pass(
    client: &mut Client,
    patterns: &[Vec<u32>],
    batch: usize,
) -> (Duration, Vec<f64>, Vec<usize>) {
    let mut latencies = Vec::with_capacity(patterns.len().div_ceil(batch));
    let mut totals = Vec::with_capacity(patterns.len());
    let t0 = Instant::now();
    for chunk in patterns.chunks(batch) {
        let body = batch_body("{\"limit\":0,\"paths\":[", chunk);
        let r0 = Instant::now();
        let (status, text) = client
            .post("/v1/occurrences", &body)
            .expect("occurrences request");
        latencies.push(r0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(status, 200, "occurrence batch failed: {text}");
        let resp = Json::parse(&text).expect("occurrence response JSON");
        for item in resp.get("results").and_then(Json::as_arr).expect("results") {
            totals.push(
                item.get("total")
                    .and_then(Json::as_usize)
                    .expect("total is an integer"),
            );
        }
    }
    (t0.elapsed(), latencies, totals)
}

fn wait_healthy(addr: SocketAddr) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if matches!(c.get("/healthz"), Ok((200, _))) {
                return c;
            }
        }
        assert!(Instant::now() < deadline, "server never became healthy");
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct ServedSection {
    ns: f64,
    p50_us: f64,
    p99_us: f64,
    qps: f64,
}

/// Summarize the best served pass (wall-clock + its latency vector).
fn served_section((best, mut lat): (Duration, Vec<f64>), n_queries: usize) -> ServedSection {
    ServedSection {
        ns: ns_per_op(best, n_queries),
        p50_us: percentile_us(&mut lat, 0.50),
        p99_us: percentile_us(&mut lat, 0.99),
        qps: n_queries as f64 / best.as_secs_f64(),
    }
}

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let reps: usize = std::env::var("CINCT_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let batch = batch_from_env();
    let out_path =
        std::env::var("CINCT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR7.json".to_string());

    println!("== Serve path: HTTP loopback vs direct corpus calls (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let n_edges = ds.n_edges();
    let trajs = &ds.trajectories;
    let base_len = ((trajs.len() as f64 * BASE_FRACTION) as usize)
        .max(1)
        .min(trajs.len());
    let (base, tail) = trajs.split_at(base_len);
    println!(
        "corpus: {} trajectories ({} base + {} appended live), {} edges; \
         host parallelism {}; batch {batch}\n",
        trajs.len(),
        base.len(),
        tail.len(),
        n_edges,
        rayon::current_num_threads()
    );

    let builder = ShardedBuilder::new()
        .shards(SHARDS)
        .index_builder(cinct::CinctBuilder::new().locate_sampling(LOCATE_RATE))
        .threads(0);
    let corpus = builder.build(base, n_edges);
    // A local mirror fed the same append batches: the identity oracle
    // for section 4.
    let mut mirror = builder.build(base, n_edges);

    let patterns = sample_patterns(base, PATTERN_LEN, n_queries, 7007);

    // --- Bring the server up on a loopback ephemeral port. ---
    // Workers cover the mixed phase's concurrent clients even on small
    // hosts (workers may oversubscribe cores for latency hiding — the
    // resolver then pins fan-out to 1, which is what we measure anyway).
    let cfg = ServeConfig {
        workers: rayon::current_num_threads().max(MIXED_READERS + 2),
        deadline: Duration::from_secs(30),
        max_body_bytes: 8 << 20,
        fan_out_threads: 1,
        ..ServeConfig::default()
    };
    // Durability on: appends journal + fsync to a WAL exactly like a
    // production `cinct serve`, so the measured ratios include the
    // durable append path rather than an in-memory-only fast path.
    let wal_dir = std::env::temp_dir().join(format!("cinct-servepath-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("WAL scratch dir");
    let (wal, replay) = cinct::Wal::open(&wal_dir, cinct::Durability::Durable).expect("open WAL");
    assert!(replay.is_empty());
    let server =
        Server::bind_durable("127.0.0.1:0", corpus, cfg, wal, replay).expect("bind loopback");
    let handle = server.handle();
    let addr = handle.addr();
    let srv = std::thread::spawn(move || server.run());
    let mut client = wait_healthy(addr);
    println!(
        "serving on {addr}: {} workers x {} fan-out\n",
        handle.config().workers,
        handle.config().fan_out_threads
    );

    // --- Sections 1+2: direct count baseline vs served cache-miss
    // traffic, measured INTERLEAVED (direct through the live corpus via
    // `with_corpus` — the identical index the server queries). Host
    // speed drifts between sections would otherwise bias the gated
    // ratio far more than the protocol tax it measures. ---
    let svc = handle.service();
    let direct_counts: Vec<usize> =
        svc.with_corpus(|c| patterns.iter().map(|p| c.count(Path::new(p))).collect());
    let (_, _, first_counts) = count_pass(&mut client, &patterns, batch, false);
    assert_eq!(
        first_counts, direct_counts,
        "served counts != direct counts"
    );
    let mut direct_count = Duration::MAX;
    let mut miss_best = (Duration::MAX, Vec::new());
    for _ in 0..reps.max(2) {
        direct_count = direct_count.min(svc.with_corpus(|c| {
            let t0 = Instant::now();
            for p in &patterns {
                std::hint::black_box(c.count(Path::new(p)));
            }
            t0.elapsed()
        }));
        let (d, lat, _) = count_pass(&mut client, &patterns, batch, false);
        if d < miss_best.0 {
            miss_best = (d, lat);
        }
    }
    let direct_count_ns = ns_per_op(direct_count, patterns.len());
    let miss = served_section(miss_best, patterns.len());
    let miss_speedup = direct_count_ns / miss.ns;
    println!(
        "direct count (fan-out 1): {direct_count_ns:.0} ns/op\n\
         served count, cache off: {:.0} ns/op ({miss_speedup:.2}x direct), \
         p50 {:.0} us, p99 {:.0} us, {:.0} q/s",
        miss.ns, miss.p50_us, miss.p99_us, miss.qps
    );

    // Hot set: the most occurrence-heavy patterns — the ones a result
    // cache exists for.
    let mut by_total: Vec<usize> = (0..patterns.len()).collect();
    by_total.sort_by_key(|&i| std::cmp::Reverse(direct_counts[i]));
    let hot: Vec<Vec<u32>> = by_total
        .iter()
        .take(HOT_SET)
        .map(|&i| patterns[i].clone())
        .collect();
    // Deterministic 90%-hot sequence over the full query budget.
    let mix: Vec<Vec<u32>> = (0..n_queries.max(patterns.len()))
        .map(|i| {
            if i % 10 == 9 {
                patterns[i % patterns.len()].clone()
            } else {
                hot[i % HOT_SET].clone()
            }
        })
        .collect();

    // --- Sections 1+3: direct occurrence mix vs served 90%-hot mix with
    // the cache on, same interleaved protocol (the first served pass
    // both proves identity and warms the cache). ---
    let direct_mix_totals: Vec<usize> = svc.with_corpus(|c| {
        mix.iter()
            .map(|p| c.occurrences(Path::new(p)).expect("locate").count())
            .collect()
    });
    let m = cinct_serve::metrics::serve();
    let (_, _, first_totals) = occurrence_pass(&mut client, &mix, batch);
    assert_eq!(first_totals, direct_mix_totals, "served totals != direct");
    let (hits0, misses0) = (m.cache_hits.get(), m.cache_misses.get());
    let mut direct_mix = Duration::MAX;
    let mut hot_best = (Duration::MAX, Vec::new());
    for _ in 0..reps.max(2) {
        direct_mix = direct_mix.min(svc.with_corpus(|c| {
            let t0 = Instant::now();
            for p in &mix {
                std::hint::black_box(c.occurrences(Path::new(p)).expect("locate enabled").count());
            }
            t0.elapsed()
        }));
        let (d, lat, _) = occurrence_pass(&mut client, &mix, batch);
        if d < hot_best.0 {
            hot_best = (d, lat);
        }
    }
    let direct_mix_ns = ns_per_op(direct_mix, mix.len());
    let hot_mix = served_section(hot_best, mix.len());
    let (hits, misses) = (m.cache_hits.get() - hits0, m.cache_misses.get() - misses0);
    let hit_ratio = hits as f64 / (hits + misses).max(1) as f64;
    let hot_speedup = direct_mix_ns / hot_mix.ns;
    println!(
        "direct hot mix (fan-out 1): {direct_mix_ns:.0} ns/op\n\
         served hot mix, cache on: {:.0} ns/op ({hot_speedup:.2}x direct), \
         p50 {:.0} us, p99 {:.0} us, {:.0} q/s, hit ratio {hit_ratio:.3}",
        hot_mix.ns, hot_mix.p50_us, hot_mix.p99_us, hot_mix.qps
    );

    // --- Section 4: appender vs concurrent readers, then identity. ---
    let batch_len = tail.len().div_ceil(APPEND_BATCHES).max(1);
    let done = AtomicBool::new(false);
    let hot_probe = hot[0].clone();
    let t_mixed = Instant::now();
    let (appended, reader_lat) = std::thread::scope(|s| {
        let appender = s.spawn(|| {
            let mut c = Client::connect(addr).expect("appender connect");
            let mut appended = 0usize;
            for chunk in tail.chunks(batch_len) {
                let body = obj(&[("batch", paths_json(chunk))]);
                let (status, resp) = c.post_json("/v1/append", &body).expect("append");
                assert_eq!(status, 200, "append failed: {}", resp.render());
                let a = resp.get("assigned").expect("assigned");
                let (start, end) = (
                    a.get("start").and_then(Json::as_usize).unwrap(),
                    a.get("end").and_then(Json::as_usize).unwrap(),
                );
                assert_eq!(end - start, chunk.len(), "assigned range mismatch");
                appended += chunk.len();
            }
            done.store(true, Ordering::Release);
            appended
        });
        let readers: Vec<_> = (0..MIXED_READERS)
            .map(|_| {
                s.spawn(|| {
                    let mut c = Client::connect(addr).expect("reader connect");
                    let mut lat = Vec::new();
                    let mut last = 0usize;
                    while !done.load(Ordering::Acquire) {
                        let body = obj(&[("path", Json::from(hot_probe.clone()))]);
                        let r0 = Instant::now();
                        let (status, resp) = c.post_json("/v1/count", &body).expect("read");
                        lat.push(r0.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(status, 200);
                        let n = resp.get("count").and_then(Json::as_usize).unwrap();
                        // Appends only add trajectories: a cached answer
                        // that ran backwards would be a stale epoch leak.
                        assert!(n >= last, "count went backwards under appends");
                        last = n;
                    }
                    lat
                })
            })
            .collect();
        let appended = appender.join().expect("appender");
        let mut lat = Vec::new();
        for r in readers {
            lat.extend(r.join().expect("reader"));
        }
        (appended, lat)
    });
    let mixed_secs = t_mixed.elapsed().as_secs_f64();
    let mut reader_lat = reader_lat;
    let mixed_reads = reader_lat.len();
    let (mixed_p50, mixed_p99) = (
        percentile_us(&mut reader_lat, 0.50),
        percentile_us(&mut reader_lat, 0.99),
    );

    // Feed the mirror the same batches and assert the served corpus is
    // outcome-identical across the whole lifecycle.
    for chunk in tail.chunks(batch_len) {
        mirror.append_batch(chunk).expect("mirror append");
    }
    mirror.set_fan_out_threads(1);
    let (status, stats) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats = Json::parse(&stats).expect("stats json");
    assert_eq!(
        stats.get("trajectories").and_then(Json::as_usize),
        Some(mirror.num_trajectories()),
        "served trajectory count != mirror after appends"
    );
    let epoch = stats.get("epoch").and_then(Json::as_usize).unwrap_or(0);
    for p in patterns.iter().take(64).chain(hot.iter()) {
        let body = obj(&[("path", Json::from(p.clone())), ("cache", false.into())]);
        let (status, resp) = client
            .post_json("/v1/count", &body)
            .expect("identity count");
        assert_eq!(status, 200);
        assert_eq!(
            resp.get("count").and_then(Json::as_usize),
            Some(mirror.count(Path::new(p))),
            "served count != mirror count for {p:?}"
        );
        let body = obj(&[("path", Json::from(p.clone())), ("limit", 0usize.into())]);
        let (status, resp) = client
            .post_json("/v1/occurrences", &body)
            .expect("identity occurrences");
        assert_eq!(status, 200);
        assert_eq!(
            resp.get("total").and_then(Json::as_usize),
            Some(mirror.occurrences(Path::new(p)).expect("locate").count()),
            "served occurrence total != mirror for {p:?}"
        );
    }
    let shed_total = m.shed.get();
    println!(
        "mixed phase: {appended} trajectories appended live, {mixed_reads} concurrent reads \
         in {mixed_secs:.3}s (p50 {mixed_p50:.0} us, p99 {mixed_p99:.0} us), epoch {epoch}, \
         {shed_total} shed; identity vs mirror preserved\n"
    );

    // --- Graceful drain. ---
    let (status, _) = client.post("/admin/shutdown", "{}").expect("shutdown");
    assert_eq!(status, 200);
    srv.join().expect("server thread").expect("server run");
    let refused = Client::connect(addr)
        .and_then(|mut c| c.get("/healthz"))
        .is_err();
    assert!(refused, "drained server still answers new connections");
    println!("drained cleanly; new connections refused");
    let _ = std::fs::remove_dir_all(&wal_dir);

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"queries\": {}, \
         \"reps\": {reps}, \"batch\": {batch}, \"pattern_len\": {PATTERN_LEN}, \
         \"shards\": {SHARDS}, \"locate_sampling\": {LOCATE_RATE}, \"n_edges\": {n_edges}, \
         \"host_parallelism\": {}, \"note\": \"speedups are served-vs-direct ratios on one \
         loopback client: cache-miss traffic pays the protocol tax (target >= 0.9x with \
         batching), the 90%-hot mix shows the epoch-checked cache win (target > 2x); \
         absolute ns/op are host-dependent (PERFORMANCE.md, Serving cost model)\"}},",
        ds.name,
        patterns.len(),
        rayon::current_num_threads()
    );
    let _ = writeln!(
        json,
        "  \"direct\": {{\"fan_out_threads\": 1, \"count_ns_per_op\": {direct_count_ns:.1}, \
         \"hot_mix_occurrence_ns_per_op\": {direct_mix_ns:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"served_count_miss\": {{\"ns_per_op\": {:.1}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"qps\": {:.0}, \"speedup_vs_direct\": {miss_speedup:.3}}},",
        miss.ns, miss.p50_us, miss.p99_us, miss.qps
    );
    let _ = writeln!(
        json,
        "  \"served_hot_mix\": {{\"hot_rate\": 0.9, \"hot_set\": {HOT_SET}, \
         \"ns_per_op\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"qps\": {:.0}, \
         \"cache_hit_ratio\": {hit_ratio:.4}, \"speedup_vs_direct\": {hot_speedup:.3}}},",
        hot_mix.ns, hot_mix.p50_us, hot_mix.p99_us, hot_mix.qps
    );
    let _ = writeln!(
        json,
        "  \"mixed_read_append\": {{\"appended\": {appended}, \"append_batches\": {}, \
         \"concurrent_reads\": {mixed_reads}, \"readers\": {MIXED_READERS}, \
         \"wall_secs\": {mixed_secs:.4}, \"read_p50_us\": {mixed_p50:.1}, \
         \"read_p99_us\": {mixed_p99:.1}, \"epoch\": {epoch}, \"shed_total\": {shed_total}, \
         \"identity\": true}},",
        tail.chunks(batch_len).len()
    );
    json.push_str("  \"drain_clean\": true\n}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");
    cinct_bench::enforce_baseline_from_env(&json);
}
