//! Fig. 12: σ-independence. RandWalk data with d̄ = 4, σ swept over
//! {2^14 … 2^18}, |T| = F·σ symbols. CiNCT's size and search time stay
//! near-flat while the baselines grow with σ (Theorem 5).
//!
//! The paper uses |T| = 800σ; the symbols-per-edge factor is configurable
//! via `CINCT_SYMBOLS_PER_EDGE` (default 100) to keep laptop runtimes sane.
//!
//! Run: `cargo run -p cinct-bench --release --bin fig12`

use cinct_bench::report::{f2, Table};
use cinct_bench::{build_variant, queries_from_env, sample_patterns, time_queries, ALL_VARIANTS};
use cinct_bwt::TrajectoryString;

fn main() {
    let factor: usize = std::env::var("CINCT_SYMBOLS_PER_EDGE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let n_queries = queries_from_env();
    println!("== Fig. 12: sigma sweep, RandWalk d=4, |T|={factor}*sigma ==\n");
    let mut size_table = Table::new(&[
        "sigma",
        "CiNCT",
        "CiNCT-w/oET",
        "UFMI",
        "ICB-WM",
        "ICB-Huff",
        "FM-GMR",
        "FM-AP-HYB",
    ]);
    let mut time_table = Table::new(&[
        "sigma",
        "CiNCT",
        "UFMI",
        "ICB-WM",
        "ICB-Huff",
        "FM-GMR",
        "FM-AP-HYB",
    ]);
    for exp in 14..=18u32 {
        let sigma = 1usize << exp;
        let ds = cinct_datasets::randwalk(sigma, 4.0, sigma * factor, exp as u64);
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let patterns = sample_patterns(&ds.trajectories, 20, n_queries, exp as u64);
        let mut sizes = vec![format!("2^{exp}")];
        let mut times = vec![format!("2^{exp}")];
        for &v in ALL_VARIANTS.iter() {
            let built = build_variant(v, &ts, ds.n_edges());
            let t = time_queries(built.index.as_ref(), &patterns);
            sizes.push(f2(built.bits_per_symbol()));
            if let Some(w) = built.size_without_et_graph {
                sizes.push(f2(w as f64 * 8.0 / built.index.text_len() as f64));
            }
            times.push(f2(t.mean_us));
        }
        size_table.row(sizes);
        time_table.row(times);
        eprintln!("  done sigma=2^{exp}");
    }
    println!("-- index size (bits/symbol) --");
    size_table.print();
    println!("\n-- search time (us/query, |P|=20) --");
    time_table.print();
    println!("\nShape check (paper Fig. 12): CiNCT stays near-flat in both size");
    println!("and time as sigma grows; UFMI/ICB grow with lg(sigma).");
}
