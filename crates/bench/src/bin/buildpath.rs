//! Build-path baseline: construction throughput and allocation pressure,
//! seed-equivalent vs allocation-lean, sequential vs multi-threaded —
//! plus the batch engine's thread sweep — in one binary.
//!
//! Three sections feed `BENCH_PR4.json`:
//!
//! 1. **Build throughput** — the seed-equivalent reference pipeline
//!    (`CinctBuilder::build_timed_reference`) against the optimized
//!    pipeline at 1/2/4/8 threads, reported as symbols/sec with per-stage
//!    breakdowns. Every build is asserted **byte-identical** once
//!    serialized (determinism gate).
//! 2. **Allocation counters** — a counting global allocator records total
//!    bytes allocated and the peak live heap above the pre-build
//!    baseline (an RSS proxy that is exact for the heap, unlike sampling
//!    the OS counters).
//! 3. **Parallel engine sweep** — the PR 3 mixed query workload (5k
//!    queries) through `QueryEngine::parallel(t)` for `t ∈ {1, 2, 4, 8}`,
//!    with outcome-identity asserted at every thread count.
//!
//! Run: `cargo run -p cinct_bench --release --bin buildpath`
//! Knobs: `CINCT_SCALE` (default 0.25), `CINCT_BENCH_REPS` (default 3),
//! `CINCT_THREADS` (comma list, default `1,2,4,8`), `CINCT_BENCH_OUT`
//! (default `BENCH_PR4.json`); `CINCT_BENCH_BASELINE` self-gates speedup
//! ratios against a committed baseline (`cinct_bench::gate`). See
//! `PERFORMANCE.md` for the cost model and the regen protocol.

use cinct::engine::{Query, QueryEngine};
use cinct::{CinctBuilder, CinctIndex, ConstructionTimings};
use cinct_bench::{queries_from_env, sample_patterns, sample_rows, scale_from_env, time_best_of};
use cinct_fmindex::PathQuery;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes ever allocated (monotone).
static TOTAL: AtomicUsize = AtomicUsize::new(0);
/// Bytes currently live.
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of `LIVE` since the last reset.
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapped with relaxed atomic counters — the bench's
/// "peak-ish RSS proxy": exact for heap bytes, immune to the noise of
/// sampling OS RSS around sub-second builds.
struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        TOTAL.fetch_add(size, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            Self::on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap traffic of one closure: `(result, total_bytes, peak_live_bytes)` —
/// peak is measured above the heap level at entry.
fn measure_alloc<T>(work: impl FnOnce() -> T) -> (T, usize, usize) {
    let live0 = LIVE.load(Ordering::Relaxed);
    PEAK.store(live0, Ordering::Relaxed);
    let total0 = TOTAL.load(Ordering::Relaxed);
    let out = work();
    let total = TOTAL.load(Ordering::Relaxed) - total0;
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(live0);
    (out, total, peak)
}

fn serialize(idx: &CinctIndex) -> Vec<u8> {
    let mut bytes = Vec::new();
    idx.write_to(&mut bytes).expect("in-memory serialize");
    bytes
}

/// One measured build configuration.
struct BuildResult {
    name: String,
    threads: usize,
    secs: f64,
    sym_per_sec: f64,
    alloc_total: usize,
    alloc_peak: usize,
    stages: ConstructionTimings,
}

fn json_stages(t: &ConstructionTimings) -> String {
    format!(
        "{{\"ingest\": {:.4}, \"sa\": {:.4}, \"bwt\": {:.4}, \"et_graph\": {:.4}, \
         \"wt\": {:.4}, \"directory\": {:.4}}}",
        t.ingest.as_secs_f64(),
        t.sa.as_secs_f64(),
        t.bwt.as_secs_f64(),
        t.et_graph_build.as_secs_f64(),
        t.wt_build.as_secs_f64(),
        t.directory.as_secs_f64()
    )
}

fn threads_from_env() -> Vec<usize> {
    std::env::var("CINCT_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let reps: usize = std::env::var("CINCT_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let thread_counts = threads_from_env();
    let out_path =
        std::env::var("CINCT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());

    println!("== Build path: seed-equivalent vs allocation-lean construction (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let n_edges = ds.n_edges();
    let trajs = &ds.trajectories;
    let symbols: usize = trajs.iter().map(Vec::len).sum::<usize>() + trajs.len() + 1;
    println!(
        "corpus: {} trajectories, {} edges, {} symbols (incl. separators); host parallelism {}\n",
        trajs.len(),
        n_edges,
        symbols,
        rayon::current_num_threads()
    );

    const LOCATE_RATE: usize = 32;
    let base = CinctBuilder::new().locate_sampling(LOCATE_RATE);

    // --- Section 1+2: build throughput and allocation pressure. ---
    let mut builds: Vec<BuildResult> = Vec::new();

    // Seed-equivalent reference pipeline (sequential by construction).
    let ((ref_idx, ref_stages), ref_total, ref_peak) =
        measure_alloc(|| base.build_timed_reference(trajs, n_edges));
    let ref_bytes = serialize(&ref_idx);
    let ref_wall = time_best_of(reps, || {
        std::hint::black_box(base.build_timed_reference(trajs, n_edges));
    });
    builds.push(BuildResult {
        name: "reference".into(),
        threads: 1,
        secs: ref_wall.as_secs_f64(),
        sym_per_sec: symbols as f64 / ref_wall.as_secs_f64(),
        alloc_total: ref_total,
        alloc_peak: ref_peak,
        stages: ref_stages,
    });
    drop(ref_idx);

    // Optimized pipeline across the thread sweep.
    let mut kept: Option<CinctIndex> = None;
    for &t in &thread_counts {
        let builder = base.threads(t);
        let ((idx, stages), total, peak) = measure_alloc(|| builder.build_timed(trajs, n_edges));
        assert_eq!(
            serialize(&idx),
            ref_bytes,
            "optimized build at {t} threads diverged from the reference bytes"
        );
        let wall = time_best_of(reps, || {
            std::hint::black_box(builder.build_timed(trajs, n_edges));
        });
        builds.push(BuildResult {
            name: format!("optimized_t{t}"),
            threads: t,
            secs: wall.as_secs_f64(),
            sym_per_sec: symbols as f64 / wall.as_secs_f64(),
            alloc_total: total,
            alloc_peak: peak,
            stages,
        });
        kept.get_or_insert(idx);
    }
    let idx = kept.expect("at least one thread count");

    let ref_secs = builds[0].secs;
    println!(
        "{:<16} {:>7} {:>9} {:>12} {:>9} {:>11} {:>11}",
        "pipeline", "threads", "secs", "sym/sec", "speedup", "alloc MiB", "peak MiB"
    );
    for b in &builds {
        println!(
            "{:<16} {:>7} {:>9.3} {:>12.0} {:>8.2}x {:>11.1} {:>11.1}",
            b.name,
            b.threads,
            b.secs,
            b.sym_per_sec,
            ref_secs / b.secs,
            b.alloc_total as f64 / (1 << 20) as f64,
            b.alloc_peak as f64 / (1 << 20) as f64
        );
    }
    println!(
        "\nstage breakdown (reference):    {}",
        builds[0].stages.breakdown()
    );
    println!(
        "stage breakdown ({}): {}",
        builds[1].name,
        builds[1].stages.breakdown()
    );
    println!("all serialized indexes byte-identical: true");

    // --- Section 3: the PR 3 mixed query workload, engine thread sweep. ---
    const EXTRACT_LEN: usize = 20;
    let counts = sample_patterns(trajs, 5, n_queries.max(100) * 8, 77);
    let rows = sample_rows(idx.text_len(), n_queries.max(100) * 2);
    let mut batch: Vec<Query> = counts.iter().map(|p| Query::count(p)).collect();
    batch.extend(rows.iter().map(|&j| Query::extract(j, EXTRACT_LEN)));
    println!(
        "\nengine sweep: {}-query mixed batch (counts + extracts)",
        batch.len()
    );

    let baseline = QueryEngine::new(&idx).run(&batch);
    // `speedup` is always relative to the sequential engine: a t=1 row is
    // prepended when CINCT_THREADS omits it, so the baseline never
    // silently becomes a multi-threaded run.
    let mut sweep = thread_counts.clone();
    if !sweep.contains(&1) {
        sweep.insert(0, 1);
    }
    let mut engine_rows: Vec<(usize, f64, bool)> = Vec::new();
    let mut seq_wall_us = 0.0f64;
    for &t in &sweep {
        let engine = QueryEngine::new(&idx).parallel(t);
        let wall = time_best_of(reps, || {
            std::hint::black_box(engine.run(&batch));
        });
        let wall_us = wall.as_secs_f64() * 1e6;
        if t == 1 {
            seq_wall_us = wall_us;
        }
        let report = engine.run(&batch);
        let identical = report
            .outcomes
            .iter()
            .zip(&baseline.outcomes)
            .all(|(a, b)| a.value == b.value)
            && report.outcomes.len() == baseline.outcomes.len();
        assert!(identical, "parallel({t}) outcomes diverged from sequential");
        engine_rows.push((t, wall_us, identical));
    }
    println!(
        "{:<8} {:>12} {:>9} {:>10}",
        "threads", "wall us", "speedup", "identical"
    );
    for &(t, wall_us, identical) in &engine_rows {
        println!(
            "{:<8} {:>12.0} {:>8.2}x {:>10}",
            t,
            wall_us,
            seq_wall_us / wall_us,
            identical
        );
    }

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"reps\": {reps}, \
         \"rrr_block_size\": 63, \"locate_sampling\": {LOCATE_RATE}, \"symbols\": {symbols}, \
         \"text_len\": {}, \"sigma\": {}, \"host_parallelism\": {}, \"note\": \"thread-sweep \
         entries are identity/overhead pins when host_parallelism is 1 — no wall-clock \
         speedup is possible there; regenerate on a multi-core host for scaling numbers \
         (PERFORMANCE.md)\"}},",
        ds.name,
        idx.text_len(),
        idx.sigma(),
        rayon::current_num_threads()
    );
    json.push_str("  \"build\": {\n    \"pipelines\": [\n");
    for (i, b) in builds.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"threads\": {}, \"secs\": {:.4}, \
             \"sym_per_sec\": {:.0}, \"speedup_vs_reference\": {:.3}, \
             \"alloc_total_bytes\": {}, \"alloc_peak_bytes\": {}, \"stages\": {}}}{}",
            b.name,
            b.threads,
            b.secs,
            b.sym_per_sec,
            ref_secs / b.secs,
            b.alloc_total,
            b.alloc_peak,
            json_stages(&b.stages),
            if i + 1 < builds.len() { "," } else { "" }
        );
    }
    json.push_str("    ],\n    \"byte_identical\": true\n  },\n");
    json.push_str("  \"parallel_engine\": [\n");
    for (i, &(t, wall_us, identical)) in engine_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {t}, \"batch\": {}, \"wall_us\": {wall_us:.1}, \
             \"speedup\": {:.3}, \"identical\": {identical}}}{}",
            batch.len(),
            seq_wall_us / wall_us,
            if i + 1 < engine_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");
    cinct_bench::enforce_baseline_from_env(&json);
}
