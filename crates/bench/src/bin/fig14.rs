//! Fig. 14: labeling-strategy ablation. Bigram-sorted RML (Theorem 3's
//! optimum) vs randomly permuted labels, across datasets and RRR block
//! sizes b ∈ {15, 31, 63}. Sorting must win on both size and time.
//!
//! Run: `cargo run -p cinct-bench --release --bin fig14`

use cinct_bench::report::{f2, Table};
use cinct_bench::{
    build_variant, queries_from_env, sample_patterns, scale_from_env, time_queries, Variant,
};
use cinct_bwt::TrajectoryString;

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    println!("== Fig. 14: bigram sorting vs random labeling (scale={scale}) ==\n");
    let mut table = Table::new(&[
        "Dataset",
        "b",
        "sorted b/sym",
        "rand b/sym",
        "sorted us",
        "rand us",
    ]);
    for ds in cinct_datasets::all_table_datasets(scale) {
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let plen = ds
            .trajectories
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(20)
            .min(20);
        let patterns = sample_patterns(&ds.trajectories, plen, n_queries, 77);
        for b in [15usize, 31, 63] {
            let sorted = build_variant(Variant::Cinct { b }, &ts, ds.n_edges());
            let random = build_variant(
                Variant::CinctRandomLabels { b, seed: 1234 },
                &ts,
                ds.n_edges(),
            );
            let t_sorted = time_queries(sorted.index.as_ref(), &patterns);
            let t_random = time_queries(random.index.as_ref(), &patterns);
            table.row(vec![
                ds.name.into(),
                b.to_string(),
                f2(sorted.bits_per_symbol()),
                f2(random.bits_per_symbol()),
                f2(t_sorted.mean_us),
                f2(t_random.mean_us),
            ]);
        }
        eprintln!("  done {}", ds.name);
    }
    table.print();
    println!("\nShape check (paper Fig. 14): bigram sorting is never worse; the");
    println!("paper reports up to 32% smaller and 57% faster than random.");
}
