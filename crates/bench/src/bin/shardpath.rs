//! Shard-path baseline: sharded vs monolithic corpus serving, one binary.
//!
//! Four sections feed `BENCH_PR5.json`:
//!
//! 1. **Build** — one monolithic `CinctIndex` vs `ShardedCinct` at each
//!    shard count K (size-balanced partition, shard builds fanned on the
//!    rayon shim), reported as wall-clock, symbols/sec and
//!    sharded-vs-monolithic build speedup.
//! 2. **Fan-out queries** — count and occurrence workloads against both,
//!    reported as ns/op and the sharded-vs-monolithic ratio (the fan-out
//!    overhead: a K-shard count is K backward searches).
//! 3. **Outcome identity** — at every K, counts, occurrence listings
//!    (global trajectory IDs), recovered trajectories and a mixed
//!    `QueryEngine` batch are asserted **equal** to the monolithic
//!    answers. This runs in CI smoke mode, so a fan-out correctness
//!    regression fails the build even at tiny scale.
//! 4. **Incremental ingest** — the corpus is rebuilt from a 75% base via
//!    `append_batch` (sealing fresh shards) and re-balanced with
//!    `compact`; append cost is compared against the full sharded
//!    rebuild, and identity is re-asserted after both steps.
//!
//! Run: `cargo run -p cinct_bench --release --bin shardpath`
//! Knobs: `CINCT_SCALE` (default 0.25), `CINCT_QUERIES` (default 500),
//! `CINCT_BENCH_REPS` (default 3), `CINCT_SHARDS` (comma list, default
//! `1,2,4,8`), `CINCT_BENCH_OUT` (default `BENCH_PR5.json`);
//! `CINCT_BENCH_BASELINE` self-gates speedup ratios against a committed
//! baseline (`cinct_bench::gate`). See `PERFORMANCE.md` ("Sharded
//! serving cost model") for interpretation.

use cinct::engine::{Query, QueryEngine};
use cinct::{CinctBuilder, CinctIndex, ShardedBuilder, ShardedCinct};
use cinct_bench::{queries_from_env, sample_patterns, scale_from_env, time_best_of};
use cinct_fmindex::{Path, PathQuery};
use std::fmt::Write as _;

/// SA sampling rate (occurrence workloads need locate support).
const LOCATE_RATE: usize = 32;
/// Pattern length of the count/occurrence workloads (the Fig. 11 midpoint).
const PATTERN_LEN: usize = 5;
/// Fraction of the corpus in the initial build of the ingest protocol.
const BASE_FRACTION: f64 = 0.75;
/// Number of append batches the ingest tail is split into.
const INGEST_BATCHES: usize = 4;

fn shards_from_env() -> Vec<usize> {
    std::env::var("CINCT_SHARDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Assert the sharded index answers exactly like the monolithic one:
/// counts, occurrence listings under the global trajectory-ID namespace,
/// recovered trajectories, and a mixed engine batch.
fn assert_outcome_identity(
    mono: &CinctIndex,
    sharded: &ShardedCinct,
    patterns: &[Vec<u32>],
    tag: &str,
) {
    assert_eq!(
        sharded.num_trajectories(),
        mono.num_trajectories(),
        "{tag}: trajectory count"
    );
    for p in patterns {
        let path = Path::new(p);
        assert_eq!(sharded.count(path), mono.count(path), "{tag}: count {p:?}");
        assert_eq!(
            sharded
                .occurrences(path)
                .expect("locate enabled")
                .collect_sorted(),
            mono.occurrences(path)
                .expect("locate enabled")
                .collect_sorted(),
            "{tag}: occurrences {p:?}"
        );
    }
    let stride = (mono.num_trajectories() / 200).max(1);
    for g in (0..mono.num_trajectories()).step_by(stride) {
        assert_eq!(
            sharded.trajectory(g),
            mono.trajectory(g),
            "{tag}: trajectory {g}"
        );
    }
    // The batch engine sees both as interchangeable PathQuery backends.
    let batch: Vec<Query> = patterns
        .iter()
        .take(64)
        .flat_map(|p| [Query::count(p), Query::occurrences(p)])
        .collect();
    let a = QueryEngine::new(mono).run(&batch);
    let b = QueryEngine::new(sharded).run(&batch);
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x.value, y.value, "{tag}: engine outcome {i}");
    }
}

fn ns_per_op(d: std::time::Duration, ops: usize) -> f64 {
    d.as_secs_f64() * 1e9 / ops.max(1) as f64
}

/// One measured shard configuration.
struct ShardResult {
    requested: usize,
    actual: usize,
    build_secs: f64,
    count_ns: f64,
    occur_ns: f64,
    /// Occurrence workload with fan-out parallelism on (`threads(0)`) —
    /// informational, never gated (host-parallelism dependent).
    occur_par_ns: f64,
}

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let reps: usize = std::env::var("CINCT_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let shard_counts = shards_from_env();
    let out_path =
        std::env::var("CINCT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR5.json".to_string());

    println!("== Shard path: sharded vs monolithic corpus serving (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let n_edges = ds.n_edges();
    let trajs = &ds.trajectories;
    let symbols: usize = trajs.iter().map(Vec::len).sum::<usize>() + trajs.len() + 1;
    println!(
        "corpus: {} trajectories, {} edges, {} symbols; host parallelism {}\n",
        trajs.len(),
        n_edges,
        symbols,
        rayon::current_num_threads()
    );

    let index_builder = CinctBuilder::new().locate_sampling(LOCATE_RATE);
    let patterns = sample_patterns(trajs, PATTERN_LEN, n_queries, 5005);

    // --- Section 1 baseline: the monolithic index. ---
    let mono = index_builder.build(trajs, n_edges);
    let mono_build = time_best_of(reps, || {
        std::hint::black_box(index_builder.build(trajs, n_edges));
    });
    let mono_count = time_best_of(reps, || {
        for p in &patterns {
            std::hint::black_box(mono.count_path(p));
        }
    });
    let mono_occur = time_best_of(reps, || {
        for p in &patterns {
            std::hint::black_box(
                mono.occurrences(Path::new(p))
                    .expect("locate enabled")
                    .count(),
            );
        }
    });
    let (mono_count_ns, mono_occur_ns) = (
        ns_per_op(mono_count, patterns.len()),
        ns_per_op(mono_occur, patterns.len()),
    );
    println!(
        "monolithic: build {:.3}s ({:.0} sym/s), count {:.0} ns/op, occurrences {:.0} ns/op\n",
        mono_build.as_secs_f64(),
        symbols as f64 / mono_build.as_secs_f64(),
        mono_count_ns,
        mono_occur_ns
    );

    // --- Sections 1–3: the shard-count sweep. ---
    let mut rows: Vec<ShardResult> = Vec::new();
    println!(
        "{:<8} {:>7} {:>10} {:>9} {:>13} {:>9} {:>13} {:>9}",
        "shards",
        "actual",
        "build s",
        "b-speedup",
        "count ns/op",
        "c-ratio",
        "occur ns/op",
        "o-ratio"
    );
    for &k in &shard_counts {
        // Shard *builds* fan out across all cores; the gated *query*
        // ratios are measured with sequential fan-out so they compare
        // across hosts (per-query scope threads on the shim measure the
        // host's spawn cost, not the index — the parallel fan-out row
        // below records that separately, ungated).
        let builder = ShardedBuilder::new()
            .shards(k)
            .index_builder(index_builder)
            .threads(0);
        let mut sharded = builder.build(trajs, n_edges);
        let build = time_best_of(reps, || {
            std::hint::black_box(builder.build(trajs, n_edges));
        });
        sharded.set_fan_out_threads(1);
        let count = time_best_of(reps, || {
            for p in &patterns {
                std::hint::black_box(sharded.count(Path::new(p)));
            }
        });
        let occur = time_best_of(reps, || {
            for p in &patterns {
                std::hint::black_box(
                    sharded
                        .occurrences(Path::new(p))
                        .expect("locate enabled")
                        .count(),
                );
            }
        });
        assert_outcome_identity(&mono, &sharded, &patterns, &format!("K={k}"));
        // Parallel fan-out: outcome-identical (asserted), wall-clock
        // recorded for the scaling story but never gated.
        sharded.set_fan_out_threads(0);
        let occur_par = time_best_of(reps, || {
            for p in &patterns {
                std::hint::black_box(
                    sharded
                        .occurrences(Path::new(p))
                        .expect("locate enabled")
                        .count(),
                );
            }
        });
        assert_outcome_identity(
            &mono,
            &sharded,
            &patterns,
            &format!("K={k} parallel fan-out"),
        );
        let r = ShardResult {
            requested: k,
            actual: sharded.num_shards(),
            build_secs: build.as_secs_f64(),
            count_ns: ns_per_op(count, patterns.len()),
            occur_ns: ns_per_op(occur, patterns.len()),
            occur_par_ns: ns_per_op(occur_par, patterns.len()),
        };
        println!(
            "{:<8} {:>7} {:>10.3} {:>8.2}x {:>13.0} {:>8.2}x {:>13.0} {:>8.2}x",
            r.requested,
            r.actual,
            r.build_secs,
            mono_build.as_secs_f64() / r.build_secs,
            r.count_ns,
            mono_count_ns / r.count_ns,
            r.occur_ns,
            mono_occur_ns / r.occur_ns,
        );
        rows.push(r);
    }
    println!("\nall shard configurations outcome-identical to monolithic: true");

    // --- Section 4: incremental ingest (append + compact). ---
    let k_ing = shard_counts.iter().copied().max().unwrap_or(4).max(2);
    let base_len = ((trajs.len() as f64 * BASE_FRACTION) as usize).max(1);
    let (base, tail) = trajs.split_at(base_len);
    // Sequential builds on both sides: the gated append-vs-rebuild ratio
    // must not depend on how many cores the rebuild could fan out over.
    let builder = ShardedBuilder::new()
        .shards(k_ing)
        .index_builder(index_builder)
        .threads(1);
    let rebuild = time_best_of(reps, || {
        std::hint::black_box(builder.build(trajs, n_edges));
    });
    let mut grown = builder.build(base, n_edges);
    let batch_len = tail.len().div_ceil(INGEST_BATCHES).max(1);
    let t0 = std::time::Instant::now();
    for batch in tail.chunks(batch_len) {
        grown.append_batch(batch).expect("ingest batch is valid");
    }
    let append_secs = t0.elapsed().as_secs_f64();
    let shards_after_append = grown.num_shards();
    assert_outcome_identity(&mono, &grown, &patterns, "after append");
    let t0 = std::time::Instant::now();
    grown.compact(k_ing).expect("compact to k_ing shards");
    let compact_secs = t0.elapsed().as_secs_f64();
    assert_outcome_identity(&mono, &grown, &patterns, "after compact");
    let append_speedup = rebuild.as_secs_f64() / append_secs.max(1e-9);
    println!(
        "ingest: {}% base + {} append batches -> {} shards in {append_secs:.3}s \
         (full {k_ing}-shard rebuild {:.3}s, {append_speedup:.2}x); compact back to \
         {k_ing} shards {compact_secs:.3}s; identity preserved throughout",
        (BASE_FRACTION * 100.0) as u32,
        tail.chunks(batch_len).len(),
        shards_after_append,
        rebuild.as_secs_f64(),
    );

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"queries\": {}, \
         \"reps\": {reps}, \"pattern_len\": {PATTERN_LEN}, \"locate_sampling\": {LOCATE_RATE}, \
         \"symbols\": {symbols}, \"n_edges\": {n_edges}, \"host_parallelism\": {}, \
         \"note\": \"build speedups > 1 need multi-core hosts (shard builds are fanned \
         out); query ratios < 1 are the fan-out overhead — a K-shard count is K backward \
         searches (PERFORMANCE.md, Sharded serving cost model)\"}},",
        ds.name,
        patterns.len(),
        rayon::current_num_threads()
    );
    let _ = writeln!(
        json,
        "  \"monolithic\": {{\"build_secs\": {:.4}, \"sym_per_sec\": {:.0}, \
         \"count_ns_per_op\": {:.1}, \"occurrence_ns_per_op\": {:.1}}},",
        mono_build.as_secs_f64(),
        symbols as f64 / mono_build.as_secs_f64(),
        mono_count_ns,
        mono_occur_ns
    );
    json.push_str("  \"shard_configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"actual_shards\": {}, \"build_secs\": {:.4}, \
             \"sym_per_sec\": {:.0}, \"build_speedup_vs_mono\": {:.3}, \
             \"count_ns_per_op\": {:.1}, \"count_speedup_vs_mono\": {:.3}, \
             \"occurrence_ns_per_op\": {:.1}, \"occurrence_speedup_vs_mono\": {:.3}, \
             \"parallel_fanout_occurrence_ns_per_op\": {:.1}, \
             \"parallel_fanout_occurrence_speedup_vs_mono\": {:.3}, \"identity\": true}}{}",
            r.requested,
            r.actual,
            r.build_secs,
            symbols as f64 / r.build_secs,
            mono_build.as_secs_f64() / r.build_secs,
            r.count_ns,
            mono_count_ns / r.count_ns,
            r.occur_ns,
            mono_occur_ns / r.occur_ns,
            r.occur_par_ns,
            mono_occur_ns / r.occur_par_ns,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"incremental_ingest\": {{\"base_fraction\": {BASE_FRACTION}, \"batches\": {}, \
         \"target_shards\": {k_ing}, \"shards_after_append\": {shards_after_append}, \
         \"append_total_secs\": {append_secs:.4}, \"rebuild_secs\": {:.4}, \
         \"append_vs_rebuild_speedup\": {append_speedup:.3}, \
         \"compact_secs\": {compact_secs:.4}, \"identity\": true}}",
        tail.chunks(batch_len).len(),
        rebuild.as_secs_f64()
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");
    cinct_bench::enforce_baseline_from_env(&json);
}
