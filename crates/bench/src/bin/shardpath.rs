//! Shard-path baseline: sharded vs monolithic corpus serving, one binary.
//!
//! Four sections feed `BENCH_PR5.json`:
//!
//! 1. **Build** — one monolithic `CinctIndex` vs `ShardedCinct` at each
//!    shard count K (size-balanced partition, shard builds fanned on the
//!    rayon shim), reported as wall-clock, symbols/sec and
//!    sharded-vs-monolithic build speedup.
//! 2. **Fan-out queries** — count and occurrence workloads against both,
//!    reported as ns/op and the sharded-vs-monolithic ratio (the fan-out
//!    overhead: a K-shard count is K backward searches).
//! 3. **Outcome identity** — at every K, counts, occurrence listings
//!    (global trajectory IDs), recovered trajectories and a mixed
//!    `QueryEngine` batch are asserted **equal** to the monolithic
//!    answers. This runs in CI smoke mode, so a fan-out correctness
//!    regression fails the build even at tiny scale.
//! 4. **Incremental ingest** — the corpus is rebuilt from a 75% base via
//!    `append_batch` (sealing fresh shards) and re-balanced with
//!    `compact`; append cost is compared against the full sharded
//!    rebuild, and identity is re-asserted after both steps.
//!
//! A fifth section feeds `BENCH_PR10.json`:
//!
//! 5. **Shard pruning** — selective counting workloads (patterns built
//!    around the corpus's rarest edges, `selective_patterns`) timed with
//!    pruning on vs off vs the monolithic index at each K in
//!    `CINCT_PRUNE_SHARDS`. The gated ratio is
//!    `pruned_count_speedup_vs_unpruned` — the fan-out tax the
//!    edge-membership metadata claws back — plus the vs-monolithic
//!    ratio the roadmap targets (K=8 within ~1.2x). All three variants
//!    are asserted outcome-identical on every pattern.
//!
//! Run: `cargo run -p cinct_bench --release --bin shardpath`
//! Knobs: `CINCT_SCALE` (default 0.25), `CINCT_QUERIES` (default 500),
//! `CINCT_BENCH_REPS` (default 3), `CINCT_SHARDS` (comma list, default
//! `1,2,4,8`), `CINCT_PRUNE_SHARDS` (comma list, default `2,8,32`),
//! `CINCT_BENCH_OUT` (default `BENCH_PR5.json`), `CINCT_PRUNE_OUT`
//! (default `BENCH_PR10.json`); `CINCT_BENCH_BASELINE` self-gates
//! speedup ratios against a committed baseline (`cinct_bench::gate`).
//! See `PERFORMANCE.md` ("Sharded serving cost model" and "Shard
//! pruning cost model") for interpretation.

use cinct::engine::{Query, QueryEngine};
use cinct::{CinctBuilder, CinctIndex, ShardedBuilder, ShardedCinct};
use cinct_bench::{
    queries_from_env, sample_patterns, scale_from_env, selective_patterns, time_best_of,
};
use cinct_fmindex::{Path, PathQuery};
use std::fmt::Write as _;

/// SA sampling rate (occurrence workloads need locate support).
const LOCATE_RATE: usize = 32;
/// Pattern length of the count/occurrence workloads (the Fig. 11 midpoint).
const PATTERN_LEN: usize = 5;
/// Fraction of the corpus in the initial build of the ingest protocol.
const BASE_FRACTION: f64 = 0.75;
/// Number of append batches the ingest tail is split into.
const INGEST_BATCHES: usize = 4;

fn shards_from_env() -> Vec<usize> {
    shard_list("CINCT_SHARDS", &[1, 2, 4, 8])
}

fn prune_shards_from_env() -> Vec<usize> {
    shard_list("CINCT_PRUNE_SHARDS", &[2, 8, 32])
}

fn shard_list(var: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Assert the sharded index answers exactly like the monolithic one:
/// counts, occurrence listings under the global trajectory-ID namespace,
/// recovered trajectories, and a mixed engine batch.
fn assert_outcome_identity(
    mono: &CinctIndex,
    sharded: &ShardedCinct,
    patterns: &[Vec<u32>],
    tag: &str,
) {
    assert_eq!(
        sharded.num_trajectories(),
        mono.num_trajectories(),
        "{tag}: trajectory count"
    );
    for p in patterns {
        let path = Path::new(p);
        assert_eq!(sharded.count(path), mono.count(path), "{tag}: count {p:?}");
        assert_eq!(
            sharded
                .occurrences(path)
                .expect("locate enabled")
                .collect_sorted(),
            mono.occurrences(path)
                .expect("locate enabled")
                .collect_sorted(),
            "{tag}: occurrences {p:?}"
        );
    }
    let stride = (mono.num_trajectories() / 200).max(1);
    for g in (0..mono.num_trajectories()).step_by(stride) {
        assert_eq!(
            sharded.trajectory(g),
            mono.trajectory(g),
            "{tag}: trajectory {g}"
        );
    }
    // The batch engine sees both as interchangeable PathQuery backends.
    let batch: Vec<Query> = patterns
        .iter()
        .take(64)
        .flat_map(|p| [Query::count(p), Query::occurrences(p)])
        .collect();
    let a = QueryEngine::new(mono).run(&batch);
    let b = QueryEngine::new(sharded).run(&batch);
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x.value, y.value, "{tag}: engine outcome {i}");
    }
}

fn ns_per_op(d: std::time::Duration, ops: usize) -> f64 {
    d.as_secs_f64() * 1e9 / ops.max(1) as f64
}

/// One measured shard configuration.
struct ShardResult {
    requested: usize,
    actual: usize,
    build_secs: f64,
    count_ns: f64,
    occur_ns: f64,
    /// Occurrence workload with fan-out parallelism on (`threads(0)`) —
    /// informational, never gated (host-parallelism dependent).
    occur_par_ns: f64,
}

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let reps: usize = std::env::var("CINCT_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let shard_counts = shards_from_env();
    let out_path =
        std::env::var("CINCT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR5.json".to_string());

    println!("== Shard path: sharded vs monolithic corpus serving (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let n_edges = ds.n_edges();
    let trajs = &ds.trajectories;
    let symbols: usize = trajs.iter().map(Vec::len).sum::<usize>() + trajs.len() + 1;
    println!(
        "corpus: {} trajectories, {} edges, {} symbols; host parallelism {}\n",
        trajs.len(),
        n_edges,
        symbols,
        rayon::current_num_threads()
    );

    let index_builder = CinctBuilder::new().locate_sampling(LOCATE_RATE);
    let patterns = sample_patterns(trajs, PATTERN_LEN, n_queries, 5005);

    // --- Section 1 baseline: the monolithic index. ---
    let mono = index_builder.build(trajs, n_edges);
    let mono_build = time_best_of(reps, || {
        std::hint::black_box(index_builder.build(trajs, n_edges));
    });
    let mono_count = time_best_of(reps, || {
        for p in &patterns {
            std::hint::black_box(mono.count_path(p));
        }
    });
    let mono_occur = time_best_of(reps, || {
        for p in &patterns {
            std::hint::black_box(
                mono.occurrences(Path::new(p))
                    .expect("locate enabled")
                    .count(),
            );
        }
    });
    let (mono_count_ns, mono_occur_ns) = (
        ns_per_op(mono_count, patterns.len()),
        ns_per_op(mono_occur, patterns.len()),
    );
    println!(
        "monolithic: build {:.3}s ({:.0} sym/s), count {:.0} ns/op, occurrences {:.0} ns/op\n",
        mono_build.as_secs_f64(),
        symbols as f64 / mono_build.as_secs_f64(),
        mono_count_ns,
        mono_occur_ns
    );

    // --- Sections 1–3: the shard-count sweep. ---
    let mut rows: Vec<ShardResult> = Vec::new();
    println!(
        "{:<8} {:>7} {:>10} {:>9} {:>13} {:>9} {:>13} {:>9}",
        "shards",
        "actual",
        "build s",
        "b-speedup",
        "count ns/op",
        "c-ratio",
        "occur ns/op",
        "o-ratio"
    );
    for &k in &shard_counts {
        // Shard *builds* fan out across all cores; the gated *query*
        // ratios are measured with sequential fan-out so they compare
        // across hosts (per-query scope threads on the shim measure the
        // host's spawn cost, not the index — the parallel fan-out row
        // below records that separately, ungated).
        let builder = ShardedBuilder::new()
            .shards(k)
            .index_builder(index_builder)
            .threads(0);
        let mut sharded = builder.build(trajs, n_edges);
        let build = time_best_of(reps, || {
            std::hint::black_box(builder.build(trajs, n_edges));
        });
        sharded.set_fan_out_threads(1);
        let count = time_best_of(reps, || {
            for p in &patterns {
                std::hint::black_box(sharded.count(Path::new(p)));
            }
        });
        let occur = time_best_of(reps, || {
            for p in &patterns {
                std::hint::black_box(
                    sharded
                        .occurrences(Path::new(p))
                        .expect("locate enabled")
                        .count(),
                );
            }
        });
        assert_outcome_identity(&mono, &sharded, &patterns, &format!("K={k}"));
        // Parallel fan-out: outcome-identical (asserted), wall-clock
        // recorded for the scaling story but never gated.
        sharded.set_fan_out_threads(0);
        let occur_par = time_best_of(reps, || {
            for p in &patterns {
                std::hint::black_box(
                    sharded
                        .occurrences(Path::new(p))
                        .expect("locate enabled")
                        .count(),
                );
            }
        });
        assert_outcome_identity(
            &mono,
            &sharded,
            &patterns,
            &format!("K={k} parallel fan-out"),
        );
        let r = ShardResult {
            requested: k,
            actual: sharded.num_shards(),
            build_secs: build.as_secs_f64(),
            count_ns: ns_per_op(count, patterns.len()),
            occur_ns: ns_per_op(occur, patterns.len()),
            occur_par_ns: ns_per_op(occur_par, patterns.len()),
        };
        println!(
            "{:<8} {:>7} {:>10.3} {:>8.2}x {:>13.0} {:>8.2}x {:>13.0} {:>8.2}x",
            r.requested,
            r.actual,
            r.build_secs,
            mono_build.as_secs_f64() / r.build_secs,
            r.count_ns,
            mono_count_ns / r.count_ns,
            r.occur_ns,
            mono_occur_ns / r.occur_ns,
        );
        rows.push(r);
    }
    println!("\nall shard configurations outcome-identical to monolithic: true");

    // --- Section 4: incremental ingest (append + compact). ---
    let k_ing = shard_counts.iter().copied().max().unwrap_or(4).max(2);
    let base_len = ((trajs.len() as f64 * BASE_FRACTION) as usize).max(1);
    let (base, tail) = trajs.split_at(base_len);
    // Sequential builds on both sides: the gated append-vs-rebuild ratio
    // must not depend on how many cores the rebuild could fan out over.
    let builder = ShardedBuilder::new()
        .shards(k_ing)
        .index_builder(index_builder)
        .threads(1);
    let rebuild = time_best_of(reps, || {
        std::hint::black_box(builder.build(trajs, n_edges));
    });
    let mut grown = builder.build(base, n_edges);
    let batch_len = tail.len().div_ceil(INGEST_BATCHES).max(1);
    let t0 = std::time::Instant::now();
    for batch in tail.chunks(batch_len) {
        grown.append_batch(batch).expect("ingest batch is valid");
    }
    let append_secs = t0.elapsed().as_secs_f64();
    let shards_after_append = grown.num_shards();
    assert_outcome_identity(&mono, &grown, &patterns, "after append");
    let t0 = std::time::Instant::now();
    grown.compact(k_ing).expect("compact to k_ing shards");
    let compact_secs = t0.elapsed().as_secs_f64();
    assert_outcome_identity(&mono, &grown, &patterns, "after compact");
    let append_speedup = rebuild.as_secs_f64() / append_secs.max(1e-9);
    println!(
        "ingest: {}% base + {} append batches -> {} shards in {append_secs:.3}s \
         (full {k_ing}-shard rebuild {:.3}s, {append_speedup:.2}x); compact back to \
         {k_ing} shards {compact_secs:.3}s; identity preserved throughout",
        (BASE_FRACTION * 100.0) as u32,
        tail.chunks(batch_len).len(),
        shards_after_append,
        rebuild.as_secs_f64(),
    );

    // --- Section 5: shard pruning on selective workloads. ---
    //
    // Membership pruning skips a shard when it lacks *any* pattern edge,
    // so it pays exactly when per-shard alphabets don't saturate. On the
    // dense Singapore random walks every edge lands in ~64 trajectories
    // and all K=8 shard alphabets converge to the full σ=5k — nothing to
    // skip. The Chess corpus (paper Table III's large-alphabet dataset:
    // Zipf-picked continuations over a σ≈200k game DAG) is the workload
    // the metadata exists for: tail edges appear in a handful of games,
    // so a selective pattern's rarest edge pins it to one or two shards.
    // PERFORMANCE.md ("Shard pruning cost model") derives the crossover.
    let prune_counts = prune_shards_from_env();
    let prune_out =
        std::env::var("CINCT_PRUNE_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    let pds = cinct_datasets::chess(scale);
    let (ptrajs, pn_edges) = (&pds.trajectories, pds.n_edges());
    let psymbols: usize = ptrajs.iter().map(Vec::len).sum::<usize>() + ptrajs.len() + 1;
    let pmono = CinctBuilder::new().build(ptrajs, pn_edges);
    let selective = selective_patterns(ptrajs, PATTERN_LEN, n_queries, 7007);
    let mono_sel = time_best_of(reps, || {
        for p in &selective {
            std::hint::black_box(pmono.count_path(p));
        }
    });
    let mono_sel_ns = ns_per_op(mono_sel, selective.len());
    println!(
        "\n== Shard pruning: selective counting (rarest-percentile patterns, {} corpus: \
         {} trajectories, {} edges, {} symbols) ==\n\
         monolithic selective count: {mono_sel_ns:.0} ns/op\n",
        pds.name,
        ptrajs.len(),
        pn_edges,
        psymbols
    );
    println!(
        "{:<8} {:>7} {:>9} {:>13} {:>15} {:>12} {:>12}",
        "shards", "actual", "skipped", "pruned ns/op", "unpruned ns/op", "vs-unpruned", "vs-mono"
    );
    struct PruneRow {
        requested: usize,
        actual: usize,
        skipped_fraction: f64,
        pruned_ns: f64,
        unpruned_ns: f64,
    }
    let mut prune_rows: Vec<PruneRow> = Vec::new();
    for &k in &prune_counts {
        let builder = ShardedBuilder::new().shards(k).threads(0);
        let mut sharded = builder.build(ptrajs, pn_edges);
        // Sequential fan-out for the same host-transfer reason as the
        // gated section-2 ratios: the pruning win is fewer backward
        // searches, not scope-thread scheduling.
        sharded.set_fan_out_threads(1);
        sharded.set_pruning(true);
        let pruned = time_best_of(reps, || {
            for p in &selective {
                std::hint::black_box(sharded.count(Path::new(p)));
            }
        });
        // How much of the fan-out the metadata skipped, decision by
        // decision (same call the query path makes).
        let (mut skipped, mut probes) = (0usize, 0usize);
        for p in &selective {
            for s in 0..sharded.num_shards() {
                probes += 1;
                if sharded.pruned_edge(s, Path::new(p)).is_some() {
                    skipped += 1;
                }
            }
        }
        sharded.set_pruning(false);
        let unpruned = time_best_of(reps, || {
            for p in &selective {
                std::hint::black_box(sharded.count(Path::new(p)));
            }
        });
        // Outcome identity: pruning on, pruning off, monolithic.
        for p in &selective {
            let want = pmono.count_path(p);
            assert_eq!(sharded.count(Path::new(p)), want, "unpruned K={k} {p:?}");
            sharded.set_pruning(true);
            assert_eq!(sharded.count(Path::new(p)), want, "pruned K={k} {p:?}");
            sharded.set_pruning(false);
        }
        sharded.set_pruning(true);
        let r = PruneRow {
            requested: k,
            actual: sharded.num_shards(),
            skipped_fraction: skipped as f64 / probes.max(1) as f64,
            pruned_ns: ns_per_op(pruned, selective.len()),
            unpruned_ns: ns_per_op(unpruned, selective.len()),
        };
        println!(
            "{:<8} {:>7} {:>8.0}% {:>13.0} {:>15.0} {:>11.2}x {:>11.2}x",
            r.requested,
            r.actual,
            r.skipped_fraction * 100.0,
            r.pruned_ns,
            r.unpruned_ns,
            r.unpruned_ns / r.pruned_ns,
            mono_sel_ns / r.pruned_ns,
        );
        prune_rows.push(r);
    }
    println!("\npruned, unpruned and monolithic outcome-identical on every selective pattern");

    // --- JSON report. ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"queries\": {}, \
         \"reps\": {reps}, \"pattern_len\": {PATTERN_LEN}, \"locate_sampling\": {LOCATE_RATE}, \
         \"symbols\": {symbols}, \"n_edges\": {n_edges}, \"host_parallelism\": {}, \
         \"note\": \"build speedups > 1 need multi-core hosts (shard builds are fanned \
         out); query ratios < 1 are the fan-out overhead — a K-shard count is K backward \
         searches (PERFORMANCE.md, Sharded serving cost model)\"}},",
        ds.name,
        patterns.len(),
        rayon::current_num_threads()
    );
    let _ = writeln!(
        json,
        "  \"monolithic\": {{\"build_secs\": {:.4}, \"sym_per_sec\": {:.0}, \
         \"count_ns_per_op\": {:.1}, \"occurrence_ns_per_op\": {:.1}}},",
        mono_build.as_secs_f64(),
        symbols as f64 / mono_build.as_secs_f64(),
        mono_count_ns,
        mono_occur_ns
    );
    json.push_str("  \"shard_configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"actual_shards\": {}, \"build_secs\": {:.4}, \
             \"sym_per_sec\": {:.0}, \"build_speedup_vs_mono\": {:.3}, \
             \"count_ns_per_op\": {:.1}, \"count_speedup_vs_mono\": {:.3}, \
             \"occurrence_ns_per_op\": {:.1}, \"occurrence_speedup_vs_mono\": {:.3}, \
             \"parallel_fanout_occurrence_ns_per_op\": {:.1}, \
             \"parallel_fanout_occurrence_speedup_vs_mono\": {:.3}, \"identity\": true}}{}",
            r.requested,
            r.actual,
            r.build_secs,
            symbols as f64 / r.build_secs,
            mono_build.as_secs_f64() / r.build_secs,
            r.count_ns,
            mono_count_ns / r.count_ns,
            r.occur_ns,
            mono_occur_ns / r.occur_ns,
            r.occur_par_ns,
            mono_occur_ns / r.occur_par_ns,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"incremental_ingest\": {{\"base_fraction\": {BASE_FRACTION}, \"batches\": {}, \
         \"target_shards\": {k_ing}, \"shards_after_append\": {shards_after_append}, \
         \"append_total_secs\": {append_secs:.4}, \"rebuild_secs\": {:.4}, \
         \"append_vs_rebuild_speedup\": {append_speedup:.3}, \
         \"compact_secs\": {compact_secs:.4}, \"identity\": true}}",
        tail.chunks(batch_len).len(),
        rebuild.as_secs_f64()
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");

    // --- Pruning JSON report (its own baseline: BENCH_PR10.json). ---
    let mut pjson = String::from("{\n");
    let _ = writeln!(
        pjson,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"queries\": {}, \
         \"reps\": {reps}, \"pattern_len\": {PATTERN_LEN}, \"symbols\": {psymbols}, \
         \"n_edges\": {pn_edges}, \"host_parallelism\": {}, \
         \"note\": \"selective patterns contain bottom-percentile-frequency edges, so most \
         shards can prove non-match from membership metadata alone; the gated ratio is \
         pruned vs unpruned count time on the same corpus in the same run \
         (PERFORMANCE.md, Shard pruning cost model)\"}},",
        pds.name,
        selective.len(),
        rayon::current_num_threads()
    );
    let _ = writeln!(
        pjson,
        "  \"monolithic\": {{\"selective_count_ns_per_op\": {mono_sel_ns:.1}}},"
    );
    pjson.push_str("  \"pruning\": [\n");
    for (i, r) in prune_rows.iter().enumerate() {
        let _ = writeln!(
            pjson,
            "    {{\"shards\": {}, \"actual_shards\": {}, \"skipped_fraction\": {:.4}, \
             \"pruned_count_ns_per_op\": {:.1}, \"unpruned_count_ns_per_op\": {:.1}, \
             \"pruned_count_speedup_vs_unpruned\": {:.3}, \
             \"pruned_count_speedup_vs_mono\": {:.3}, \"identity\": true}}{}",
            r.requested,
            r.actual,
            r.skipped_fraction,
            r.pruned_ns,
            r.unpruned_ns,
            r.unpruned_ns / r.pruned_ns,
            mono_sel_ns / r.pruned_ns,
            if i + 1 < prune_rows.len() { "," } else { "" }
        );
    }
    pjson.push_str("  ]\n}\n");
    std::fs::write(&prune_out, &pjson).expect("write pruning bench JSON");
    println!("wrote {prune_out}");
    cinct_bench::enforce_baseline_from_env(&json);
}
