//! CI smoke client for `cinct serve`: exercises every endpoint of a
//! running server, checks the error taxonomy over the wire, validates
//! the `/metrics` exposition against the Prometheus text grammar, and
//! (with `--shutdown`) drives a graceful drain and verifies new
//! connections are refused afterwards.
//!
//! Usage: `serveclient <host:port> [--shutdown]
//!                                 [--count-min EDGE N] [--expect-degraded]
//!                                 [--wait-count EDGE N SECS]
//!                                 [--expect-role ROLE] [--promote]`
//!
//! `--count-min EDGE N` is the crash-recovery probe: assert the server
//! is healthy and the count of single-edge path `[EDGE]` is at least
//! `N`, then exit (used after `kill -9` + restart to prove WAL-acked
//! appends survived). `--expect-degraded` is the quarantine probe:
//! assert `/healthz` says `degraded` and queries answer 200 with the
//! `degraded` marker and a non-empty quarantine report.
//!
//! The replication probes: `--wait-count EDGE N SECS` polls until the
//! count of `[EDGE]` reaches `N` (a follower converging on shipped
//! appends) or fails after `SECS` seconds; `--expect-role ROLE`
//! asserts `/healthz` reports that replication role; `--promote` flips
//! a follower to primary over `POST /admin/promote` and verifies the
//! role changed.
//!
//! Exits non-zero on the first failed check (every check is an
//! `assert!`), so a CI job can background `cinct serve`, point this
//! binary at it, and fail the build on any protocol regression.

use cinct_serve::json::{obj, Json};
use cinct_serve::{Client, RetryPolicy};
use std::time::{Duration, Instant};

/// Minimal Prometheus text-format grammar check: every line is a
/// `# HELP`/`# TYPE` comment or `name[{labels}] value` with a metric
/// name matching `[a-zA-Z_:][a-zA-Z0-9_:]*` and a float-parseable value.
fn check_prometheus_grammar(text: &str) {
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "comment line is neither HELP nor TYPE: {line:?}"
            );
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value: {line:?}"));
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
                    .unwrap_or(false)
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in line: {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "metrics exposition has no samples");
}

fn count_path(client: &mut Client, path: &[u32]) -> usize {
    let body = obj(&[("path", Json::from(path.to_vec())), ("cache", false.into())]);
    let (status, resp) = client.post_json("/v1/count", &body).expect("count");
    assert_eq!(status, 200, "count failed: {}", resp.render());
    resp.get("count").and_then(Json::as_usize).expect("count")
}

fn error_kind(resp: &Json) -> Option<&str> {
    resp.get("error")?.get("kind")?.as_str()
}

/// Connect with the retry policy: the smoke paths double as exercise
/// for the client's reconnect/backoff machinery (a server still coming
/// up right after a restart is exactly what retries are for).
fn connect(addr: &str) -> Client {
    Client::connect_with(
        addr,
        RetryPolicy {
            attempts: 6,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            timeout: Duration::from_secs(5),
        },
    )
    .expect("connect")
}

/// `/healthz`, parsed: the body is a JSON object with `status`, `role`,
/// `wal`, and `replication` members.
fn healthz(client: &mut Client) -> Json {
    let (status, body) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200, "healthz status: {body}");
    Json::parse(&body).expect("healthz JSON")
}

fn health_status(health: &Json) -> &str {
    health
        .get("status")
        .and_then(Json::as_str)
        .expect("healthz status field")
}

/// `--count-min EDGE N`: the post-crash-restart probe.
fn probe_count_min(addr: &str, edge: u32, min: usize) {
    let mut client = connect(addr);
    let health = healthz(&mut client);
    assert_eq!(health_status(&health), "ok", "healthz after restart");
    let n = count_path(&mut client, &[edge]);
    assert!(
        n >= min,
        "count of [{edge}] is {n}, expected >= {min}: acked appends lost across restart"
    );
    println!("count-min: count of [{edge}] = {n} >= {min}, healthz ok");
}

/// `--expect-degraded`: the quarantine probe.
fn probe_degraded(addr: &str) {
    let mut client = connect(addr);
    let health = healthz(&mut client);
    assert_eq!(health_status(&health), "degraded", "healthz degraded");
    let (status, resp) = client
        .post_json(
            "/v1/count",
            &obj(&[("path", Json::from(vec![0u32])), ("cache", false.into())]),
        )
        .expect("degraded count");
    assert_eq!(
        status,
        200,
        "degraded corpus must still answer: {}",
        resp.render()
    );
    assert_eq!(
        resp.get("degraded").and_then(Json::as_bool),
        Some(true),
        "response missing degraded marker: {}",
        resp.render()
    );
    let quarantined = resp
        .get("quarantined")
        .and_then(Json::as_arr)
        .expect("quarantined report");
    assert!(!quarantined.is_empty(), "empty quarantine report");
    let (status, body) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).expect("stats JSON");
    assert_eq!(stats.get("degraded").and_then(Json::as_bool), Some(true));
    println!(
        "degraded: healthz + markers present, {} shard(s) quarantined, queries 200",
        quarantined.len()
    );
}

/// `--wait-count EDGE N SECS`: the replication-convergence probe — poll
/// until the count of `[EDGE]` reaches `N` (a follower catching up on
/// shipped appends), failing after `SECS` seconds.
fn probe_wait_count(addr: &str, edge: u32, min: usize, secs: u64) {
    let mut client = connect(addr);
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let n = count_path(&mut client, &[edge]);
        if n >= min {
            println!("wait-count: count of [{edge}] = {n} >= {min}");
            return;
        }
        assert!(
            Instant::now() < deadline,
            "count of [{edge}] stuck at {n} < {min} after {secs}s: follower never converged"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// `--expect-role ROLE`: assert `/healthz` reports this replication
/// role (and, for a follower, that lag accounting is present).
fn probe_role(addr: &str, want: &str) {
    let mut client = connect(addr);
    let health = healthz(&mut client);
    assert_eq!(
        health.get("role").and_then(Json::as_str),
        Some(want),
        "role: {}",
        health.render()
    );
    assert!(
        health.get("replication").is_some(),
        "healthz missing replication block: {}",
        health.render()
    );
    println!("role: {want}");
}

/// `--promote`: flip a follower to primary over HTTP and verify the
/// role changed — the failover half of the CI replication smoke.
fn probe_promote(addr: &str) {
    let mut client = connect(addr);
    let (status, body) = client.post("/admin/promote", "{}").expect("promote");
    assert_eq!(status, 200, "promote: {body}");
    let health = healthz(&mut client);
    assert_eq!(
        health.get("role").and_then(Json::as_str),
        Some("primary"),
        "role after promote: {}",
        health.render()
    );
    println!("promote: role is primary");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!(
            "usage: serveclient <host:port> [--shutdown] [--count-min EDGE N] \
             [--expect-degraded] [--wait-count EDGE N SECS] [--expect-role ROLE] [--promote]"
        );
        std::process::exit(2);
    };
    let shutdown = args.iter().any(|a| a == "--shutdown");
    if let Some(i) = args.iter().position(|a| a == "--count-min") {
        let edge: u32 = args.get(i + 1).and_then(|v| v.parse().ok()).expect("EDGE");
        let min: usize = args.get(i + 2).and_then(|v| v.parse().ok()).expect("N");
        probe_count_min(addr, edge, min);
        return;
    }
    if args.iter().any(|a| a == "--expect-degraded") {
        probe_degraded(addr);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--wait-count") {
        let edge: u32 = args.get(i + 1).and_then(|v| v.parse().ok()).expect("EDGE");
        let min: usize = args.get(i + 2).and_then(|v| v.parse().ok()).expect("N");
        let secs: u64 = args.get(i + 3).and_then(|v| v.parse().ok()).expect("SECS");
        probe_wait_count(addr, edge, min, secs);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--expect-role") {
        let role = args.get(i + 1).expect("ROLE");
        probe_role(addr, role);
        return;
    }
    if args.iter().any(|a| a == "--promote") {
        probe_promote(addr);
        return;
    }

    let mut client = connect(addr.as_str());

    // Liveness + corpus shape. `/healthz` is a JSON object carrying the
    // status, the replication role, and WAL/lag accounting.
    let health = healthz(&mut client);
    assert_eq!(health_status(&health), "ok", "healthz");
    assert!(health.get("role").is_some(), "healthz missing role");
    assert!(health.get("wal").is_some(), "healthz missing wal block");
    let (status, body) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200, "stats");
    let stats = Json::parse(&body).expect("stats JSON");
    let shards = stats
        .get("shards")
        .and_then(Json::as_usize)
        .expect("shards");
    let trajectories = stats
        .get("trajectories")
        .and_then(Json::as_usize)
        .expect("trajectories");
    let locate = stats
        .get("locate_supported")
        .and_then(Json::as_bool)
        .expect("locate_supported");
    assert!(shards >= 1 && trajectories >= 1, "empty corpus served");
    println!("stats: {shards} shards, {trajectories} trajectories, locate={locate}");

    // Query → append → query: the count of [0] must grow by at least
    // the two appended single-edge trajectories. The append carries an
    // idempotency key (so it is retry-safe) and is then repeated
    // verbatim to prove the server deduplicates it.
    let before = count_path(&mut client, &[0]);
    let append_body = obj(&[("batch", Json::from(vec![vec![0u32], vec![0u32]]))]);
    let key = format!("serveclient-smoke-{}", std::process::id());
    let (status, resp) = client
        .append_idempotent(&append_body, &key)
        .expect("append");
    assert_eq!(status, 200, "append failed: {}", resp.render());
    assert_eq!(
        resp.get("deduplicated").and_then(Json::as_bool),
        Some(false),
        "first keyed append reported deduplicated"
    );
    let (status, retried) = client
        .append_idempotent(&append_body, &key)
        .expect("append retry");
    assert_eq!(status, 200);
    assert_eq!(
        retried.get("deduplicated").and_then(Json::as_bool),
        Some(true),
        "retried keyed append was applied twice: {}",
        retried.render()
    );
    let assigned = resp.get("assigned").expect("assigned");
    let (start, end) = (
        assigned.get("start").and_then(Json::as_usize).unwrap(),
        assigned.get("end").and_then(Json::as_usize).unwrap(),
    );
    assert_eq!(end - start, 2, "append assigned {start}..{end}");
    let epoch = resp.get("epoch").and_then(Json::as_usize).unwrap_or(0);
    assert!(epoch >= 1, "append did not advance the epoch");
    let after = count_path(&mut client, &[0]);
    assert!(
        after >= before + 2,
        "count of [0] went {before} -> {after} across an append of two [0] trajectories"
    );
    println!("append: assigned [{start}, {end}), epoch {epoch}, count {before} -> {after}");

    // Extract one of the trajectories we just appended.
    let (status, resp) = client
        .post_json("/v1/extract", &obj(&[("trajectory", start.into())]))
        .expect("extract");
    assert_eq!(status, 200, "extract failed: {}", resp.render());
    assert_eq!(
        resp.get("symbols")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1),
        "extracted trajectory should be the appended [0]"
    );

    // Locate honours the corpus's capability.
    let (status, resp) = client
        .post_json("/v1/locate", &obj(&[("path", Json::from(vec![0u32]))]))
        .expect("locate");
    if locate {
        assert_eq!(status, 200, "locate failed: {}", resp.render());
        let total = resp.get("total").and_then(Json::as_usize).expect("total");
        assert!(total >= 2, "locate total {total} < appended occurrences");
    } else {
        assert_eq!(status, 422, "locate on a count-only corpus");
        assert_eq!(error_kind(&resp), Some("locate_unsupported"));
    }

    // Error taxonomy over the wire: client faults are typed 4xx.
    let (status, resp) = client
        .post_json(
            "/v1/count",
            &obj(&[("path", Json::from(vec![99_999_999u64]))]),
        )
        .expect("unknown edge probe");
    assert_eq!(status, 400, "unknown edge status");
    assert_eq!(error_kind(&resp), Some("unknown_edge"));
    let (status, body) = client
        .post("/v1/count", "{\"path\": [1,")
        .expect("bad json");
    let resp = Json::parse(&body).expect("error body is JSON");
    assert_eq!(status, 400, "malformed JSON status");
    assert_eq!(error_kind(&resp), Some("malformed_json"));
    let (status, body) = client
        .post("/v1/count", "{\"path\": []}")
        .expect("empty pattern");
    let resp = Json::parse(&body).expect("error body is JSON");
    assert_eq!(status, 400, "empty pattern status");
    assert_eq!(error_kind(&resp), Some("empty_pattern"));
    let (status, _) = client.get("/no/such/route").expect("404 probe");
    assert_eq!(status, 404, "unknown route");
    println!("error taxonomy: unknown_edge/malformed_json/empty_pattern/404 all typed");

    // Metrics exposition: grammar-valid and carrying the serve catalog.
    let (status, text) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200, "metrics");
    check_prometheus_grammar(&text);
    for name in [
        "cinct_serve_requests_total",
        "cinct_serve_appends_total",
        "cinct_serve_epoch",
        "cinct_queries_total",
    ] {
        assert!(text.contains(name), "metrics exposition missing {name}");
    }
    println!("metrics: Prometheus grammar valid, serve + core catalogs present");

    if shutdown {
        let (status, body) = client.post("/admin/shutdown", "{}").expect("shutdown");
        assert_eq!(status, 200, "shutdown");
        let ack = Json::parse(&body).expect("shutdown ack is JSON");
        assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));
        // Drain must stick: within a few seconds new connections are
        // refused (the listener is closed before workers finish).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let refused = Client::connect(addr.as_str())
                .and_then(|mut c| c.get("/healthz"))
                .is_err();
            if refused {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "server still accepting connections after drain"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        println!("drain: new connections refused");
    }
    println!("serveclient: all checks passed");
}
