//! Fig. 11: query length |P| vs suffix-range search time on the Singapore
//! dataset. All methods grow linearly in |P|; CiNCT has the smallest slope.
//!
//! Run: `cargo run -p cinct-bench --release --bin fig11`

use cinct_bench::report::{f2, Table};
use cinct_bench::{
    build_variant, queries_from_env, sample_patterns, scale_from_env, time_queries, ALL_VARIANTS,
};
use cinct_bwt::TrajectoryString;

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    println!("== Fig. 11: |P| vs search time, Singapore (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let built: Vec<_> = ALL_VARIANTS
        .iter()
        .map(|&v| build_variant(v, &ts, ds.n_edges()))
        .collect();
    let mut header = vec!["|P|".to_string()];
    header.extend(built.iter().map(|b| b.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for plen in (2..=20).step_by(2) {
        let patterns = sample_patterns(&ds.trajectories, plen, n_queries, 1000 + plen as u64);
        let mut row = vec![plen.to_string()];
        for b in &built {
            let t = time_queries(b.index.as_ref(), &patterns);
            row.push(f2(t.mean_us));
        }
        table.row(row);
    }
    table.print();
    println!("\n(values: mean microseconds per suffix-range query)");
    println!("Shape check: linear growth in |P| for all methods; CiNCT has the");
    println!("slowest growth (paper Fig. 11).");
}
