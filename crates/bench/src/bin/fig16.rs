//! Fig. 16: index construction time on Singapore, broken down into the
//! BWT, wavelet-structure build, and (for CiNCT) the ET-graph pipeline —
//! all the operations the other variants do not need.
//!
//! Run: `cargo run -p cinct-bench --release --bin fig16`

use cinct::CinctBuilder;
use cinct_bench::report::Table;
use cinct_bench::{build_variant, scale_from_env, Variant};
use cinct_bwt::TrajectoryString;

fn main() {
    let scale = scale_from_env();
    println!("== Fig. 16: index construction time, Singapore (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    println!("|T| = {} symbols, sigma = {}\n", ts.len(), ts.sigma());

    // CiNCT with per-phase timings. The paper's "BWT" bar absorbs every
    // stage outside the ET-graph and WT builds (SA, BWT derivation, and
    // the SA-byproduct trajectory directory), so the three columns sum to
    // the total.
    let (_, timings) = CinctBuilder::new().build_from_trajectory_string(&ts, ds.n_edges());
    let bwt_col = timings.total() - timings.et_graph_build - timings.wt_build;
    let mut table = Table::new(&["Method", "BWT s", "ET-graph s", "WT-build s", "total s"]);
    table.row(vec![
        "CiNCT".into(),
        format!("{:.2}", bwt_col.as_secs_f64()),
        format!("{:.2}", timings.et_graph_build.as_secs_f64()),
        format!("{:.2}", timings.wt_build.as_secs_f64()),
        format!("{:.2}", timings.total().as_secs_f64()),
    ]);
    // Baselines: total only (BWT is shared; the remainder is WT build).
    for v in [
        Variant::IcbHuff { b: 63 },
        Variant::IcbWm { b: 63 },
        Variant::Ufmi,
        Variant::FmGmr,
        Variant::FmApHyb,
    ] {
        let built = build_variant(v, &ts, ds.n_edges());
        table.row(vec![
            built.name.clone(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.2}", built.build_secs),
        ]);
    }
    table.print();
    println!("\nShape check (paper Fig. 16): CiNCT's construction is comparable");
    println!("to ICB-Huff (second fastest); the ET-graph phase is a small");
    println!("fraction of the total, and everything is linear in |T|.");
}
