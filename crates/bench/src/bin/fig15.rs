//! Fig. 15: sub-path extraction time. Each index extracts the entire text
//! (`l = |T|` from row 0); reported as microseconds per symbol.
//! (FM-AP-HYB is included here — unlike the paper, our implementation does
//! support `access` — and serves as an extra data point.)
//!
//! Run: `cargo run -p cinct-bench --release --bin fig15`

use cinct_bench::report::Table;
use cinct_bench::workload::time_full_extraction;
use cinct_bench::{build_variant, scale_from_env, ALL_VARIANTS};
use cinct_bwt::TrajectoryString;

fn main() {
    let scale = scale_from_env();
    println!("== Fig. 15: full-text extraction time (scale={scale}) ==\n");
    let mut header = vec!["Dataset".to_string()];
    header.extend(ALL_VARIANTS.iter().map(|v| v.name()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for ds in cinct_datasets::all_table_datasets(scale) {
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let mut row = vec![ds.name.to_string()];
        for &v in ALL_VARIANTS.iter() {
            let built = build_variant(v, &ts, ds.n_edges());
            let us_per_sym = time_full_extraction(built.index.as_ref());
            row.push(format!("{us_per_sym:.3}"));
        }
        table.row(row);
        eprintln!("  done {}", ds.name);
    }
    table.print();
    println!("\n(values: microseconds per extracted symbol)");
    println!("Shape check (paper Fig. 15): CiNCT extracts fastest — about twice");
    println!("as fast as UFMI — thanks to the shallow HWT + PseudoRank.");
}
