//! Replication cost model: what does WAL shipping cost a follower, and
//! how fast does a lagging (or fresh) replica converge? Feeds
//! `BENCH_PR9.json`.
//!
//! Sections, all at the transport-free service seam (`wal_read_from` →
//! `apply_replicated`, exactly what `Replicator::step` drives over
//! HTTP) so the numbers isolate replication work from socket noise:
//!
//! 1. **Catch-up** — the primary journals every append batch first,
//!    then a lagging follower pulls the whole backlog: records/s and
//!    trajectories/s of bulk apply.
//! 2. **Steady-state ship** — append one batch on the primary, ship it
//!    immediately: the per-round append→follower-applied latency a
//!    tailing replica sees.
//! 3. **Snapshot bootstrap** — after the primary compacts its history,
//!    a fresh follower must bootstrap: snapshot serialize + install
//!    time and stream size.
//!
//! Every section ends in a mirror-identity assert against the primary.
//! Absolute numbers are host-dependent (page cache, allocator); nothing
//! here is gated — no `speedup` fields by design. Knobs: `CINCT_SCALE`
//! (default 0.25), `CINCT_BENCH_REPS` (default 3), `CINCT_SERVE_BATCH`
//! (default 64), `CINCT_BENCH_OUT` (default `BENCH_PR9.json`).

use std::fmt::Write as _;
use std::time::Instant;

use cinct::{Durability, Path, PathQuery, ShardedBuilder, Wal, WalRead};
use cinct_serve::CorpusService;

const SHARDS: usize = 4;
const LOCATE_RATE: usize = 32;
const BASE_FRACTION: f64 = 0.9;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn percentile_us(lat: &mut [f64], q: f64) -> f64 {
    if lat.is_empty() {
        return 0.0;
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lat[((lat.len() - 1) as f64 * q) as usize]
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cinct-replpath-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn durable_service(dir: &std::path::Path) -> CorpusService {
    let opened = cinct::ShardedCinct::open_dir(dir).expect("open corpus");
    let (wal, replay) = Wal::open(dir, Durability::Fast).expect("open wal");
    CorpusService::new_durable(opened, 0, 1, wal, replay).expect("durable service")
}

/// One full ship: pull the primary's log from the follower's position
/// and apply until caught up. Returns records applied.
fn ship(primary: &CorpusService, follower: &CorpusService) -> usize {
    let mut applied = 0usize;
    loop {
        let from = follower.wal_next_seq().expect("follower wal");
        match primary.wal_read_from(from).expect("read wal") {
            WalRead::Records(recs) => {
                if recs.is_empty() {
                    return applied;
                }
                applied += follower.apply_replicated(&recs).expect("apply");
            }
            WalRead::Compacted { .. } => panic!("history unexpectedly compacted"),
        }
    }
}

fn assert_mirror(primary: &CorpusService, follower: &CorpusService, what: &str) {
    let probes: [&[u32]; 3] = [&[0, 1], &[1, 2], &[2, 3]];
    primary.with_corpus(|p| {
        follower.with_corpus(|f| {
            assert_eq!(
                f.num_trajectories(),
                p.num_trajectories(),
                "{what}: trajectory count diverged"
            );
            for pat in probes {
                assert_eq!(
                    f.count(Path::new(pat)),
                    p.count(Path::new(pat)),
                    "{what}: count diverged on {pat:?}"
                );
            }
        })
    });
}

fn main() {
    let scale = env_f64("CINCT_SCALE", 0.25);
    let reps = env_usize("CINCT_BENCH_REPS", 3);
    let batch_len = env_usize("CINCT_SERVE_BATCH", 64);
    let out_path =
        std::env::var("CINCT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());

    println!("== Replication path: WAL shipping + snapshot bootstrap (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let n_edges = ds.n_edges();
    let trajs = &ds.trajectories;
    let base_len = ((trajs.len() as f64 * BASE_FRACTION) as usize)
        .max(1)
        .min(trajs.len());
    let (base, tail) = trajs.split_at(base_len);
    let batches: Vec<&[Vec<u32>]> = tail.chunks(batch_len.max(1)).collect();
    assert!(!batches.is_empty(), "scale too small: no append batches");
    let shipped_trajs: usize = batches.iter().map(|b| b.len()).sum();
    println!(
        "corpus: {} base trajectories, {} shipped in {} records of <= {batch_len}, \
         {n_edges} edges\n",
        base.len(),
        shipped_trajs,
        batches.len()
    );

    // Both roles start from the same saved seed, as a real deployment
    // would (`cinct serve --replica-of` over a copied directory).
    let seed = ShardedBuilder::new()
        .shards(SHARDS)
        .index_builder(cinct::CinctBuilder::new().locate_sampling(LOCATE_RATE))
        .threads(0)
        .build(base, n_edges);
    let (pdir, fdir) = (scratch("primary"), scratch("follower"));
    seed.save_dir(&pdir).expect("save primary seed");
    seed.save_dir(&fdir).expect("save follower seed");
    drop(seed);
    let primary = durable_service(&pdir);
    let follower = durable_service(&fdir);

    // --- 1: catch-up — the whole backlog journaled before the first
    // pull, the lagging-follower worst case. ---
    for (i, b) in batches.iter().enumerate() {
        primary
            .append_keyed(b, Some(&format!("ship-{i}")))
            .expect("primary append");
    }
    let t0 = Instant::now();
    let applied = ship(&primary, &follower);
    let catch_up_secs = t0.elapsed().as_secs_f64();
    assert_eq!(applied, batches.len());
    assert_mirror(&primary, &follower, "catch-up");
    let records_per_sec = applied as f64 / catch_up_secs;
    let trajs_per_sec = shipped_trajs as f64 / catch_up_secs;
    println!(
        "catch-up: {applied} records ({shipped_trajs} trajectories) in {:.1} ms \
         = {records_per_sec:.0} records/s, {trajs_per_sec:.0} trajectories/s",
        catch_up_secs * 1e3
    );

    // --- 2: steady-state — ship each record as it lands, the tailing
    // replica's per-round latency (journal + pull + apply). ---
    let mut lat = Vec::with_capacity(batches.len() * reps);
    for rep in 0..reps {
        for (i, b) in batches.iter().enumerate() {
            let t0 = Instant::now();
            primary
                .append_keyed(b, Some(&format!("tail-{rep}-{i}")))
                .expect("primary append");
            let n = ship(&primary, &follower);
            lat.push(t0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(n, 1);
        }
    }
    let ship_mean_us = lat.iter().sum::<f64>() / lat.len() as f64;
    let ship_p50_us = percentile_us(&mut lat, 0.50);
    let ship_p99_us = percentile_us(&mut lat, 0.99);
    assert_mirror(&primary, &follower, "steady-state");
    println!(
        "steady-state ship: mean {ship_mean_us:>8.1} us  p50 {ship_p50_us:>8.1}  \
         p99 {ship_p99_us:>8.1}  (append -> follower applied)"
    );

    // --- 3: snapshot bootstrap — the primary folds + reclaims its
    // history; a fresh follower must bootstrap from a snapshot. ---
    primary.save_dir(&pdir).expect("primary save");
    assert!(
        matches!(primary.wal_read_from(0), Ok(WalRead::Compacted { .. })),
        "save did not reclaim history"
    );
    let bdir = scratch("bootstrap");
    ShardedBuilder::new()
        .shards(SHARDS)
        .index_builder(cinct::CinctBuilder::new().locate_sampling(LOCATE_RATE))
        .threads(0)
        .build(base, n_edges)
        .save_dir(&bdir)
        .expect("save bootstrap seed");
    let fresh = durable_service(&bdir);
    let t0 = Instant::now();
    let stream = primary.snapshot_stream().expect("snapshot stream");
    let serialize_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = stream.len();
    let t0 = Instant::now();
    fresh.bootstrap_snapshot(&bdir, &stream).expect("bootstrap");
    let install_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_mirror(&primary, &fresh, "bootstrap");
    assert_eq!(fresh.wal_next_seq(), primary.wal_next_seq());
    println!(
        "snapshot bootstrap: {:.2} MiB serialized in {serialize_ms:.1} ms, \
         installed in {install_ms:.1} ms\n",
        snapshot_bytes as f64 / (1024.0 * 1024.0)
    );

    // --- JSON report (recorded, never gated: all host-dependent). ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"reps\": {reps}, \
         \"batch\": {batch_len}, \"shipped_records\": {}, \"shipped_trajectories\": \
         {shipped_trajs}, \"shards\": {SHARDS}, \"locate_sampling\": {LOCATE_RATE}, \
         \"n_edges\": {n_edges}, \"note\": \"WAL-shipping replication at the service \
         seam: bulk catch-up, per-record tailing, snapshot bootstrap. Every section \
         asserts mirror identity. Host-dependent; nothing gated (no speedup fields by \
         design)\"}},",
        ds.name,
        batches.len()
    );
    let _ = writeln!(
        json,
        "  \"catch_up\": {{\"records\": {applied}, \"trajectories\": {shipped_trajs}, \
         \"secs\": {catch_up_secs:.4}, \"records_per_sec\": {records_per_sec:.0}, \
         \"trajectories_per_sec\": {trajs_per_sec:.0}}},"
    );
    let _ = writeln!(
        json,
        "  \"steady_state_ship\": {{\"mean_us\": {ship_mean_us:.1}, \
         \"p50_us\": {ship_p50_us:.1}, \"p99_us\": {ship_p99_us:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"snapshot_bootstrap\": {{\"stream_bytes\": {snapshot_bytes}, \
         \"serialize_ms\": {serialize_ms:.1}, \"install_ms\": {install_ms:.1}, \
         \"mirror_identity\": true}}"
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write report");
    println!("report written to {out_path}");

    for d in [pdir, fdir, bdir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
