//! Design-choice ablations beyond the paper's figures:
//!
//! 1. **HWT vs wavelet matrix for the labeled BWT** — the paper picks a
//!    Huffman-shaped tree (§III-C2) because the label distribution is
//!    skewed; a WM would pay ⌈lg δ⌉ levels for every rank.
//! 2. **RRR vs plain bitmaps under the labels** — quantifies what the
//!    compressed backend buys once RML has already shrunk the entropy.
//! 3. **Correction-term width** — how many bits the packed `Z` terms
//!    actually need per ET-graph edge.
//!
//! Run: `cargo run -p cinct-bench --release --bin ablation`

use cinct::{CinctBuilder, LabelingStrategy, Rml};
use cinct_bench::report::{f2, Table};
use cinct_bench::scale_from_env;
use cinct_bwt::{bwt, CArray, TrajectoryString};
use cinct_succinct::{
    HuffmanWaveletTree, RankBitVec, RrrBitVec, SpaceUsage, SymbolSeq, WaveletMatrix,
};
use std::time::Instant;

fn time_ranks<S: SymbolSeq>(seq: &S, probes: &[(u32, usize)]) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0usize;
    for &(w, i) in probes {
        acc += seq.rank(w, i);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e9 / probes.len() as f64
}

fn main() {
    let scale = scale_from_env();
    println!("== Ablations: labeled-BWT container choices (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore2(scale);
    let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
    let (_, tbwt) = bwt(ts.text(), ts.sigma());
    let c = CArray::new(ts.text(), ts.sigma());
    let rml = Rml::from_text(ts.text(), ts.sigma(), LabelingStrategy::BigramSorted);
    let labeled = rml.label_bwt(&tbwt, &c);
    let n = labeled.len();
    println!(
        "labeled BWT: {} symbols, max label {}",
        n,
        labeled.iter().max().unwrap()
    );

    // Probes: rank of label 1 (the hot case) and of rarer labels.
    let probes: Vec<(u32, usize)> = (0..2048)
        .map(|k| {
            let label = 1 + (k % 3) as u32;
            (label, (k * 8191) % n)
        })
        .collect();

    let mut table = Table::new(&["Container", "bits/sym", "rank ns"]);
    {
        let s = HuffmanWaveletTree::<RrrBitVec>::with_params(&labeled, 63);
        table.row(vec![
            "HWT + RRR (CiNCT)".into(),
            f2(s.size_in_bits() as f64 / n as f64),
            f2(time_ranks(&s, &probes)),
        ]);
    }
    {
        let s = HuffmanWaveletTree::<RankBitVec>::new(&labeled);
        table.row(vec![
            "HWT + plain".into(),
            f2(s.size_in_bits() as f64 / n as f64),
            f2(time_ranks(&s, &probes)),
        ]);
    }
    {
        let s = WaveletMatrix::<RrrBitVec>::with_params(&labeled, 63);
        table.row(vec![
            "WM + RRR".into(),
            f2(s.size_in_bits() as f64 / n as f64),
            f2(time_ranks(&s, &probes)),
        ]);
    }
    {
        let s = WaveletMatrix::<RankBitVec>::new(&labeled);
        table.row(vec![
            "WM + plain".into(),
            f2(s.size_in_bits() as f64 / n as f64),
            f2(time_ranks(&s, &probes)),
        ]);
    }
    table.print();

    // Z-term width accounting.
    let (idx, _) = CinctBuilder::new().build_from_trajectory_string(&ts, ds.n_edges());
    let g = idx.rml().graph();
    println!(
        "\nET-graph: {} edges; total {} bytes = {:.1} bits/edge (targets + Z, packed)",
        g.num_edges(),
        g.size_in_bytes(),
        g.size_in_bytes() as f64 * 8.0 / g.num_edges() as f64
    );
    println!("\nExpected shape: HWT+RRR smallest; HWT beats WM on rank speed for");
    println!("label 1..3 because skewed labels sit near the Huffman root.");
}
