//! Durability cost model: what does an *acked* append cost once it is
//! journaled + fsynced to the WAL, versus PR 7's in-memory install?
//! Feeds `BENCH_PR8.json`.
//!
//! Sections:
//!
//! 1. **In-memory ack** — `CorpusService::append` without a WAL: the
//!    PR 7 baseline (index construction + O(K) install, no disk).
//! 2. **WAL ack, fsync** — `Durability::Durable`: journal + `fsync`
//!    before the ack returns. The delta over section 1 is the price of
//!    crash-surviving writes.
//! 3. **WAL ack, no fsync** — `Durability::Fast`: journal to the page
//!    cache only; isolates serialization cost from fsync cost.
//! 4. **Snapshot** — `save_dir` durable vs fast, plus WAL replay on
//!    reopen (records/s), asserted outcome-identical to the direct
//!    corpus.
//!
//! None of the emitted fields contain `speedup`, deliberately: fsync
//! latency is a property of the host's storage stack (CI runners span
//! tmpfs to spinning disks), so these numbers are recorded for the
//! cost model but never gated. Knobs: `CINCT_SCALE` (default 0.25),
//! `CINCT_BENCH_REPS` (default 3), `CINCT_SERVE_BATCH` (default 64),
//! `CINCT_BENCH_OUT` (default `BENCH_PR8.json`).

use std::fmt::Write as _;
use std::time::Instant;

use cinct::{Durability, Path, PathQuery, ShardedBuilder, ShardedCinct, Wal};
use cinct_serve::CorpusService;

const SHARDS: usize = 4;
const LOCATE_RATE: usize = 32;
const BASE_FRACTION: f64 = 0.9;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn percentile_us(lat: &mut [f64], q: f64) -> f64 {
    if lat.is_empty() {
        return 0.0;
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    lat[((lat.len() - 1) as f64 * q) as usize]
}

struct AckStats {
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Drive every batch through `svc.append`, timing each ack.
fn ack_pass(svc: &CorpusService, batches: &[&[Vec<u32>]], reps: usize) -> AckStats {
    let mut lat = Vec::with_capacity(batches.len() * reps);
    for rep in 0..reps {
        for (i, b) in batches.iter().enumerate() {
            // Unique key per logical write so dedup never short-circuits
            // the measured path.
            let key = format!("bench-{rep}-{i}");
            let t0 = Instant::now();
            svc.append_keyed(b, Some(&key)).expect("append");
            lat.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    let mean_us = lat.iter().sum::<f64>() / lat.len() as f64;
    AckStats {
        mean_us,
        p50_us: percentile_us(&mut lat, 0.50),
        p99_us: percentile_us(&mut lat, 0.99),
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("cinct-durapath-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

fn main() {
    let scale = env_f64("CINCT_SCALE", 0.25);
    let reps = env_usize("CINCT_BENCH_REPS", 3);
    let batch_len = env_usize("CINCT_SERVE_BATCH", 64);
    let out_path =
        std::env::var("CINCT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR8.json".to_string());

    println!("== Durability path: acked-append + snapshot cost (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let n_edges = ds.n_edges();
    let trajs = &ds.trajectories;
    let base_len = ((trajs.len() as f64 * BASE_FRACTION) as usize)
        .max(1)
        .min(trajs.len());
    let (base, tail) = trajs.split_at(base_len);
    let batches: Vec<&[Vec<u32>]> = tail.chunks(batch_len.max(1)).collect();
    assert!(!batches.is_empty(), "scale too small: no append batches");
    println!(
        "corpus: {} base trajectories, {} appended in {} batches of <= {batch_len}, \
         {n_edges} edges\n",
        base.len(),
        tail.len(),
        batches.len()
    );
    let build = || {
        ShardedBuilder::new()
            .shards(SHARDS)
            .index_builder(cinct::CinctBuilder::new().locate_sampling(LOCATE_RATE))
            .threads(0)
            .build(base, n_edges)
    };

    // --- 1: in-memory ack (the PR 7 append path). ---
    let svc = CorpusService::new(build(), 0, 1);
    let mem = ack_pass(&svc, &batches, reps);
    drop(svc);
    println!(
        "in-memory ack:   mean {:>8.1} us  p50 {:>8.1}  p99 {:>8.1}",
        mem.mean_us, mem.p50_us, mem.p99_us
    );

    // --- 2: WAL ack with fsync. ---
    let dir_fsync = scratch("fsync");
    let (wal, replay) = Wal::open(&dir_fsync, Durability::Durable).expect("wal");
    let svc = CorpusService::new_durable(build(), 0, 1, wal, replay).expect("durable service");
    let fsync = ack_pass(&svc, &batches, reps);
    drop(svc);
    println!(
        "WAL fsync ack:   mean {:>8.1} us  p50 {:>8.1}  p99 {:>8.1}  \
         (+{:.1} us over in-memory)",
        fsync.mean_us,
        fsync.p50_us,
        fsync.p99_us,
        fsync.mean_us - mem.mean_us
    );

    // --- 3: WAL ack without fsync (serialization cost only). ---
    let dir_fast = scratch("fast");
    let (wal, replay) = Wal::open(&dir_fast, Durability::Fast).expect("wal");
    let svc = CorpusService::new_durable(build(), 0, 1, wal, replay).expect("fast service");
    let nosync = ack_pass(&svc, &batches, reps);
    drop(svc);
    println!(
        "WAL no-fsync:    mean {:>8.1} us  p50 {:>8.1}  p99 {:>8.1}\n",
        nosync.mean_us, nosync.p50_us, nosync.p99_us
    );

    // --- 4: snapshot durable vs fast + replay identity. ---
    let mut direct = build();
    for b in &batches {
        direct.append_batch(b).expect("direct append");
    }
    let dir_save = scratch("save");
    let t0 = Instant::now();
    direct.save_dir(&dir_save).expect("durable save");
    let save_durable_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    direct
        .save_dir_with(&dir_save, Durability::Fast)
        .expect("fast save");
    let save_fast_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Replay: journal every batch, then recover and compare to direct.
    let dir_replay = scratch("replay");
    build().save_dir(&dir_replay).expect("save base");
    {
        let (mut wal, _) = Wal::open(&dir_replay, Durability::Durable).expect("wal");
        for (i, b) in batches.iter().enumerate() {
            wal.append(&format!("replay-{i}"), b).expect("journal");
        }
    }
    let t0 = Instant::now();
    let mut replayed = ShardedCinct::open_dir(&dir_replay).expect("reopen");
    let (_, records) = Wal::open(&dir_replay, Durability::Durable).expect("wal reopen");
    assert_eq!(records.len(), batches.len());
    for rec in &records {
        replayed.append_batch(&rec.batch).expect("replay");
    }
    let replay_secs = t0.elapsed().as_secs_f64();
    assert_eq!(replayed.num_trajectories(), direct.num_trajectories());
    for pat in [&[0u32, 1][..], &[1, 2], &[2, 3]] {
        assert_eq!(
            replayed.count(Path::new(pat)),
            direct.count(Path::new(pat)),
            "replayed corpus diverged on {pat:?}"
        );
    }
    println!(
        "snapshot: durable {save_durable_ms:.1} ms, fast {save_fast_ms:.1} ms; \
         replay: {} batches in {:.1} ms, identity preserved\n",
        records.len(),
        replay_secs * 1e3
    );

    // --- JSON report (no `speedup` fields: fsync cost is a property of
    // the host's storage stack and is recorded, never gated). ---
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"reps\": {reps}, \
         \"batch\": {batch_len}, \"append_batches\": {}, \"shards\": {SHARDS}, \
         \"locate_sampling\": {LOCATE_RATE}, \"n_edges\": {n_edges}, \
         \"note\": \"acked-append latency: in-memory (PR 7 semantics) vs WAL-journaled \
         with and without fsync. Absolute numbers are host-storage-dependent; nothing \
         here is gated (no speedup fields by design)\"}},",
        ds.name,
        batches.len()
    );
    let _ = writeln!(
        json,
        "  \"append_ack_in_memory\": {{\"mean_us\": {:.1}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}}},",
        mem.mean_us, mem.p50_us, mem.p99_us
    );
    let _ = writeln!(
        json,
        "  \"append_ack_wal_fsync\": {{\"mean_us\": {:.1}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"fsync_overhead_us\": {:.1}}},",
        fsync.mean_us,
        fsync.p50_us,
        fsync.p99_us,
        fsync.mean_us - mem.mean_us
    );
    let _ = writeln!(
        json,
        "  \"append_ack_wal_no_fsync\": {{\"mean_us\": {:.1}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}}},",
        nosync.mean_us, nosync.p50_us, nosync.p99_us
    );
    let _ = writeln!(
        json,
        "  \"snapshot\": {{\"save_durable_ms\": {save_durable_ms:.1}, \
         \"save_fast_ms\": {save_fast_ms:.1}, \"wal_replay_batches\": {}, \
         \"wal_replay_ms\": {:.1}, \"replay_identity\": true}}",
        records.len(),
        replay_secs * 1e3
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write report");
    println!("report written to {out_path}");

    for d in [dir_fsync, dir_fast, dir_save, dir_replay] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
