//! Hot-path baseline: optimized vs seed-equivalent query cost, one binary.
//!
//! Measures the Fig. 11-style workload (counting over several pattern
//! lengths) plus extraction and locate walks against **both** code paths
//! the index carries — the optimized hot path (table-driven RRR rank,
//! O(1) LF context) and the seed-equivalent reference path
//! (`*_reference`, see `PERFORMANCE.md`) — then times the batch engine
//! sequentially vs in parallel. Emits machine-readable JSON so future PRs
//! have a trajectory to beat (`BENCH_PR3.json` is the recorded baseline).
//!
//! Run: `cargo run -p cinct_bench --release --bin hotpath`
//! Knobs: `CINCT_SCALE` (default 0.25), `CINCT_QUERIES` (per class,
//! default 500), `CINCT_BENCH_REPS` (default 3), `CINCT_BENCH_OUT`
//! (default `BENCH_PR3.json`); set `CINCT_BENCH_BASELINE` to a committed
//! baseline (e.g. `BENCH_PR3.json`) to self-gate the run's speedup
//! ratios against it (`CINCT_BENCH_TOLERANCE`, default 0.25 — see
//! `cinct_bench::gate`).

use cinct::engine::{Query, QueryEngine};
use cinct::{CinctBuilder, CinctIndex};
use cinct_bench::{queries_from_env, sample_patterns, sample_rows, scale_from_env, time_best_of};
use cinct_fmindex::PathQuery;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Pattern lengths of the Fig. 11 count workload.
const COUNT_LENS: [usize; 4] = [2, 5, 10, 20];
/// Symbols per extraction query.
const EXTRACT_LEN: usize = 20;
/// SA sampling rate for the locate workload.
const LOCATE_RATE: usize = 32;

/// One measured query class: seed-equivalent vs optimized ns/op.
struct ClassResult {
    name: String,
    ops: usize,
    seed_ns: f64,
    opt_ns: f64,
}

impl ClassResult {
    fn speedup(&self) -> f64 {
        self.seed_ns / self.opt_ns
    }
}

/// Best-of-`reps` for the two compared paths with their repetitions
/// **interleaved** (A, B, A, B, …) so scheduler/noisy-neighbor drift hits
/// both paths alike instead of skewing whichever phase ran second.
fn time_best_of_interleaved(
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Duration, Duration) {
    a();
    b();
    let (mut best_a, mut best_b) = (Duration::MAX, Duration::MAX);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        best_a = best_a.min(t0.elapsed());
        let t0 = Instant::now();
        b();
        best_b = best_b.min(t0.elapsed());
    }
    (best_a, best_b)
}

fn ns_per_op(d: Duration, ops: usize) -> f64 {
    d.as_secs_f64() * 1e9 / ops as f64
}

fn measure(
    idx: &CinctIndex,
    trajs: &[Vec<u32>],
    n_queries: usize,
    reps: usize,
) -> Vec<ClassResult> {
    let mut classes = Vec::new();
    // Count workload (Fig. 11): backward search = 2 labeled ranks per edge.
    for len in COUNT_LENS {
        let patterns = sample_patterns(trajs, len, n_queries, 1000 + len as u64);
        let (opt, seed) = time_best_of_interleaved(
            reps,
            || {
                for p in &patterns {
                    std::hint::black_box(idx.count_path(p));
                }
            },
            || {
                for p in &patterns {
                    std::hint::black_box(idx.count_path_reference(p));
                }
            },
        );
        for p in &patterns {
            assert_eq!(idx.count_path(p), idx.count_path_reference(p));
        }
        classes.push(ClassResult {
            name: format!("count_p{len}"),
            ops: patterns.len(),
            seed_ns: ns_per_op(seed, patterns.len()),
            opt_ns: ns_per_op(opt, patterns.len()),
        });
    }
    // Extraction workload (Algorithm 4): EXTRACT_LEN LF steps per op.
    let rows = sample_rows(idx.text_len(), n_queries);
    let (opt, seed) = time_best_of_interleaved(
        reps,
        || {
            for &j in &rows {
                std::hint::black_box(idx.extract_encoded(j, EXTRACT_LEN));
            }
        },
        || {
            for &j in &rows {
                std::hint::black_box(idx.extract_encoded_reference(j, EXTRACT_LEN));
            }
        },
    );
    for &j in &rows {
        assert_eq!(
            idx.extract_encoded(j, EXTRACT_LEN),
            idx.extract_encoded_reference(j, EXTRACT_LEN)
        );
    }
    classes.push(ClassResult {
        name: format!("extract_l{EXTRACT_LEN}"),
        ops: rows.len(),
        seed_ns: ns_per_op(seed, rows.len()),
        opt_ns: ns_per_op(opt, rows.len()),
    });
    // Occurrence workload: the locate walk behind every occurrence listed
    // (≤ LOCATE_RATE LF steps + the SA sample probe).
    let (opt, seed) = time_best_of_interleaved(
        reps,
        || {
            for &j in &rows {
                std::hint::black_box(idx.locate(j));
            }
        },
        || {
            for &j in &rows {
                std::hint::black_box(idx.locate_reference(j));
            }
        },
    );
    for &j in &rows {
        assert_eq!(idx.locate(j), idx.locate_reference(j));
    }
    classes.push(ClassResult {
        name: "occurrence_locate".to_string(),
        ops: rows.len(),
        seed_ns: ns_per_op(seed, rows.len()),
        opt_ns: ns_per_op(opt, rows.len()),
    });
    classes
}

/// Sequential vs parallel batch engine on a mixed workload; returns
/// `(batch_len, threads, seq_wall_us, par_wall_us, identical)`.
fn engine_comparison(
    idx: &CinctIndex,
    trajs: &[Vec<u32>],
    n_queries: usize,
    reps: usize,
) -> (usize, usize, f64, f64, bool) {
    let counts = sample_patterns(trajs, 5, n_queries.max(100) * 8, 77);
    let rows = sample_rows(idx.text_len(), n_queries.max(100) * 2);
    let mut batch: Vec<Query> = counts.iter().map(|p| Query::count(p)).collect();
    batch.extend(rows.iter().map(|&j| Query::extract(j, EXTRACT_LEN)));
    let sequential = QueryEngine::new(idx);
    let threads = rayon::current_num_threads();
    let parallel = QueryEngine::new(idx).parallel(threads);
    let seq_wall = time_best_of(reps, || {
        std::hint::black_box(sequential.run(&batch));
    });
    let par_wall = time_best_of(reps, || {
        std::hint::black_box(parallel.run(&batch));
    });
    let a = sequential.run(&batch);
    let b = parallel.run(&batch);
    let identical = a
        .outcomes
        .iter()
        .zip(&b.outcomes)
        .all(|(x, y)| x.value == y.value);
    (
        batch.len(),
        threads,
        seq_wall.as_secs_f64() * 1e6,
        par_wall.as_secs_f64() * 1e6,
        identical,
    )
}

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let reps: usize = std::env::var("CINCT_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path =
        std::env::var("CINCT_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR3.json".to_string());

    println!("== Hot-path baseline: seed-equivalent vs optimized (scale={scale}) ==\n");
    let ds = cinct_datasets::singapore(scale);
    let idx = CinctBuilder::new()
        .locate_sampling(LOCATE_RATE)
        .build(&ds.trajectories, ds.n_edges());
    println!(
        "index: |T|={} sigma={} core={}B ({:.2} bits/symbol)\n",
        idx.text_len(),
        idx.sigma(),
        idx.core_size_in_bytes(),
        idx.bits_per_symbol()
    );

    let classes = measure(&idx, &ds.trajectories, n_queries, reps);
    println!(
        "{:<20} {:>6} {:>14} {:>14} {:>9}",
        "class", "ops", "seed ns/op", "opt ns/op", "speedup"
    );
    for c in &classes {
        println!(
            "{:<20} {:>6} {:>14.1} {:>14.1} {:>8.2}x",
            c.name,
            c.ops,
            c.seed_ns,
            c.opt_ns,
            c.speedup()
        );
    }
    let count_classes: Vec<&ClassResult> = classes
        .iter()
        .filter(|c| c.name.starts_with("count_"))
        .collect();
    let count_speedup = count_classes.iter().map(|c| c.seed_ns).sum::<f64>()
        / count_classes.iter().map(|c| c.opt_ns).sum::<f64>();
    println!("\ncount workload aggregate speedup: {count_speedup:.2}x");

    let (batch_len, threads, seq_us, par_us, identical) =
        engine_comparison(&idx, &ds.trajectories, n_queries, reps);
    assert!(identical, "parallel engine diverged from sequential");
    println!(
        "engine: {batch_len}-query mixed batch, sequential {seq_us:.0}us vs parallel({threads}) \
         {par_us:.0}us ({:.2}x), outcomes identical",
        seq_us / par_us
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"meta\": {{\"dataset\": \"{}\", \"scale\": {scale}, \"queries_per_class\": \
         {n_queries}, \"reps\": {reps}, \"rrr_block_size\": 63, \"locate_sampling\": \
         {LOCATE_RATE}, \"text_len\": {}, \"sigma\": {}, \"host_parallelism\": {threads}}},",
        ds.name,
        idx.text_len(),
        idx.sigma()
    );
    let _ = writeln!(
        json,
        "  \"index_size\": {{\"core_bytes\": {}, \"without_et_graph_bytes\": {}, \
         \"directory_bytes\": {}, \"bits_per_symbol\": {:.4}}},",
        idx.core_size_in_bytes(),
        idx.size_without_et_graph(),
        idx.directory_size_in_bytes(),
        idx.bits_per_symbol()
    );
    json.push_str("  \"classes\": [\n");
    for (i, c) in classes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"seed_ns_per_op\": {:.1}, \
             \"optimized_ns_per_op\": {:.1}, \"speedup\": {:.3}}}{}",
            c.name,
            c.ops,
            c.seed_ns,
            c.opt_ns,
            c.speedup(),
            if i + 1 < classes.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"count_workload_speedup\": {count_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"parallel_engine\": {{\"batch\": {batch_len}, \"threads\": {threads}, \
         \"sequential_wall_us\": {seq_us:.1}, \"parallel_wall_us\": {par_us:.1}, \
         \"speedup\": {:.3}, \"identical\": {identical}}}",
        seq_us / par_us
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("\nwrote {out_path}");
    cinct_bench::enforce_baseline_from_env(&json);
}
