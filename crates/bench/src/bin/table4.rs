//! Table IV: compression ratio (uncompressed 32-bit-int size divided by
//! compressed size; larger is better) of CiNCT vs the baseline
//! compressors: MEL+Huffman, Re-Pair, bzip2-like, PRESS-like, zip-like.
//!
//! Run: `cargo run -p cinct-bench --release --bin table4`

use cinct_bench::report::{f1, Table};
use cinct_bench::scale_from_env;
use cinct_bench::variants::build_cinct;
use cinct_bwt::TrajectoryString;
use cinct_compressors::{bwz, lz, mel::Mel, repair, sp};
use cinct_datasets::Dataset;
use cinct_fmindex::PathQuery;

/// The uncompressed representation: trajectory symbols + separators as
/// 32-bit integers (the paper's "binary file of 32-bit integers").
fn raw_symbols(ds: &Dataset) -> usize {
    ds.trajectories.iter().map(|t| t.len() + 1).sum()
}

/// The corpus as one separator-delimited integer stream (for the generic
/// compressors). Separator = n_edges (out of the edge-ID range).
fn flat_stream(ds: &Dataset) -> Vec<u32> {
    let sep = ds.n_edges() as u32;
    let mut out = Vec::with_capacity(raw_symbols(ds));
    for t in &ds.trajectories {
        out.extend_from_slice(t);
        out.push(sep);
    }
    out
}

fn main() {
    let scale = scale_from_env();
    println!("== Table IV: compression ratio (scale={scale}; larger is better) ==\n");
    let mut table = Table::new(&[
        "Dataset", "CiNCT", "MEL", "Re-Pair", "bzip2~", "PRESS~", "zip~",
    ]);
    for ds in cinct_datasets::all_table_datasets(scale) {
        let n = raw_symbols(&ds);
        let stream = flat_stream(&ds);

        // CiNCT: queryable index size (incl. ET-graph) vs raw size.
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let idx = build_cinct(&ts, ds.n_edges(), 63);
        let cinct_ratio = 32.0 * n as f64 / (idx.size_in_bytes() as f64 * 8.0);

        // MEL is defined only on gap-free data (paper Table IV footnote:
        // evaluated only for ungapped datasets).
        let mel_ratio = if ds
            .trajectories
            .iter()
            .all(|t| cinct_network::travel::is_connected_path(&ds.network, t))
        {
            let m = Mel::build(&ds.network, &ds.trajectories);
            Some(m.compressed_size(&ds.network, &ds.trajectories).ratio(n))
        } else {
            None
        };

        let repair_ratio = repair::compress(&stream, ds.n_edges() + 1)
            .compressed_size()
            .ratio(n);
        // Byte-granularity baselines, as the paper ran bzip2/zip on the
        // raw 32-bit binary file.
        let bytes = cinct_compressors::as_byte_stream(&stream);
        let bwz_ratio = bwz::compress(&bytes).compressed_size().ratio(n);
        // PRESS-like SP coding needs connected paths too.
        let sp_ratio = if ds
            .trajectories
            .iter()
            .all(|t| cinct_network::travel::is_connected_path(&ds.network, t))
        {
            Some(sp::compressed_size(&ds.network, &ds.trajectories).ratio(n))
        } else {
            None
        };
        let lz_ratio = lz::compressed_size(&bytes).ratio(n);

        let opt = |r: Option<f64>| r.map_or("N/A".to_string(), f1);
        table.row(vec![
            ds.name.into(),
            f1(cinct_ratio),
            opt(mel_ratio),
            f1(repair_ratio),
            f1(bwz_ratio),
            opt(sp_ratio),
            f1(lz_ratio),
        ]);
        eprintln!("  done {}", ds.name);
    }
    table.print();
    println!("\nPaper (Table IV): CiNCT 10.5/27.0/25.2/25.6/10.3 beats MEL");
    println!("(15.8/21.2), Re-Pair (8.4-20.6), bzip2 (5.3-13.6), PRESS (4.6),");
    println!("zip (2.5-5.0).");
    println!("Shape check: CiNCT wins on the sparse NCT datasets while also");
    println!("being the only entry that supports pattern matching.");
}
