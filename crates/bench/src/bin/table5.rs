//! Table V: 0th-order empirical entropy of the RML label stream vs the MEL
//! label stream, on the gap-free datasets (the paper reports Singapore-2
//! and Roma). Theorem 6 guarantees RML ≤ MEL.
//!
//! Run: `cargo run -p cinct-bench --release --bin table5`

use cinct::{LabelingStrategy, Rml};
use cinct_bench::report::{f2, Table};
use cinct_bench::scale_from_env;
use cinct_bwt::{bwt, entropy_h0, CArray, TrajectoryString};
use cinct_compressors::mel::Mel;

fn main() {
    let scale = scale_from_env();
    println!("== Table V: RML vs MEL label entropy (scale={scale}) ==\n");
    let mut table = Table::new(&["Dataset", "RML H0", "MEL H0", "RML/MEL"]);
    for ds in [
        cinct_datasets::singapore2(scale),
        cinct_datasets::roma(scale),
    ] {
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let (_, tbwt) = bwt(ts.text(), ts.sigma());
        let c = CArray::new(ts.text(), ts.sigma());
        let rml = Rml::from_text(ts.text(), ts.sigma(), LabelingStrategy::BigramSorted);
        let h_rml = entropy_h0(&rml.label_bwt(&tbwt, &c));
        let m = Mel::build(&ds.network, &ds.trajectories);
        let h_mel = m.label_entropy(&ds.trajectories);
        table.row(vec![
            ds.name.into(),
            f2(h_rml),
            f2(h_mel),
            f2(h_rml / h_mel),
        ]);
        eprintln!("  done {}", ds.name);
    }
    table.print();
    println!("\nPaper (Table V): Singapore-2 RML 1.26 vs MEL 1.93; Roma 0.76 vs");
    println!("0.99 — roughly 30% lower entropy for RML.");
    println!("Shape check: RML < MEL on both datasets (Theorem 6).");
}
