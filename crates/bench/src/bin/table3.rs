//! Table III: statistics of each dataset — |T|, lg σ, H0(T), H0(φ(T_bwt)),
//! H1(T), and the ET-graph average out-degree d̄.
//!
//! Run: `cargo run -p cinct-bench --release --bin table3`
//! (`CINCT_SCALE` scales the corpus size.)

use cinct::DatasetStats;
use cinct_bench::report::{f1, f2, Table};
use cinct_bench::scale_from_env;
use cinct_bwt::TrajectoryString;

fn main() {
    let scale = scale_from_env();
    println!("== Table III: dataset statistics (scale={scale}) ==\n");
    let mut table = Table::new(&[
        "Dataset", "|T|", "lg s", "H0(T)", "H0(phi)", "H1(T)", "d_bar", "delta",
    ]);
    for ds in cinct_datasets::all_table_datasets(scale) {
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let s = DatasetStats::compute_from_string(ds.name, &ts);
        table.row(vec![
            s.name.clone(),
            s.text_len.to_string(),
            f1(s.log2_sigma),
            f2(s.h0),
            f2(s.h0_labeled),
            f2(s.h1),
            f1(s.avg_out_degree),
            s.max_out_degree.to_string(),
        ]);
    }
    table.print();
    println!("\nPaper (Table III, full-size data):");
    println!("  Singapore   53M  15.5  13.8  1.8  1.5  26.8");
    println!("  Singapore-2 75M  15.5  14.0  1.3  1.1   4.0");
    println!("  Roma        12M  15.5  13.0  0.9  0.7   2.4");
    println!("  MO-Gen     193M  17.4  13.0  2.8  2.5   8.8");
    println!("  Chess       20M  18.8  10.3  2.0  1.4   1.6");
    println!("\nShape check: H0(phi) << H0(T) on every dataset; Singapore-2's");
    println!("d_bar collapses to ~4 after gap interpolation.");
}
