//! Fig. 13: ET-graph sparsity sweep. RandWalk data with σ = 2^16 fixed and
//! the average out-degree d̄ swept over {4, 8, 16, 32, 64}. CiNCT's size
//! degrades as d̄ grows (deeper HWT + bigger ET-graph) yet stays the best
//! compressor well beyond road-network sparsity (d̄ ≈ 4).
//!
//! Run: `cargo run -p cinct-bench --release --bin fig13`

use cinct_bench::report::{f2, Table};
use cinct_bench::{build_variant, queries_from_env, sample_patterns, time_queries, ALL_VARIANTS};
use cinct_bwt::TrajectoryString;

fn main() {
    let sigma: usize = 1 << 16;
    let total: usize = std::env::var("CINCT_TOTAL_SYMBOLS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let n_queries = queries_from_env();
    println!("== Fig. 13: out-degree sweep, RandWalk sigma=2^16, |T|={total} ==\n");
    let mut size_table = Table::new(&[
        "d",
        "CiNCT",
        "CiNCT-w/oET",
        "UFMI",
        "ICB-WM",
        "ICB-Huff",
        "FM-GMR",
        "FM-AP-HYB",
    ]);
    let mut time_table = Table::new(&[
        "d",
        "CiNCT",
        "UFMI",
        "ICB-WM",
        "ICB-Huff",
        "FM-GMR",
        "FM-AP-HYB",
    ]);
    for d_exp in 2..=6u32 {
        let d = (1u32 << d_exp) as f64;
        let ds = cinct_datasets::randwalk(sigma, d, total, 7_000 + d_exp as u64);
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        let patterns = sample_patterns(&ds.trajectories, 20, n_queries, d_exp as u64);
        let mut sizes = vec![format!("{d}")];
        let mut times = vec![format!("{d}")];
        for &v in ALL_VARIANTS.iter() {
            let built = build_variant(v, &ts, ds.n_edges());
            let t = time_queries(built.index.as_ref(), &patterns);
            sizes.push(f2(built.bits_per_symbol()));
            if let Some(w) = built.size_without_et_graph {
                sizes.push(f2(w as f64 * 8.0 / built.index.text_len() as f64));
            }
            times.push(f2(t.mean_us));
        }
        size_table.row(sizes);
        time_table.row(times);
        eprintln!("  done d={d}");
    }
    println!("-- index size (bits/symbol) --");
    size_table.print();
    println!("\n-- search time (us/query, |P|=20) --");
    time_table.print();
    println!("\nShape check (paper Fig. 13): CiNCT's size grows with d (ET-graph");
    println!("+ deeper HWT) but remains the best compressor; baselines are flat");
    println!("in size but uniformly larger.");
}
