//! Fig. 10: index size (bits/symbol) vs suffix-range query time for every
//! dataset × method, with RRR block sizes b ∈ {15, 31, 63} for the
//! compressed variants.
//!
//! Run: `cargo run -p cinct-bench --release --bin fig10`

use cinct_bench::report::{f2, Table};
use cinct_bench::{
    build_variant, queries_from_env, sample_patterns, scale_from_env, time_queries, Variant,
};
use cinct_bwt::TrajectoryString;

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    println!(
        "== Fig. 10: size vs suffix-range time (scale={scale}, {n_queries} queries, |P|=20) =="
    );
    for ds in cinct_datasets::all_table_datasets(scale) {
        let ts = TrajectoryString::build(&ds.trajectories, ds.n_edges());
        // Chess games are exactly 10 plies; cap |P| accordingly.
        let plen = ds
            .trajectories
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(20)
            .min(20);
        let patterns = sample_patterns(&ds.trajectories, plen, n_queries, 42);
        println!(
            "\n-- {} (|T|={}, sigma={}) |P|={plen} --",
            ds.name,
            ts.len(),
            ts.sigma()
        );
        let mut table = Table::new(&["Method", "b", "bits/sym", "time us", "hits"]);
        let mut variants: Vec<Variant> = Vec::new();
        for b in [15usize, 31, 63] {
            variants.push(Variant::Cinct { b });
        }
        variants.push(Variant::Ufmi);
        for b in [15usize, 31, 63] {
            variants.push(Variant::IcbWm { b });
            variants.push(Variant::IcbHuff { b });
        }
        variants.push(Variant::FmGmr);
        variants.push(Variant::FmApHyb);
        for v in variants {
            let built = build_variant(v, &ts, ds.n_edges());
            let timing = time_queries(built.index.as_ref(), &patterns);
            let b_str = match v {
                Variant::Cinct { b } | Variant::IcbWm { b } | Variant::IcbHuff { b } => {
                    b.to_string()
                }
                _ => "-".into(),
            };
            table.row(vec![
                built.name.clone(),
                b_str,
                f2(built.bits_per_symbol()),
                f2(timing.mean_us),
                timing.hits.to_string(),
            ]);
            if let (Variant::Cinct { b: 63 }, Some(w)) = (v, built.size_without_et_graph) {
                table.row(vec![
                    "CiNCT (w/o ET)".into(),
                    "63".into(),
                    f2(w as f64 * 8.0 / built.index.text_len() as f64),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
        table.print();
    }
    println!("\nShape check (paper): CiNCT is the smallest AND fastest suffix-");
    println!("range index on sparse datasets; ICB variants are 2-25x slower;");
    println!("UFMI/FM-GMR are fast but many times larger.");
}
