//! The typed error taxonomy shared by every query backend.
//!
//! One deliberate asymmetry runs through the whole API: **"path not
//! present" is never an error.** [`crate::PathQuery::range`] returns
//! `None` and [`crate::PathQuery::occurrences`] returns an empty iterator
//! for a path no trajectory traveled; [`QueryError`] is reserved for
//! queries that are *malformed* ([`QueryError::EmptyPattern`],
//! [`QueryError::UnknownEdge`]), ask for a capability the index was built
//! without ([`QueryError::LocateUnsupported`]), or hit broken persisted
//! state ([`QueryError::CorruptIndex`], [`QueryError::Io`]).

use std::fmt;

/// Everything that can go wrong answering (or preparing to answer) a path
/// query. See the module docs for the error-vs-absent distinction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query path has no edges. Counting an empty path is meaningless
    /// (every position matches), so occurrence queries reject it up front.
    EmptyPattern,
    /// An edge ID in the query does not exist in the indexed road network.
    UnknownEdge {
        /// The offending edge ID.
        edge: u32,
        /// Number of edges in the indexed network (valid IDs are
        /// `0..n_edges`).
        n_edges: usize,
    },
    /// The operation needs `locate` support (a sampled suffix array), but
    /// the index was built without it — see `CinctBuilder::locate_sampling`.
    LocateUnsupported,
    /// A persisted index failed a structural invariant while loading or
    /// querying (bad magic, mismatched directory lengths, ...).
    CorruptIndex(String),
    /// Input data (trajectory text, timestamps) failed validation.
    InvalidInput(String),
    /// An underlying I/O operation failed (the message includes the
    /// `std::io` error; truncated streams surface as `UnexpectedEof`).
    Io(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyPattern => write!(f, "query path is empty"),
            QueryError::UnknownEdge { edge, n_edges } => {
                write!(f, "edge {edge} outside the indexed network (0..{n_edges})")
            }
            QueryError::LocateUnsupported => {
                write!(f, "index was built without locate support (no SA samples)")
            }
            QueryError::CorruptIndex(detail) => write!(f, "corrupt index: {detail}"),
            QueryError::InvalidInput(detail) => write!(f, "invalid input: {detail}"),
            QueryError::Io(detail) => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<std::io::Error> for QueryError {
    fn from(e: std::io::Error) -> Self {
        QueryError::Io(format!("{:?}: {e}", e.kind()))
    }
}

impl QueryError {
    /// `true` for errors caused by the *query* (fixable by the caller)
    /// rather than by index state.
    pub fn is_query_fault(&self) -> bool {
        matches!(
            self,
            QueryError::EmptyPattern | QueryError::UnknownEdge { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QueryError::UnknownEdge {
            edge: 99,
            n_edges: 6,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("0..6"));
        assert!(QueryError::LocateUnsupported.to_string().contains("locate"));
    }

    #[test]
    fn io_conversion_keeps_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read");
        let q: QueryError = io.into();
        assert_eq!(q, QueryError::Io("UnexpectedEof: short read".into()));
    }

    #[test]
    fn fault_classification() {
        assert!(QueryError::EmptyPattern.is_query_fault());
        assert!(QueryError::UnknownEdge {
            edge: 0,
            n_edges: 0
        }
        .is_query_fault());
        assert!(!QueryError::LocateUnsupported.is_query_fault());
        assert!(!QueryError::CorruptIndex("x".into()).is_query_fault());
    }
}
