//! The unified `PathQuery` interface: one query API for CiNCT and every
//! baseline FM-index.
//!
//! The paper's core claim is that a single compressed self-index answers
//! *counting* (Algorithm 1/3), *locate* (§IV-B) and *sub-path extraction*
//! (Algorithm 4) over network-constrained trajectories. This module is
//! that claim as a trait:
//!
//! * [`PathQuery`] — counting/range queries over a forward [`Path`] of
//!   edge IDs, streaming occurrence listing ([`PathQuery::occurrences`]),
//!   and streaming extraction ([`PathQuery::extract_iter`]). Implemented by
//!   `CinctIndex`, the five Table-II baselines ([`crate::Ufmi`],
//!   [`crate::IcbWm`], [`crate::IcbHuff`], [`crate::FmGmr`],
//!   [`crate::FmApHyb`]), and `TemporalCinct`.
//! * [`OccurIter`] — a lazy iterator over `(trajectory, offset)` matches,
//!   driven row-by-row by sampled-suffix-array walks: no intermediate
//!   `Vec` is ever materialized.
//! * [`ExtractIter`] — a lazy iterator over the symbols of an LF-mapping
//!   walk, one symbol per step.
//!
//! Error semantics: "path not present" is **not** an error (`None` /
//! an empty iterator); see [`crate::error`] for what is.

use crate::error::QueryError;
use cinct_bwt::SYMBOL_OFFSET;
use cinct_succinct::Symbol;
use std::ops::Range;

/// A forward path of road-network edge IDs — the query type of every
/// backend. `Path` is an unsized view (like `str` to `String`); build one
/// with [`Path::new`]:
///
/// ```
/// use cinct_fmindex::Path;
/// let p = Path::new(&[0, 1, 4]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(&p[..2], &[0, 1]);
/// ```
#[derive(Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct Path([u32]);

impl Path {
    /// View a slice of edge IDs (travel order) as a path.
    pub fn new(edges: &[u32]) -> &Path {
        // SAFETY: `Path` is `repr(transparent)` over `[u32]`.
        unsafe { &*(edges as *const [u32] as *const Path) }
    }

    /// The edge IDs in travel order.
    pub fn edges(&self) -> &[u32] {
        &self.0
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Text symbols in backward-search order. The trajectory string stores
    /// *reversed* trajectories, so backward search consumes the path
    /// **forward**: first edge first, each shifted past the sentinels.
    /// Backends drive their search loops off this; other callers rarely
    /// need it.
    pub fn search_symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.0.iter().map(|&e| e + SYMBOL_OFFSET)
    }
}

impl std::ops::Deref for Path {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        &self.0
    }
}

impl<'a> From<&'a [u32]> for &'a Path {
    fn from(edges: &'a [u32]) -> &'a Path {
        Path::new(edges)
    }
}

impl<'a> From<&'a Vec<u32>> for &'a Path {
    fn from(edges: &'a Vec<u32>) -> &'a Path {
        Path::new(edges)
    }
}

impl AsRef<Path> for [u32] {
    fn as_ref(&self) -> &Path {
        Path::new(self)
    }
}

impl AsRef<Path> for Vec<u32> {
    fn as_ref(&self) -> &Path {
        Path::new(self)
    }
}

/// The query surface shared by every index in this workspace.
///
/// Required methods are the index primitives (text length, alphabet,
/// suffix range, one LF step); everything else — counting, validation,
/// streaming occurrence and extraction iterators — is provided on top.
/// The trait is object-safe: the batch `QueryEngine` and the bench
/// harness drive all backends through `&dyn PathQuery`.
///
/// `Send + Sync` are supertraits: every index is an immutable query
/// structure once built, and the batch layer fans one `&dyn PathQuery`
/// out across threads (`QueryEngine::parallel`).
pub trait PathQuery: Send + Sync {
    /// Length of the indexed trajectory string, sentinels included.
    fn text_len(&self) -> usize;

    /// Alphabet size σ (road edges + 2 sentinels).
    fn sigma(&self) -> usize;

    /// Heap bytes of the queryable structure.
    fn size_in_bytes(&self) -> usize;

    /// Suffix range `R(P)` of a forward path, or `None` when no trajectory
    /// travels it. The empty path matches everywhere.
    fn range(&self, path: &Path) -> Option<Range<usize>>;

    /// One LF-mapping step from BWT row `j`: `(T_bwt[j], LF(j))`.
    fn lf_step(&self, j: usize) -> (Symbol, usize);

    /// Number of occurrences of the path across all trajectories.
    fn count(&self, path: &Path) -> usize {
        self.range(path).map_or(0, |r| r.len())
    }

    /// `true` iff nothing is indexed.
    fn is_empty(&self) -> bool {
        self.text_len() == 0
    }

    /// Reject malformed query paths: [`QueryError::EmptyPattern`] and
    /// [`QueryError::UnknownEdge`] (edge ID outside the indexed network).
    fn validate_path(&self, path: &Path) -> Result<(), QueryError> {
        if path.is_empty() {
            return Err(QueryError::EmptyPattern);
        }
        let n_edges = self.sigma().saturating_sub(SYMBOL_OFFSET as usize);
        for &edge in path.edges() {
            if edge as usize >= n_edges {
                return Err(QueryError::UnknownEdge { edge, n_edges });
            }
        }
        Ok(())
    }

    /// [`PathQuery::range`], but distinguishing *malformed* from *absent*:
    /// `Ok(None)` is a well-formed path no trajectory travels.
    fn try_range(&self, path: &Path) -> Result<Option<Range<usize>>, QueryError> {
        self.validate_path(path)?;
        Ok(self.range(path))
    }

    /// Stream every `(trajectory, offset)` occurrence of the path, in
    /// suffix-range order (use [`OccurIter::collect_sorted`] for the
    /// id-then-offset order the legacy eager API returned). `offset` is
    /// the edge index within the trajectory where the path starts.
    ///
    /// Errors: [`QueryError::LocateUnsupported`] unless the index carries
    /// SA samples, plus path validation. An *absent* path yields
    /// `Ok` with an empty iterator.
    fn occurrences(&self, path: &Path) -> Result<OccurIter<'_>, QueryError> {
        self.validate_path(path)?;
        Err(QueryError::LocateUnsupported)
    }

    /// Stream the `l` text symbols preceding position `SA[j]`, one per
    /// LF step — i.e. `T[SA[j]-l .. SA[j])` in **reverse text order** (the
    /// walk moves backward through the text). [`PathQuery::extract`]
    /// collects the forward order.
    fn extract_iter(&self, j: usize, l: usize) -> ExtractIter<'_>
    where
        Self: Sized,
    {
        ExtractIter::new(self, j, l)
    }

    /// Eager extraction in forward text order: `T[SA[j]-l .. SA[j])`
    /// (paper Algorithm 4).
    fn extract(&self, j: usize, l: usize) -> Vec<Symbol>
    where
        Self: Sized,
    {
        self.extract_iter(j, l).collect_forward()
    }

    /// Index size in bits per indexed symbol (the y-axis of paper Fig. 10).
    fn bits_per_symbol(&self) -> f64 {
        self.size_in_bytes() as f64 * 8.0 / self.text_len() as f64
    }
}

/// Streaming sub-path extraction: yields one symbol per LF step, walking
/// backward from `SA[j]`. Created by [`PathQuery::extract_iter`].
pub struct ExtractIter<'a> {
    index: &'a dyn PathQuery,
    row: usize,
    remaining: usize,
}

impl<'a> ExtractIter<'a> {
    /// Start an `l`-symbol walk at BWT row `j`.
    pub fn new(index: &'a (dyn PathQuery + 'a), j: usize, l: usize) -> Self {
        ExtractIter {
            index,
            row: j,
            remaining: l,
        }
    }

    /// The BWT row the next LF step will read (exposes the walk state for
    /// callers that alternate extraction with other row-space queries).
    pub fn row(&self) -> usize {
        self.row
    }

    /// Drain the walk and return the symbols in forward text order.
    pub fn collect_forward(self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.collect();
        out.reverse();
        out
    }
}

impl Iterator for ExtractIter<'_> {
    type Item = Symbol;

    fn next(&mut self) -> Option<Symbol> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (symbol, next_row) = self.index.lf_step(self.row);
        self.row = next_row;
        Some(symbol)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ExtractIter<'_> {}

/// Row-to-occurrence resolution — the locate half of an index. Implemented
/// by backends with SA samples and a trajectory directory (`CinctIndex`);
/// [`OccurIter`] drives it one suffix-range row at a time.
pub trait OccurrenceSource {
    /// Map BWT row `j` of a match of a `path_len`-edge path to the
    /// `(trajectory, offset)` of the path's first edge.
    ///
    /// # Panics
    /// May panic on rows outside the match range of such a path, or if the
    /// index's SA samples were checked absent (callers go through
    /// [`PathQuery::occurrences`], which validates first).
    fn resolve_row(&self, j: usize, path_len: usize) -> (usize, usize);
}

/// One resolvable slice of suffix-range rows inside an [`OccurIter`]: a
/// locate-capable source, the row range to walk, and an optional
/// trajectory-ID remap applied to everything the source resolves.
///
/// Single-index backends never see this type ([`OccurIter::new`] wraps one
/// segment); sharded backends build one segment per shard and chain them
/// with [`OccurIter::fan_out`], remapping each shard's *local* trajectory
/// IDs into the corpus-global namespace.
pub struct OccurSegment<'a> {
    source: &'a dyn OccurrenceSource,
    rows: Range<usize>,
    /// `id_map[local_traj] = global_traj`; `None` = identity.
    id_map: Option<&'a [u32]>,
}

impl<'a> OccurSegment<'a> {
    /// A segment over `rows` of `source`, reporting the source's own
    /// trajectory IDs.
    pub fn new(source: &'a (dyn OccurrenceSource + 'a), rows: Option<Range<usize>>) -> Self {
        OccurSegment {
            source,
            rows: rows.unwrap_or(0..0),
            id_map: None,
        }
    }

    /// A segment whose resolved trajectory IDs are remapped through
    /// `id_map` (`id_map[local] = global`). The map must cover every
    /// trajectory the source can resolve.
    pub fn remapped(
        source: &'a (dyn OccurrenceSource + 'a),
        rows: Option<Range<usize>>,
        id_map: &'a [u32],
    ) -> Self {
        OccurSegment {
            source,
            rows: rows.unwrap_or(0..0),
            id_map: Some(id_map),
        }
    }
}

/// Streaming occurrence listing: lazily maps each suffix-range row to its
/// `(trajectory, offset)` via sampled-SA walks. Created by
/// [`PathQuery::occurrences`]; never materializes an intermediate `Vec`.
/// A sharded backend chains one segment per shard ([`OccurIter::fan_out`]);
/// the iterator drains segments in order, so shard-local row order is
/// preserved within each segment.
pub struct OccurIter<'a> {
    segments: Vec<OccurSegment<'a>>,
    /// Index of the segment currently being drained.
    cur: usize,
    path_len: usize,
}

impl<'a> OccurIter<'a> {
    /// Iterate the matches of a `path_len`-edge path over suffix-range
    /// `rows`. Backends call this from their `occurrences` impl *after*
    /// validating the path and locate support.
    pub fn new(
        source: &'a (dyn OccurrenceSource + 'a),
        rows: Option<Range<usize>>,
        path_len: usize,
    ) -> Self {
        Self::fan_out(vec![OccurSegment::new(source, rows)], path_len)
    }

    /// Chain several per-source segments into one occurrence stream (the
    /// sharded fan-out path). Segments are drained in the given order.
    pub fn fan_out(segments: Vec<OccurSegment<'a>>, path_len: usize) -> Self {
        OccurIter {
            segments,
            cur: 0,
            path_len,
        }
    }

    /// Occurrences left to yield.
    pub fn remaining(&self) -> usize {
        self.segments[self.cur..].iter().map(|s| s.rows.len()).sum()
    }

    /// Drain into a `Vec` sorted by `(trajectory, offset)` — the order the
    /// legacy eager `locate_path` returned.
    pub fn collect_sorted(self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self.collect();
        out.sort_unstable();
        out
    }
}

impl Iterator for OccurIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        loop {
            let seg = self.segments.get_mut(self.cur)?;
            match seg.rows.next() {
                Some(j) => {
                    let (t, off) = seg.source.resolve_row(j, self.path_len);
                    let t = seg.id_map.map_or(t, |m| m[t] as usize);
                    return Some((t, off));
                }
                None => self.cur += 1,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for OccurIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_views_are_transparent() {
        let edges = vec![3u32, 1, 4];
        let p: &Path = Path::new(&edges);
        assert_eq!(p.edges(), &[3, 1, 4]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        let q: &Path = (&edges).into();
        assert_eq!(p, q);
        assert_eq!(
            p.search_symbols().collect::<Vec<_>>(),
            vec![3 + SYMBOL_OFFSET, 1 + SYMBOL_OFFSET, 4 + SYMBOL_OFFSET]
        );
    }

    #[test]
    fn empty_path() {
        let p = Path::new(&[]);
        assert!(p.is_empty());
        assert_eq!(p.search_symbols().count(), 0);
    }
}
