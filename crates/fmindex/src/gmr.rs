//! Per-symbol position lists: the large-alphabet, uncompressed-but-fast
//! rank structure standing in for FM-GMR (Golynski–Munro–Rao, paper
//! reference \[20\]).
//!
//! GMR achieves `O(log log σ)` rank for huge alphabets by chunked
//! permutations. We substitute sorted per-symbol occurrence lists with
//! binary-searched rank — the same design point in the evaluation (the
//! *fastest and largest* baseline: ~32 bits/symbol, no entropy
//! compression), per the substitution note in `DESIGN.md`.

use cinct_succinct::{SpaceUsage, Symbol, SymbolSeq};

/// Occurrence-list representation of a sequence.
#[derive(Clone, Debug)]
pub struct PositionListSeq {
    /// CSR offsets per symbol into `positions`.
    offsets: Vec<u64>,
    /// Occurrence positions, grouped by symbol, ascending within a group.
    positions: Vec<u32>,
    /// Plain copy of the sequence for O(1) access (uncompressed baseline).
    raw: Vec<Symbol>,
    sigma: usize,
}

impl PositionListSeq {
    /// Build over `seq` with alphabet `0..sigma`.
    pub fn new(seq: &[Symbol], sigma: usize) -> Self {
        assert!(seq.len() < u32::MAX as usize);
        let mut counts = vec![0u64; sigma + 1];
        for &s in seq {
            debug_assert!((s as usize) < sigma);
            counts[s as usize + 1] += 1;
        }
        for i in 1..=sigma {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut fill = counts;
        let mut positions = vec![0u32; seq.len()];
        for (i, &s) in seq.iter().enumerate() {
            positions[fill[s as usize] as usize] = i as u32;
            fill[s as usize] += 1;
        }
        Self {
            offsets,
            positions,
            raw: seq.to_vec(),
            sigma,
        }
    }
}

impl SymbolSeq for PositionListSeq {
    fn len(&self) -> usize {
        self.raw.len()
    }

    fn alphabet_size(&self) -> usize {
        self.sigma
    }

    #[inline]
    fn rank(&self, w: Symbol, i: usize) -> usize {
        if w as usize >= self.sigma {
            return 0;
        }
        let lo = self.offsets[w as usize] as usize;
        let hi = self.offsets[w as usize + 1] as usize;
        let list = &self.positions[lo..hi];
        list.partition_point(|&p| (p as usize) < i)
    }

    #[inline]
    fn access(&self, i: usize) -> Symbol {
        self.raw[i]
    }
}

impl SpaceUsage for PositionListSeq {
    fn size_in_bytes(&self) -> usize {
        self.offsets.capacity() * 8 + self.positions.capacity() * 4 + self.raw.capacity() * 4
    }
}

impl crate::fm::SymbolSeqFromBwt for PositionListSeq {
    fn from_bwt(bwt: &[u32], sigma: usize) -> Self {
        Self::new(bwt, sigma)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indices appear in assertion messages
mod tests {
    use super::*;

    fn pseudo_seq(n: usize, sigma: u32, seed: u64) -> Vec<Symbol> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % sigma
            })
            .collect()
    }

    #[test]
    fn rank_access_match_naive() {
        let sigma = 300u32;
        let seq = pseudo_seq(2000, sigma, 21);
        let pl = PositionListSeq::new(&seq, sigma as usize);
        for i in 0..seq.len() {
            assert_eq!(pl.access(i), seq[i]);
        }
        for w in (0..sigma).step_by(17) {
            for &i in &[0usize, 1, 999, 2000] {
                let expected = seq[..i].iter().filter(|&&s| s == w).count();
                assert_eq!(pl.rank(w, i), expected, "rank({w},{i})");
            }
        }
    }

    #[test]
    fn absent_symbols() {
        let seq = vec![1u32, 1, 1];
        let pl = PositionListSeq::new(&seq, 10);
        assert_eq!(pl.rank(5, 3), 0);
        assert_eq!(pl.rank(100, 3), 0);
    }

    #[test]
    fn size_is_about_64_bits_per_symbol() {
        // positions (32) + raw copy (32) dominate; offsets amortise away.
        let seq = pseudo_seq(100_000, 1000, 3);
        let pl = PositionListSeq::new(&seq, 1000);
        let bps = pl.size_in_bits() as f64 / seq.len() as f64;
        assert!(bps > 60.0 && bps < 70.0, "{bps}");
    }
}
