//! Alphabet partitioning (Barbay, Gagie, Navarro & Nekrich, ISAAC'10 —
//! paper reference \[21\]): the compressed large-alphabet rank structure
//! behind the FM-AP-HYB baseline.
//!
//! Symbols are ranked by frequency and grouped into `O(log σ)` classes
//! (class = ⌊log2(frequency rank + 1)⌋). The sequence is split into:
//! * a **class sequence** over the tiny class alphabet, stored in a
//!   Huffman-shaped wavelet tree with RRR bitmaps, and
//! * per-class **offset sequences** (the symbol's rank within its class),
//!   stored in wavelet matrices with RRR bitmaps.
//!
//! `rank_w(i)` = `rank_offset(w)` within the class subsequence selected by
//! `rank_class(w)(i)` — two structure lookups, with the frequent symbols
//! living in small-alphabet (cheap) classes.

use cinct_succinct::{HuffmanWaveletTree, RrrBitVec, SpaceUsage, Symbol, SymbolSeq, WaveletMatrix};

/// Alphabet-partitioned sequence representation.
#[derive(Clone, Debug)]
pub struct AlphabetPartitionSeq {
    /// Class id per original symbol.
    class_of: Vec<u8>,
    /// Offset (sub-symbol) within its class per original symbol.
    offset_of: Vec<u32>,
    /// For each class and offset, the original symbol (decode table).
    members: Vec<Vec<Symbol>>,
    /// Class id stream.
    classes: HuffmanWaveletTree<RrrBitVec>,
    /// Per-class offset streams (`None` for singleton classes, whose offset
    /// is always 0).
    offsets: Vec<Option<WaveletMatrix<RrrBitVec>>>,
    len: usize,
    sigma: usize,
}

impl AlphabetPartitionSeq {
    /// Build over `seq` with alphabet `0..sigma`, using RRR block size `b`.
    pub fn with_block_size(seq: &[Symbol], sigma: usize, b: usize) -> Self {
        assert!(!seq.is_empty());
        // Frequency ranking.
        let mut freqs = vec![0u64; sigma];
        for &s in seq {
            freqs[s as usize] += 1;
        }
        let mut order: Vec<u32> = (0..sigma as u32)
            .filter(|&s| freqs[s as usize] > 0)
            .collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(freqs[s as usize]), s));
        // class(s) = floor(log2(freq_rank + 1)); #classes ≈ log2 σ.
        let mut class_of = vec![0u8; sigma];
        let mut offset_of = vec![0u32; sigma];
        let mut members: Vec<Vec<Symbol>> = Vec::new();
        for (r, &s) in order.iter().enumerate() {
            let class = (usize::BITS - (r + 1).leading_zeros() - 1) as usize;
            if class == members.len() {
                members.push(Vec::new());
            }
            class_of[s as usize] = class as u8;
            offset_of[s as usize] = members[class].len() as u32;
            members[class].push(s);
        }
        let n_classes = members.len();
        // Build streams.
        let class_stream: Vec<Symbol> = seq.iter().map(|&s| class_of[s as usize] as u32).collect();
        let mut offset_streams: Vec<Vec<Symbol>> = vec![Vec::new(); n_classes];
        for &s in seq {
            let c = class_of[s as usize] as usize;
            if members[c].len() > 1 {
                offset_streams[c].push(offset_of[s as usize]);
            }
        }
        let classes = HuffmanWaveletTree::<RrrBitVec>::with_params(&class_stream, b);
        let offsets = offset_streams
            .into_iter()
            .map(|st| {
                if st.is_empty() {
                    None
                } else {
                    Some(WaveletMatrix::<RrrBitVec>::with_params(&st, b))
                }
            })
            .collect();
        Self {
            class_of,
            offset_of,
            members,
            classes,
            offsets,
            len: seq.len(),
            sigma,
        }
    }

    /// Build with the default RRR block size (63).
    pub fn new(seq: &[Symbol], sigma: usize) -> Self {
        Self::with_block_size(seq, sigma, 63)
    }
}

impl SymbolSeq for AlphabetPartitionSeq {
    fn len(&self) -> usize {
        self.len
    }

    fn alphabet_size(&self) -> usize {
        self.sigma
    }

    #[inline]
    fn rank(&self, w: Symbol, i: usize) -> usize {
        if w as usize >= self.sigma {
            return 0;
        }
        let c = self.class_of[w as usize] as usize;
        if c >= self.members.len() || self.members[c].is_empty() {
            return 0;
        }
        // Guard: symbols that never occurred share class 0 entries only if
        // they were ranked; unranked symbols keep class 0/offset 0 but are
        // not members.
        let off = self.offset_of[w as usize];
        if self.members[c].get(off as usize).copied() != Some(w) {
            return 0;
        }
        let in_class = self.classes.rank(c as u32, i);
        match &self.offsets[c] {
            None => in_class, // singleton class
            Some(wm) => wm.rank(off, in_class),
        }
    }

    #[inline]
    fn access(&self, i: usize) -> Symbol {
        let c = self.classes.access(i) as usize;
        match &self.offsets[c] {
            None => self.members[c][0],
            Some(wm) => {
                let pos_in_class = self.classes.rank(c as u32, i);
                self.members[c][wm.access(pos_in_class) as usize]
            }
        }
    }
}

impl SpaceUsage for AlphabetPartitionSeq {
    fn size_in_bytes(&self) -> usize {
        self.class_of.capacity()
            + self.offset_of.capacity() * 4
            + self.members.iter().map(|m| m.capacity() * 4).sum::<usize>()
            + self.classes.size_in_bytes()
            + self
                .offsets
                .iter()
                .flatten()
                .map(|wm| wm.size_in_bytes())
                .sum::<usize>()
    }
}

impl crate::fm::SymbolSeqFromBwt for AlphabetPartitionSeq {
    fn from_bwt(bwt: &[u32], sigma: usize) -> Self {
        Self::new(bwt, sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_seq(n: usize, sigma: u32, seed: u64) -> Vec<Symbol> {
        // Zipf-ish: symbol k with probability ∝ 1/(k+1).
        let mut x = seed | 1;
        let harmonic: f64 = (1..=sigma as usize).map(|k| 1.0 / k as f64).sum();
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut u = ((x >> 11) as f64 / (1u64 << 53) as f64) * harmonic;
                for k in 0..sigma {
                    u -= 1.0 / (k + 1) as f64;
                    if u <= 0.0 {
                        return k;
                    }
                }
                sigma - 1
            })
            .collect()
    }

    #[test]
    fn rank_access_match_naive() {
        let sigma = 200u32;
        let seq = zipf_seq(3000, sigma, 5);
        let ap = AlphabetPartitionSeq::new(&seq, sigma as usize);
        for i in (0..seq.len()).step_by(7) {
            assert_eq!(ap.access(i), seq[i], "access({i})");
        }
        for w in (0..sigma).step_by(11) {
            for &i in &[0usize, 1, 1500, 3000] {
                let expected = seq[..i].iter().filter(|&&s| s == w).count();
                assert_eq!(ap.rank(w, i), expected, "rank({w},{i})");
            }
        }
    }

    #[test]
    fn symbols_never_seen() {
        let seq = vec![3u32, 3, 5, 5, 5];
        let ap = AlphabetPartitionSeq::new(&seq, 10);
        assert_eq!(ap.rank(0, 5), 0);
        assert_eq!(ap.rank(9, 5), 0);
        assert_eq!(ap.rank(3, 5), 2);
        assert_eq!(ap.rank(5, 5), 3);
    }

    #[test]
    fn compresses_skewed_large_alphabet() {
        // Zipf over 5000 symbols: AP must beat the ~13 bits/symbol of a
        // plain code by exploiting the skew.
        let sigma = 5000u32;
        let seq = zipf_seq(150_000, sigma, 9);
        let ap = AlphabetPartitionSeq::new(&seq, sigma as usize);
        let bps = ap.size_in_bits() as f64 / seq.len() as f64;
        assert!(
            bps < 13.0,
            "AP used {bps:.2} bits/symbol (plain width = 13)"
        );
    }

    #[test]
    fn paper_block_sizes() {
        let seq = zipf_seq(1000, 50, 3);
        for &b in &[15usize, 31, 63] {
            let ap = AlphabetPartitionSeq::with_block_size(&seq, 50, b);
            for w in 0..50u32 {
                let expected = seq.iter().filter(|&&s| s == w).count();
                assert_eq!(ap.rank(w, seq.len()), expected);
            }
        }
    }
}
