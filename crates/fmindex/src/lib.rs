#![warn(missing_docs)]
//! Baseline FM-index family (paper Table II) and the unified [`PathQuery`]
//! query interface.
//!
//! A single generic [`FmIndex`] parameterised by the symbol-rank structure
//! holding the BWT yields the paper's five competitors:
//!
//! | Paper name  | Instantiation                                        |
//! |-------------|------------------------------------------------------|
//! | `UFMI`      | wavelet matrix over uncompressed bitmaps              |
//! | `ICB-WM`    | wavelet matrix over RRR bitmaps                       |
//! | `ICB-Huff`  | Huffman-shaped wavelet tree over RRR bitmaps          |
//! | `FM-GMR`    | per-symbol position lists (large-alphabet, fast, big) |
//! | `FM-AP-HYB` | alphabet partitioning (large-alphabet, compressed)    |
//!
//! All of them — and `CinctIndex` / `TemporalCinct` in the `cinct` crate —
//! answer queries through one trait, [`PathQuery`]: counting, suffix
//! ranges, streaming occurrence listing, and streaming extraction, over
//! forward [`Path`]s of edge IDs. Failures are typed ([`QueryError`]);
//! "path not present" is a normal non-error result.
//!
//! # Quick start
//!
//! ```
//! use cinct_bwt::TrajectoryString;
//! use cinct_fmindex::{Path, PathQuery, QueryError, Ufmi};
//!
//! // Paper Fig. 1: four trajectories over road segments A..F = 0..5.
//! let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
//! let ts = TrajectoryString::build(&trajs, 6);
//! let index = Ufmi::from_text(ts.text(), ts.sigma());
//!
//! // Counting: how many vehicles traveled A then B?
//! assert_eq!(index.count(Path::new(&[0, 1])), 2);
//! // An absent path is not an error — it just has no matches.
//! assert_eq!(index.range(Path::new(&[3, 0])), None);
//! // A malformed path is: edge 99 is not in the 6-edge network.
//! assert_eq!(
//!     index.try_range(Path::new(&[99])),
//!     Err(QueryError::UnknownEdge { edge: 99, n_edges: 6 })
//! );
//! // Streaming extraction: symbols of an LF walk, one per step.
//! let walk: Vec<u32> = index.extract_iter(0, 4).collect();
//! assert_eq!(walk.len(), 4);
//! ```

pub mod ap;
pub mod error;
pub mod fm;
pub mod gmr;
pub mod query;

pub use ap::AlphabetPartitionSeq;
pub use error::QueryError;
pub use fm::{FmIndex, SymbolSeqFromBwt};
pub use gmr::PositionListSeq;
pub use query::{ExtractIter, OccurIter, OccurSegment, OccurrenceSource, Path, PathQuery};

/// Legacy name of [`PathQuery`], kept for downstream code one release.
#[deprecated(
    since = "0.2.0",
    note = "renamed to PathQuery; query with forward `Path`s instead of encoded patterns"
)]
pub use query::PathQuery as PatternIndex;

use cinct_succinct::{HuffmanWaveletTree, RankBitVec, RrrBitVec, WaveletMatrix};

/// `UFMI`: FM-index over a wavelet matrix with plain bitmaps.
pub type Ufmi = FmIndex<WaveletMatrix<RankBitVec>>;
/// `ICB-WM`: FM-index over a wavelet matrix with RRR bitmaps
/// (implicit compression boosting, Brisaboa et al. \[3\]).
pub type IcbWm = FmIndex<WaveletMatrix<RrrBitVec>>;
/// `ICB-Huff`: FM-index over a Huffman-shaped wavelet tree with RRR bitmaps
/// (Mäkinen & Navarro \[17\]).
pub type IcbHuff = FmIndex<HuffmanWaveletTree<RrrBitVec>>;
/// `FM-GMR`-style: FM-index over per-symbol position lists.
pub type FmGmr = FmIndex<PositionListSeq>;
/// `FM-AP-HYB`-style: FM-index over an alphabet-partitioned sequence.
pub type FmApHyb = FmIndex<AlphabetPartitionSeq>;
