#![warn(missing_docs)]
//! Baseline FM-index family (paper Table II).
//!
//! A single generic [`FmIndex`] parameterised by the symbol-rank structure
//! holding the BWT yields the paper's five competitors:
//!
//! | Paper name  | Instantiation                                        |
//! |-------------|------------------------------------------------------|
//! | `UFMI`      | wavelet matrix over uncompressed bitmaps              |
//! | `ICB-WM`    | wavelet matrix over RRR bitmaps                       |
//! | `ICB-Huff`  | Huffman-shaped wavelet tree over RRR bitmaps          |
//! | `FM-GMR`    | per-symbol position lists (large-alphabet, fast, big) |
//! | `FM-AP-HYB` | alphabet partitioning (large-alphabet, compressed)    |
//!
//! All of them (and CiNCT in `cinct`) implement [`PatternIndex`]: suffix
//! range queries (Algorithm 1), counting, and sub-path extraction.

pub mod ap;
pub mod fm;
pub mod gmr;

pub use ap::AlphabetPartitionSeq;
pub use fm::{FmIndex, PatternIndex};
pub use gmr::PositionListSeq;

use cinct_succinct::{RankBitVec, RrrBitVec, HuffmanWaveletTree, WaveletMatrix};

/// `UFMI`: FM-index over a wavelet matrix with plain bitmaps.
pub type Ufmi = FmIndex<WaveletMatrix<RankBitVec>>;
/// `ICB-WM`: FM-index over a wavelet matrix with RRR bitmaps
/// (implicit compression boosting, Brisaboa et al. \[3\]).
pub type IcbWm = FmIndex<WaveletMatrix<RrrBitVec>>;
/// `ICB-Huff`: FM-index over a Huffman-shaped wavelet tree with RRR bitmaps
/// (Mäkinen & Navarro \[17\]).
pub type IcbHuff = FmIndex<HuffmanWaveletTree<RrrBitVec>>;
/// `FM-GMR`-style: FM-index over per-symbol position lists.
pub type FmGmr = FmIndex<PositionListSeq>;
/// `FM-AP-HYB`-style: FM-index over an alphabet-partitioned sequence.
pub type FmApHyb = FmIndex<AlphabetPartitionSeq>;
