//! The generic FM-index behind the five Table-II baselines.
//!
//! [`FmIndex`] stores `C[w]` plus the BWT in any [`SymbolSeq`]; backward
//! search follows the paper's Algorithm 1 (`SearchFM`), and sub-path
//! extraction follows the LF-mapping walk of Algorithm 4 (without the RML
//! decoding steps, which belong to CiNCT). All query traffic goes through
//! the unified [`PathQuery`] trait; the encoded-pattern primitives
//! ([`FmIndex::suffix_range`], [`FmIndex::extract_encoded`]) stay public
//! for reference-oracle tests.

use crate::query::{Path, PathQuery};
use cinct_bwt::{bwt_from_sa, suffix_array, CArray};
use cinct_succinct::{Symbol, SymbolSeq};
use std::ops::Range;

/// FM-index generic over the BWT container.
#[derive(Clone, Debug)]
pub struct FmIndex<S: SymbolSeq> {
    c: CArray,
    seq: S,
}

impl<S: SymbolSeq> FmIndex<S> {
    /// Index `text` (which must end with the unique smallest sentinel) using
    /// `make_seq` to wrap its BWT.
    pub fn from_text_with(text: &[u32], sigma: usize, make_seq: impl FnOnce(&[u32]) -> S) -> Self {
        let sa = suffix_array(text, sigma);
        let bwt = bwt_from_sa(text, &sa);
        Self::from_bwt_with(&bwt, sigma, make_seq)
    }

    /// Wrap an existing BWT.
    pub fn from_bwt_with(bwt: &[u32], sigma: usize, make_seq: impl FnOnce(&[u32]) -> S) -> Self {
        let c = CArray::new(bwt, sigma);
        Self {
            c,
            seq: make_seq(bwt),
        }
    }

    /// The `C` array.
    pub fn c_array(&self) -> &CArray {
        &self.c
    }

    /// The BWT container.
    pub fn seq(&self) -> &S {
        &self.seq
    }

    /// One LF-mapping step from BWT position `j`: returns
    /// `(previous text symbol, next BWT position)`. Symbol and rank come
    /// from one fused container query ([`SymbolSeq::access_and_rank`]).
    #[inline]
    pub fn lf_step(&self, j: usize) -> (Symbol, usize) {
        let (w, rank) = self.seq.access_and_rank(j);
        (w, self.c.get(w) + rank)
    }

    /// Algorithm 1 (`SearchFM`): backward search, consuming pattern symbols
    /// last-to-first.
    fn backward_search(&self, mut symbols: impl Iterator<Item = Symbol>) -> Option<Range<usize>> {
        let Some(w) = symbols.next() else {
            return Some(0..self.seq.len());
        };
        if w as usize >= self.c.sigma() {
            return None;
        }
        let mut sp = self.c.get(w);
        let mut ep = self.c.get(w + 1);
        for w in symbols {
            if sp >= ep {
                return None;
            }
            if w as usize >= self.c.sigma() {
                return None;
            }
            let (rsp, rep) = self.seq.rank_pair(w, sp, ep);
            sp = self.c.get(w) + rsp;
            ep = self.c.get(w) + rep;
        }
        if sp < ep {
            Some(sp..ep)
        } else {
            None
        }
    }

    /// The suffix range `R(P) = [sp, ep)` of an **encoded** pattern (text
    /// symbols, i.e. a reversed path shifted past the sentinels), or `None`
    /// when the pattern does not occur. Most callers want
    /// [`PathQuery::range`] over a forward [`Path`].
    pub fn suffix_range(&self, pattern: &[Symbol]) -> Option<Range<usize>> {
        self.backward_search(pattern.iter().rev().copied())
    }

    /// Eager extraction of the `l` text symbols ending at `SA[j]` — the
    /// encoded-level twin of [`PathQuery::extract`].
    pub fn extract_encoded(&self, j: usize, l: usize) -> Vec<Symbol> {
        PathQuery::extract(self, j, l)
    }
}

impl<S: SymbolSeq> PathQuery for FmIndex<S> {
    fn text_len(&self) -> usize {
        self.seq.len()
    }

    fn sigma(&self) -> usize {
        self.c.sigma()
    }

    fn size_in_bytes(&self) -> usize {
        self.c.size_in_bytes() + self.seq.size_in_bytes()
    }

    /// Backward search consumes the trajectory-string pattern last symbol
    /// first; trajectories are stored reversed, so that is the forward
    /// edge order of `path`.
    fn range(&self, path: &Path) -> Option<Range<usize>> {
        self.backward_search(path.search_symbols())
    }

    fn lf_step(&self, j: usize) -> (Symbol, usize) {
        FmIndex::lf_step(self, j)
    }
}

impl<S: SymbolSeq + SymbolSeqFromBwt> FmIndex<S> {
    /// Index `text` with the container's default construction.
    pub fn from_text(text: &[u32], sigma: usize) -> Self {
        Self::from_text_with(text, sigma, |bwt| S::from_bwt(bwt, sigma))
    }

    /// Wrap an existing BWT with the container's default construction.
    pub fn from_bwt(bwt: &[u32], sigma: usize) -> Self {
        Self::from_bwt_with(bwt, sigma, |b| S::from_bwt(b, sigma))
    }
}

/// Default construction of a BWT container; lets `FmIndex::<X>::from_text`
/// work for every variant without threading per-variant parameters.
pub trait SymbolSeqFromBwt: SymbolSeq + Sized {
    /// Build the container over `bwt` with alphabet `0..sigma`.
    fn from_bwt(bwt: &[u32], sigma: usize) -> Self;
}

impl<B: cinct_succinct::BitVecBuild> SymbolSeqFromBwt for cinct_succinct::WaveletMatrix<B> {
    fn from_bwt(bwt: &[u32], _sigma: usize) -> Self {
        Self::new(bwt)
    }
}

impl<B: cinct_succinct::BitVecBuild> SymbolSeqFromBwt for cinct_succinct::HuffmanWaveletTree<B> {
    fn from_bwt(bwt: &[u32], _sigma: usize) -> Self {
        Self::new(bwt)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indices appear in assertion messages
mod tests {
    use super::*;
    use crate::error::QueryError;
    use cinct_bwt::TrajectoryString;
    use cinct_succinct::{RankBitVec, WaveletMatrix};

    type TestIndex = FmIndex<WaveletMatrix<RankBitVec>>;

    /// Paper running example (Fig. 1 / Eq. (1)).
    fn paper_index() -> (TrajectoryString, TestIndex) {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = TrajectoryString::build(&trajs, 6);
        let idx = TestIndex::from_text(ts.text(), ts.sigma());
        (ts, idx)
    }

    #[test]
    fn suffix_range_matches_paper_fig2() {
        let (_, idx) = paper_index();
        // P = BA → R(P) = [9, 11) (paper §II-A2). Edge ids: A=0 → symbol 2,
        // B=1 → symbol 3. Pattern "BA" over T means path A then B (T holds
        // reversed trajectories): encode_pattern([A, B]) = [B+2, A+2].
        let pattern = TrajectoryString::encode_pattern(&[0, 1]);
        assert_eq!(pattern, vec![3, 2]);
        assert_eq!(idx.suffix_range(&pattern), Some(9..11));
        // The forward-path API agrees without any encoding step.
        assert_eq!(idx.range(Path::new(&[0, 1])), Some(9..11));
        assert_eq!(idx.count(Path::new(&[0, 1])), 2); // T1 and T2 travel A→B
    }

    #[test]
    fn counts_match_naive_scan() {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = TrajectoryString::build(&trajs, 6);
        let idx = TestIndex::from_text(ts.text(), ts.sigma());
        let paths: Vec<Vec<u32>> = vec![
            vec![0],
            vec![1],
            vec![0, 1],
            vec![1, 2],
            vec![0, 1, 4],
            vec![4, 5],
            vec![5, 4], // absent
            vec![3, 3], // absent
        ];
        for p in paths {
            let expected: usize = trajs
                .iter()
                .map(|t| t.windows(p.len()).filter(|w| *w == &p[..]).count())
                .sum();
            assert_eq!(idx.count(Path::new(&p)), expected, "path {p:?}");
            // The encoded route computes the same range.
            assert_eq!(
                idx.suffix_range(&TrajectoryString::encode_pattern(&p)),
                idx.range(Path::new(&p)),
                "path {p:?}"
            );
        }
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let (ts, idx) = paper_index();
        assert_eq!(idx.suffix_range(&[]), Some(0..ts.len()));
        assert_eq!(idx.range(Path::new(&[])), Some(0..ts.len()));
    }

    #[test]
    fn out_of_alphabet_pattern() {
        let (_, idx) = paper_index();
        assert_eq!(idx.suffix_range(&[100]), None);
        assert_eq!(idx.suffix_range(&[2, 100]), None);
        // Typed route: range says absent, try_range names the bad edge.
        assert_eq!(idx.range(Path::new(&[98])), None);
        assert_eq!(
            idx.try_range(Path::new(&[98])),
            Err(QueryError::UnknownEdge {
                edge: 98,
                n_edges: 6
            })
        );
    }

    #[test]
    fn baselines_do_not_support_locate() {
        let (_, idx) = paper_index();
        assert!(matches!(
            idx.occurrences(Path::new(&[0, 1])),
            Err(QueryError::LocateUnsupported)
        ));
        // ...but malformed queries are diagnosed first.
        assert!(matches!(
            idx.occurrences(Path::new(&[])),
            Err(QueryError::EmptyPattern)
        ));
    }

    #[test]
    fn extract_recovers_prefixes() {
        // Paper §IV-C example: the rotation at j=3 has suffix FEBA = T1^r.
        let (ts, idx) = paper_index();
        // extract(j, l) returns T[i-l..i), i = SA[j]. Verify against the
        // text for every j by computing SA naively.
        let sa = cinct_bwt::sais::naive_suffix_array(ts.text());
        for j in 0..ts.len() {
            let i = sa[j] as usize;
            for l in 1..=4usize.min(i) {
                let got = idx.extract(j, l);
                assert_eq!(&got[..], &ts.text()[i - l..i], "j={j} l={l}");
                // The streaming iterator yields the same symbols in
                // LF-walk (reverse text) order.
                let streamed: Vec<u32> = idx.extract_iter(j, l).collect();
                assert!(streamed.iter().rev().eq(got.iter()), "j={j} l={l}");
            }
        }
    }

    #[test]
    fn extract_full_text() {
        let (ts, idx) = paper_index();
        // Row 0 is the rotation starting with '#', i.e. SA[0] = n-1; walking
        // n-1 symbols back recovers T[0..n-1).
        let n = ts.len();
        let got = idx.extract(0, n - 1);
        assert_eq!(&got[..], &ts.text()[..n - 1]);
    }

    #[test]
    fn extract_iter_is_lazy_and_sized() {
        let (_, idx) = paper_index();
        let mut it = idx.extract_iter(0, 5);
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }
}
