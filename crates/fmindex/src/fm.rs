//! The generic FM-index and the [`PatternIndex`] query interface.
//!
//! [`FmIndex`] stores `C[w]` plus the BWT in any [`SymbolSeq`]; backward
//! search follows the paper's Algorithm 1 (`SearchFM`), and sub-path
//! extraction follows the LF-mapping walk of Algorithm 4 (without the RML
//! decoding steps, which belong to CiNCT).

use cinct_bwt::{bwt_from_sa, suffix_array, CArray};
use cinct_succinct::{Symbol, SymbolSeq};
use std::ops::Range;

/// Queries shared by every index in this workspace (the five baselines here
/// and CiNCT in the `cinct` crate).
pub trait PatternIndex {
    /// Length of the indexed string (including sentinels).
    fn len(&self) -> usize;

    /// `true` iff nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The suffix range `R(P) = [sp, ep)` of an (encoded) pattern, or
    /// `None` when the pattern does not occur.
    fn suffix_range(&self, pattern: &[Symbol]) -> Option<Range<usize>>;

    /// Number of occurrences of the pattern.
    fn count(&self, pattern: &[Symbol]) -> usize {
        self.suffix_range(pattern).map_or(0, |r| r.len())
    }

    /// `extract(j, l)`: the `l` text symbols ending at the position whose
    /// inverse-suffix-array value is `j` — i.e. `T[i-l..i)` with `i = SA[j]`
    /// (paper §IV-C). Shorter output if the walk hits the start of `T`.
    fn extract(&self, j: usize, l: usize) -> Vec<Symbol>;

    /// Heap bytes used by the index.
    fn size_in_bytes(&self) -> usize;

    /// Index size in bits per indexed symbol (the y-axis of paper Fig. 10).
    fn bits_per_symbol(&self) -> f64 {
        self.size_in_bytes() as f64 * 8.0 / self.len() as f64
    }
}

/// FM-index generic over the BWT container.
#[derive(Clone, Debug)]
pub struct FmIndex<S: SymbolSeq> {
    c: CArray,
    seq: S,
}

impl<S: SymbolSeq> FmIndex<S> {
    /// Index `text` (which must end with the unique smallest sentinel) using
    /// `make_seq` to wrap its BWT.
    pub fn from_text_with(text: &[u32], sigma: usize, make_seq: impl FnOnce(&[u32]) -> S) -> Self {
        let sa = suffix_array(text, sigma);
        let bwt = bwt_from_sa(text, &sa);
        Self::from_bwt_with(&bwt, sigma, make_seq)
    }

    /// Wrap an existing BWT.
    pub fn from_bwt_with(bwt: &[u32], sigma: usize, make_seq: impl FnOnce(&[u32]) -> S) -> Self {
        let c = CArray::new(bwt, sigma);
        Self {
            c,
            seq: make_seq(bwt),
        }
    }

    /// The `C` array.
    pub fn c_array(&self) -> &CArray {
        &self.c
    }

    /// The BWT container.
    pub fn seq(&self) -> &S {
        &self.seq
    }

    /// One LF-mapping step from BWT position `j`: returns
    /// `(previous text symbol, next BWT position)`.
    #[inline]
    pub fn lf_step(&self, j: usize) -> (Symbol, usize) {
        let w = self.seq.access(j);
        (w, self.c.get(w) + self.seq.rank(w, j))
    }
}

impl<S: SymbolSeq> PatternIndex for FmIndex<S> {
    fn len(&self) -> usize {
        self.seq.len()
    }

    /// Algorithm 1 (`SearchFM`): backward search over the BWT.
    fn suffix_range(&self, pattern: &[Symbol]) -> Option<Range<usize>> {
        let m = pattern.len();
        if m == 0 {
            return Some(0..self.len());
        }
        let w = pattern[m - 1];
        if w as usize >= self.c.sigma() {
            return None;
        }
        let mut sp = self.c.get(w);
        let mut ep = self.c.get(w + 1);
        for i in 2..=m {
            if sp >= ep {
                return None;
            }
            let w = pattern[m - i];
            if w as usize >= self.c.sigma() {
                return None;
            }
            sp = self.c.get(w) + self.seq.rank(w, sp);
            ep = self.c.get(w) + self.seq.rank(w, ep);
        }
        if sp < ep {
            Some(sp..ep)
        } else {
            None
        }
    }

    fn extract(&self, j: usize, l: usize) -> Vec<Symbol> {
        let mut out = vec![0 as Symbol; l];
        let mut j = j;
        for k in 0..l {
            let (w, next) = self.lf_step(j);
            out[l - 1 - k] = w;
            j = next;
        }
        out
    }

    fn size_in_bytes(&self) -> usize {
        self.c.size_in_bytes() + self.seq.size_in_bytes()
    }
}

impl<S: SymbolSeq + SymbolSeqFromBwt> FmIndex<S> {
    /// Index `text` with the container's default construction.
    pub fn from_text(text: &[u32], sigma: usize) -> Self {
        Self::from_text_with(text, sigma, |bwt| S::from_bwt(bwt, sigma))
    }

    /// Wrap an existing BWT with the container's default construction.
    pub fn from_bwt(bwt: &[u32], sigma: usize) -> Self {
        Self::from_bwt_with(bwt, sigma, |b| S::from_bwt(b, sigma))
    }
}

/// Default construction of a BWT container; lets `FmIndex::<X>::from_text`
/// work for every variant without threading per-variant parameters.
pub trait SymbolSeqFromBwt: SymbolSeq + Sized {
    /// Build the container over `bwt` with alphabet `0..sigma`.
    fn from_bwt(bwt: &[u32], sigma: usize) -> Self;
}

impl<B: cinct_succinct::BitVecBuild> SymbolSeqFromBwt for cinct_succinct::WaveletMatrix<B> {
    fn from_bwt(bwt: &[u32], _sigma: usize) -> Self {
        Self::new(bwt)
    }
}

impl<B: cinct_succinct::BitVecBuild> SymbolSeqFromBwt for cinct_succinct::HuffmanWaveletTree<B> {
    fn from_bwt(bwt: &[u32], _sigma: usize) -> Self {
        Self::new(bwt)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indices appear in assertion messages
mod tests {
    use super::*;
    use cinct_bwt::TrajectoryString;
    use cinct_succinct::{RankBitVec, WaveletMatrix};

    type TestIndex = FmIndex<WaveletMatrix<RankBitVec>>;

    /// Paper running example (Fig. 1 / Eq. (1)).
    fn paper_index() -> (TrajectoryString, TestIndex) {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = TrajectoryString::build(&trajs, 6);
        let idx = TestIndex::from_text(ts.text(), ts.sigma());
        (ts, idx)
    }

    #[test]
    fn suffix_range_matches_paper_fig2() {
        let (_, idx) = paper_index();
        // P = BA → R(P) = [9, 11) (paper §II-A2). Edge ids: A=0 → symbol 2,
        // B=1 → symbol 3. Pattern "BA" over T means path A then B (T holds
        // reversed trajectories): encode_pattern([A, B]) = [B+2, A+2].
        let pattern = TrajectoryString::encode_pattern(&[0, 1]);
        assert_eq!(pattern, vec![3, 2]);
        assert_eq!(idx.suffix_range(&pattern), Some(9..11));
        assert_eq!(idx.count(&pattern), 2); // T1 and T2 travel A→B
    }

    #[test]
    fn counts_match_naive_scan() {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = TrajectoryString::build(&trajs, 6);
        let idx = TestIndex::from_text(ts.text(), ts.sigma());
        let paths: Vec<Vec<u32>> = vec![
            vec![0],
            vec![1],
            vec![0, 1],
            vec![1, 2],
            vec![0, 1, 4],
            vec![4, 5],
            vec![5, 4], // absent
            vec![3, 3], // absent
        ];
        for p in paths {
            let expected: usize = trajs
                .iter()
                .map(|t| t.windows(p.len()).filter(|w| *w == &p[..]).count())
                .sum();
            let got = idx.count(&TrajectoryString::encode_pattern(&p));
            assert_eq!(got, expected, "path {p:?}");
        }
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let (ts, idx) = paper_index();
        assert_eq!(idx.suffix_range(&[]), Some(0..ts.len()));
    }

    #[test]
    fn out_of_alphabet_pattern() {
        let (_, idx) = paper_index();
        assert_eq!(idx.suffix_range(&[100]), None);
        assert_eq!(idx.suffix_range(&[2, 100]), None);
    }

    #[test]
    fn extract_recovers_prefixes() {
        // Paper §IV-C example: the rotation at j=3 has suffix FEBA = T1^r.
        let (ts, idx) = paper_index();
        // extract(j, l) returns T[i-l..i), i = SA[j]. Verify against the
        // text for every j by computing SA naively.
        let sa = cinct_bwt::sais::naive_suffix_array(ts.text());
        for j in 0..ts.len() {
            let i = sa[j] as usize;
            for l in 1..=4usize.min(i) {
                let got = idx.extract(j, l);
                assert_eq!(&got[..], &ts.text()[i - l..i], "j={j} l={l}");
            }
        }
    }

    #[test]
    fn extract_full_text() {
        let (ts, idx) = paper_index();
        // Row 0 is the rotation starting with '#', i.e. SA[0] = n-1; walking
        // n-1 symbols back recovers T[0..n-1).
        let n = ts.len();
        let got = idx.extract(0, n - 1);
        assert_eq!(&got[..], &ts.text()[..n - 1]);
    }
}
