//! Property-based tests for the string substrate: SA-IS vs naive suffix
//! sorting, BWT invertibility, trajectory-string bookkeeping, and entropy
//! identities.

use cinct_bwt::{
    bwt, entropy_h0, entropy_hk, inverse_bwt, suffix_array, suffix_array_reference, CArray,
    TrajectoryString,
};
use proptest::prelude::*;

fn body_strategy() -> impl Strategy<Value = Vec<u32>> {
    (2u32..30).prop_flat_map(|sigma| proptest::collection::vec(0..sigma, 0..400))
}

/// Random trajectory corpora shaped like the ones RML labels: short edge
/// walks over a small network, `$`-separated once concatenated.
fn trajs_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..40, 1..40), 1..20)
}

fn with_sentinel(body: &[u32]) -> Vec<u32> {
    let mut v: Vec<u32> = body.iter().map(|&c| c + 1).collect();
    v.push(0);
    v
}

/// Both SA-IS paths (allocation-lean and seed reference) against the naive
/// comparison sort.
fn assert_sa_matches_naive(text: &[u32]) {
    let sigma = text.iter().copied().max().unwrap() as usize + 1;
    let expected = cinct_bwt::sais::naive_suffix_array(text);
    assert_eq!(suffix_array(text, sigma), expected, "lean text={text:?}");
    assert_eq!(
        suffix_array_reference(text, sigma),
        expected,
        "reference text={text:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn sais_equals_naive(body in body_strategy()) {
        assert_sa_matches_naive(&with_sentinel(&body));
    }

    #[test]
    fn sais_equals_naive_on_trajectory_strings(trajs in trajs_strategy()) {
        // RML-labeled corpora hit SA-IS through TrajectoryString: many
        // repeated `$` separators and a skewed edge alphabet.
        let ts = TrajectoryString::build(&trajs, 40);
        assert_sa_matches_naive(ts.text());
    }

    #[test]
    fn bwt_inverts(body in body_strategy()) {
        let text = with_sentinel(&body);
        let sigma = text.iter().copied().max().unwrap() as usize + 1;
        let (_, tbwt) = bwt(&text, sigma);
        prop_assert_eq!(inverse_bwt(&tbwt, sigma), text);
    }

    #[test]
    fn bwt_preserves_histogram(body in body_strategy()) {
        let text = with_sentinel(&body);
        let sigma = text.iter().copied().max().unwrap() as usize + 1;
        let (_, tbwt) = bwt(&text, sigma);
        let mut a = text.clone();
        let mut b = tbwt.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Entropy is permutation-invariant.
        prop_assert!((entropy_h0(&text) - entropy_h0(&tbwt)).abs() < 1e-9);
    }

    #[test]
    fn c_array_partitions(body in body_strategy()) {
        let text = with_sentinel(&body);
        let sigma = text.iter().copied().max().unwrap() as usize + 1;
        let c = CArray::new(&text, sigma);
        prop_assert_eq!(c.get(0), 0);
        prop_assert_eq!(c.get(sigma as u32), text.len());
        let mut total = 0usize;
        for w in 0..sigma as u32 {
            let cnt = text.iter().filter(|&&s| s == w).count();
            prop_assert_eq!(c.count(w), cnt);
            total += cnt;
            prop_assert_eq!(c.get(w + 1), total);
            for j in c.symbol_range(w) {
                prop_assert_eq!(c.symbol_at(j), w);
            }
        }
    }

    #[test]
    fn symbol_at_matches_binary_search_reference(body in body_strategy()) {
        // The O(1) rank-backed context lookup against the seed's binary
        // search, over every position of a random text (alphabet gaps and
        // skewed counts included).
        let text = with_sentinel(&body);
        let sigma = text.iter().copied().max().unwrap() as usize + 1;
        let c = CArray::new(&text, sigma);
        for j in 0..text.len() {
            prop_assert_eq!(c.symbol_at(j), c.symbol_at_binsearch(j), "j={}", j);
        }
        // The accelerator survives a raw-counts roundtrip.
        let back = CArray::from_raw_counts(c.raw_counts().to_vec()).unwrap();
        for j in 0..text.len() {
            prop_assert_eq!(back.symbol_at(j), c.symbol_at(j), "roundtrip j={}", j);
        }
    }

    #[test]
    fn hk_never_exceeds_h0(body in body_strategy(), k in 1usize..4) {
        if body.len() > k + 1 {
            let h0 = entropy_h0(&body);
            let hk = entropy_hk(&body, k);
            prop_assert!(hk <= h0 + 1e-9, "H{} = {} > H0 = {}", k, hk, h0);
        }
    }

    #[test]
    fn trajectory_string_roundtrip(
        trajs in proptest::collection::vec(proptest::collection::vec(0u32..20, 0..30), 0..12)
    ) {
        let ts = TrajectoryString::build(&trajs, 20);
        let non_empty: Vec<&Vec<u32>> = trajs.iter().filter(|t| !t.is_empty()).collect();
        prop_assert_eq!(ts.num_trajectories(), non_empty.len());
        for (i, t) in non_empty.iter().enumerate() {
            prop_assert_eq!(&ts.trajectory(i), *t);
        }
        // Length bookkeeping: body symbols + one '$' per trajectory + '#'.
        let expect_len: usize = non_empty.iter().map(|t| t.len() + 1).sum::<usize>() + 1;
        prop_assert_eq!(ts.len(), expect_len);
    }

    #[test]
    fn pattern_encode_decode(path in proptest::collection::vec(0u32..1000, 0..50)) {
        let enc = TrajectoryString::encode_pattern(&path);
        prop_assert_eq!(TrajectoryString::decode_pattern(&enc), path);
    }
}

#[test]
fn sais_sigma_one_bodies() {
    // A single distinct body symbol (effective sigma = 1 besides the
    // sentinel) at several lengths, including block-boundary sizes.
    for n in [1usize, 2, 63, 64, 65, 500] {
        assert_sa_matches_naive(&with_sentinel(&vec![1u32; n]));
    }
}

#[test]
fn sais_all_distinct_bodies() {
    // Every symbol distinct: no repeated LMS substrings, so naming is
    // injective and the recursion bottoms out immediately — in both
    // ascending and shuffled orders.
    let ascending: Vec<u32> = (0..200u32).collect();
    assert_sa_matches_naive(&with_sentinel(&ascending));
    let descending: Vec<u32> = (0..200u32).rev().collect();
    assert_sa_matches_naive(&with_sentinel(&descending));
    let shuffled: Vec<u32> = (0..199u32).map(|i| (i * 97) % 199).collect();
    assert_sa_matches_naive(&with_sentinel(&shuffled));
}
