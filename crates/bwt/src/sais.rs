//! SA-IS: linear-time suffix-array construction over integer alphabets
//! (Nong, Zhang & Chan, 2009).
//!
//! The CiNCT paper computes the BWT of trajectory strings with `sais.hxx`;
//! this module is the equivalent substrate. The input is a `u32` sequence
//! whose **last element must be the unique, smallest symbol** (the
//! trajectory string's `#` sentinel satisfies this by construction).

/// Build the suffix array of `text` over alphabet `0..sigma`.
///
/// Requirements (checked with `debug_assert` in hot code, `assert` at the
/// entry point):
/// * `text` is non-empty,
/// * `text[text.len()-1]` is strictly smaller than every other element and
///   occurs exactly once.
///
/// Returns `sa` with `sa[i]` = start position of the `i`-th smallest suffix.
pub fn suffix_array(text: &[u32], sigma: usize) -> Vec<u32> {
    assert!(!text.is_empty(), "suffix_array of empty text");
    let last = *text.last().expect("non-empty");
    assert!(
        text[..text.len() - 1].iter().all(|&c| c > last),
        "last symbol must be the unique minimum sentinel"
    );
    debug_assert!(text.iter().all(|&c| (c as usize) < sigma));
    let mut sa = vec![0u32; text.len()];
    sais_main(text, &mut sa, sigma);
    sa
}

/// `true` bits mark S-type suffixes.
fn classify(text: &[u32]) -> Vec<bool> {
    let n = text.len();
    let mut stype = vec![false; n];
    stype[n - 1] = true; // the sentinel suffix is S-type by convention
    for i in (0..n - 1).rev() {
        stype[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && stype[i + 1]);
    }
    stype
}

/// Position `i` is LMS iff `i > 0`, `stype[i]` and `!stype[i-1]`.
#[inline]
fn is_lms(stype: &[bool], i: usize) -> bool {
    i > 0 && stype[i] && !stype[i - 1]
}

/// Bucket boundaries: `heads[c]` = first index of bucket `c`,
/// `tails[c]` = one past the last.
fn bucket_bounds(text: &[u32], sigma: usize) -> (Vec<u32>, Vec<u32>) {
    let mut counts = vec![0u32; sigma];
    for &c in text {
        counts[c as usize] += 1;
    }
    let mut heads = vec![0u32; sigma];
    let mut tails = vec![0u32; sigma];
    let mut sum = 0u32;
    for c in 0..sigma {
        heads[c] = sum;
        sum += counts[c];
        tails[c] = sum;
    }
    (heads, tails)
}

const EMPTY: u32 = u32::MAX;

/// Induced sort: given LMS positions placed at bucket tails, fill in L-type
/// then S-type suffixes.
fn induce(text: &[u32], sa: &mut [u32], stype: &[bool], heads: &[u32], tails: &[u32]) {
    let n = text.len();
    // L-type: left-to-right from bucket heads.
    let mut h = heads.to_vec();
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if !stype[p] {
                let c = text[p] as usize;
                sa[h[c] as usize] = p as u32;
                h[c] += 1;
            }
        }
    }
    // S-type: right-to-left from bucket tails.
    let mut t = tails.to_vec();
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if stype[p] {
                let c = text[p] as usize;
                t[c] -= 1;
                sa[t[c] as usize] = p as u32;
            }
        }
    }
}

fn sais_main(text: &[u32], sa: &mut [u32], sigma: usize) {
    let n = text.len();
    if n == 1 {
        sa[0] = 0;
        return;
    }
    let stype = classify(text);
    let (heads, tails) = bucket_bounds(text, sigma);

    // Step 1: place LMS suffixes at bucket tails (arbitrary in-bucket order).
    sa.fill(EMPTY);
    {
        let mut t = tails.clone();
        for i in (1..n).rev() {
            if is_lms(&stype, i) {
                let c = text[i] as usize;
                t[c] -= 1;
                sa[t[c] as usize] = i as u32;
            }
        }
    }
    induce(text, sa, &stype, &heads, &tails);

    // Step 2: compact sorted LMS positions and name LMS substrings.
    let mut lms_sorted: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&j| j != EMPTY && is_lms(&stype, j as usize))
        .collect();
    let n_lms = lms_sorted.len();
    if n_lms == 0 {
        // No LMS positions (monotone non-increasing text): the induce pass
        // above already sorted everything.
        return;
    }
    // Name: equal adjacent LMS substrings share a name.
    let mut names = vec![EMPTY; n];
    let mut name_count: u32 = 0;
    {
        let mut prev: Option<usize> = None;
        for &jw in lms_sorted.iter() {
            let j = jw as usize;
            let same = match prev {
                Some(p) => lms_substring_eq(text, &stype, p, j),
                None => false,
            };
            if !same {
                name_count += 1;
            }
            names[j] = name_count - 1;
            prev = Some(j);
        }
    }

    if (name_count as usize) < n_lms {
        // Recurse on the reduced string of LMS names, in text order.
        let mut reduced = Vec::with_capacity(n_lms);
        let mut lms_positions = Vec::with_capacity(n_lms);
        for (i, &nm) in names.iter().enumerate() {
            if nm != EMPTY {
                reduced.push(nm);
                lms_positions.push(i as u32);
            }
        }
        let mut sub_sa = vec![0u32; n_lms];
        sais_main(&reduced, &mut sub_sa, name_count as usize);
        for (k, &r) in sub_sa.iter().enumerate() {
            lms_sorted[k] = lms_positions[r as usize];
        }
    }
    // else: names are already unique, lms_sorted is correctly ordered.

    // Step 3: place sorted LMS suffixes at bucket tails and induce again.
    sa.fill(EMPTY);
    {
        let mut t = tails.clone();
        for &jw in lms_sorted.iter().rev() {
            let c = text[jw as usize] as usize;
            t[c] -= 1;
            sa[t[c] as usize] = jw;
        }
    }
    induce(text, sa, &stype, &heads, &tails);
}

/// Compare the LMS substrings starting at `a` and `b` for equality.
fn lms_substring_eq(text: &[u32], stype: &[bool], a: usize, b: usize) -> bool {
    let n = text.len();
    if a == b {
        return true;
    }
    let mut i = 0usize;
    loop {
        let (pa, pb) = (a + i, b + i);
        let a_end = pa >= n || (i > 0 && is_lms(stype, pa));
        let b_end = pb >= n || (i > 0 && is_lms(stype, pb));
        if a_end && b_end {
            return true;
        }
        if a_end != b_end {
            return false;
        }
        if text[pa] != text[pb] || stype[pa] != stype[pb] {
            return false;
        }
        i += 1;
    }
}

/// O(n² log n) reference implementation for testing.
pub fn naive_suffix_array(text: &[u32]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_sentinel(body: &[u32]) -> Vec<u32> {
        // Shift symbols up by one and append sentinel 0.
        let mut v: Vec<u32> = body.iter().map(|&c| c + 1).collect();
        v.push(0);
        v
    }

    fn check(body: &[u32]) {
        let text = with_sentinel(body);
        let sigma = text.iter().copied().max().unwrap() as usize + 1;
        let sa = suffix_array(&text, sigma);
        let expected = naive_suffix_array(&text);
        assert_eq!(sa, expected, "text={text:?}");
    }

    #[test]
    fn banana() {
        // "banana" as integers b=2,a=1,n=3
        check(&[2, 1, 3, 1, 3, 1]);
    }

    #[test]
    fn mississippi() {
        // m=2,i=1,s=4,p=3
        check(&[2, 1, 4, 4, 1, 4, 4, 1, 3, 3, 1]);
    }

    #[test]
    fn single_and_tiny() {
        check(&[]);
        check(&[5]);
        check(&[1, 1]);
        check(&[2, 1]);
        check(&[1, 2]);
    }

    #[test]
    fn all_equal_runs() {
        check(&[7; 50]);
        check(&[1, 1, 2, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn monotone_sequences() {
        check(&(1..40u32).collect::<Vec<_>>());
        check(&(1..40u32).rev().collect::<Vec<_>>());
    }

    #[test]
    fn pseudo_random_small_alphabets() {
        let mut x = 12345u64;
        for sigma in [2u32, 3, 4, 10, 100] {
            for len in [10usize, 50, 200, 1000] {
                let body: Vec<u32> = (0..len)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((x >> 33) as u32) % sigma
                    })
                    .collect();
                check(&body);
            }
        }
    }

    #[test]
    fn repetitive_trajectory_like() {
        // Long repeated paths separated by a separator (like $-separated
        // trajectory strings) stress the recursion.
        let mut body = Vec::new();
        for _ in 0..30 {
            body.extend_from_slice(&[5, 6, 7, 8, 9, 10]);
            body.push(1); // separator-like
        }
        check(&body);
    }

    #[test]
    #[should_panic(expected = "unique minimum sentinel")]
    fn rejects_missing_sentinel() {
        suffix_array(&[2, 1, 2], 3);
    }

    #[test]
    fn large_random_consistency() {
        let mut x = 999u64;
        let body: Vec<u32> = (0..20_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % 50
            })
            .collect();
        let text = with_sentinel(&body);
        let sigma = 52;
        let sa = suffix_array(&text, sigma);
        // Verify sortedness pairwise (O(n) expected with random data).
        for w in sa.windows(2) {
            assert!(
                text[w[0] as usize..] < text[w[1] as usize..],
                "suffixes out of order"
            );
        }
        // Verify it is a permutation.
        let mut seen = vec![false; text.len()];
        for &i in &sa {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
    }
}
