//! SA-IS: linear-time suffix-array construction over integer alphabets
//! (Nong, Zhang & Chan, 2009).
//!
//! The CiNCT paper computes the BWT of trajectory strings with `sais.hxx`;
//! this module is the equivalent substrate. The input is a `u32` sequence
//! whose **last element must be the unique, smallest symbol** (the
//! trajectory string's `#` sentinel satisfies this by construction).
//!
//! # Allocation-lean construction
//!
//! The default path ([`suffix_array`] / [`suffix_array_with`]) allocates
//! only the output `sa` plus a reusable [`SaisWorkspace`]:
//!
//! * suffix types are a **bit-packed** map in the workspace (the seed spent
//!   one `Vec<bool>` — 8x the bits — per recursion level);
//! * bucket counters live in two workspace arrays **reused across levels**
//!   (the seed allocated counts/heads/tails per level and then cloned the
//!   head/tail cursors again inside every induce pass);
//! * reduced problems are stored **inside the `sa` buffer itself**: the
//!   sub-problem's SA occupies `sa[0..m]`, LMS names park at `sa[m + j/2]`,
//!   and the reduced text / LMS-position table share `sa[n-m..n]` — the
//!   classic in-buffer layout, so recursion allocates nothing at all. The
//!   type map is recomputed after each recursive call instead of being kept
//!   per level.
//!
//! The seed implementation survives as [`suffix_array_reference`] so the
//! `buildpath` bench can measure both in one binary, and property tests pin
//! the two (and a naive sort) to each other.

const EMPTY: u32 = u32::MAX;

/// Reusable scratch for [`suffix_array_with`]: holds every transient the
/// construction needs so repeated builds (and all recursion levels of one
/// build) allocate nothing beyond the output array.
///
/// The type maps and symbol counts are **stacked arenas**: level `k`
/// occupies a contiguous region after level `k-1`'s, so a level's data
/// survives its recursive call untouched (no recomputation on the way
/// back up). Total arena footprint is geometric — under `2n` bits of
/// types and `O(σ + n)` count words.
#[derive(Clone, Debug, Default)]
pub struct SaisWorkspace {
    /// Bit-packed suffix types, one region per live recursion level
    /// (bit `i` of a level's region = the suffix at `i` is S-type).
    stype: Vec<u64>,
    /// Bit-packed LMS markers, derived from `stype` per level so the hot
    /// loops test one bit (and scan whole words) instead of two.
    lms: Vec<u64>,
    /// Per-symbol occurrence counts, one region per live recursion level.
    counts: Vec<u32>,
    /// Scratch bucket cursors (heads or tails derived from `counts`).
    bkt: Vec<u32>,
}

impl SaisWorkspace {
    /// An empty workspace; buffers grow to fit the first text and are
    /// reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Build the suffix array of `text` over alphabet `0..sigma`.
///
/// Requirements (checked with `debug_assert` in hot code, `assert` at the
/// entry point):
/// * `text` is non-empty,
/// * `text[text.len()-1]` is strictly smaller than every other element and
///   occurs exactly once.
///
/// Returns `sa` with `sa[i]` = start position of the `i`-th smallest suffix.
pub fn suffix_array(text: &[u32], sigma: usize) -> Vec<u32> {
    let mut ws = SaisWorkspace::new();
    suffix_array_with(text, sigma, &mut ws)
}

/// [`suffix_array`] with caller-provided scratch, so batch index builds
/// reuse one workspace across texts.
pub fn suffix_array_with(text: &[u32], sigma: usize, ws: &mut SaisWorkspace) -> Vec<u32> {
    assert_input(text);
    debug_assert!(text.iter().all(|&c| (c as usize) < sigma));
    let mut sa = vec![0u32; text.len()];
    sais_lean(text, &mut sa, sigma, ws, 0, 0);
    sa
}

fn assert_input(text: &[u32]) {
    assert!(!text.is_empty(), "suffix_array of empty text");
    let last = *text.last().expect("non-empty");
    assert!(
        text[..text.len() - 1].iter().all(|&c| c > last),
        "last symbol must be the unique minimum sentinel"
    );
}

/// The suffix type of position `i` (bit-packed map): `true` = S-type.
#[inline]
fn st_get(stype: &[u64], i: usize) -> bool {
    (stype[i >> 6] >> (i & 63)) & 1 == 1
}

/// Position `i` is LMS (per the derived LMS bitmap).
#[inline]
fn is_lms(lms: &[u64], i: usize) -> bool {
    (lms[i >> 6] >> (i & 63)) & 1 == 1
}

/// One fused right-to-left pass: bit-packed type map (words accumulate in
/// a register and store once each — no per-bit read-modify-write), symbol
/// counts, and then the derived LMS bitmap
/// (`S & !(S << 1)`, patched across word seams, bit 0 cleared — position 0
/// is never LMS).
fn classify_and_count(text: &[u32], stype: &mut [u64], lms: &mut [u64], counts: &mut [u32]) {
    let n = text.len();
    debug_assert_eq!(stype.len(), n.div_ceil(64));
    counts.fill(0);
    counts[text[n - 1] as usize] += 1;
    let mut next_s = true; // the sentinel suffix is S-type by convention
    let mut word = 1u64 << ((n - 1) & 63);
    let mut widx = (n - 1) >> 6;
    for i in (0..n - 1).rev() {
        if (i >> 6) != widx {
            stype[widx] = word;
            widx = i >> 6;
            word = 0;
        }
        let c = text[i];
        counts[c as usize] += 1;
        let s = c < text[i + 1] || (c == text[i + 1] && next_s);
        word |= (s as u64) << (i & 63);
        next_s = s;
    }
    stype[widx] = word;
    let mut prev_top = 1u64; // forces bit 0 of word 0 clear (never LMS)
    for (w, l) in stype.iter().zip(lms.iter_mut()) {
        *l = w & !((w << 1) | prev_top);
        prev_top = w >> 63;
    }
}

/// Visit every set bit of the (level-sized) bitmap in ascending position
/// order, whole words at a time.
#[inline]
fn for_each_set_bit(bits: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in bits.iter().enumerate() {
        let mut rest = word;
        while rest != 0 {
            f((w << 6) + rest.trailing_zeros() as usize);
            rest &= rest - 1;
        }
    }
}

/// Derive bucket tail cursors (`bkt[c]` = one past bucket `c`) from counts.
fn bucket_tails(counts: &[u32], bkt: &mut Vec<u32>) {
    bkt.clear();
    bkt.reserve(counts.len());
    let mut sum = 0u32;
    for &c in counts {
        sum += c;
        bkt.push(sum);
    }
}

/// Derive bucket head cursors (`bkt[c]` = first index of bucket `c`).
fn bucket_heads(counts: &[u32], bkt: &mut Vec<u32>) {
    bkt.clear();
    bkt.reserve(counts.len());
    let mut sum = 0u32;
    for &c in counts {
        bkt.push(sum);
        sum += c;
    }
}

/// Induced sort: given LMS positions placed at bucket tails, fill in L-type
/// then S-type suffixes. The head/tail cursors are derived into the shared
/// scratch `bkt` per pass (no per-call clones).
fn induce(text: &[u32], sa: &mut [u32], stype: &[u64], counts: &[u32], bkt: &mut Vec<u32>) {
    let n = text.len();
    // L-type: left-to-right from bucket heads.
    bucket_heads(counts, bkt);
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if !st_get(stype, p) {
                let c = text[p] as usize;
                sa[bkt[c] as usize] = p as u32;
                bkt[c] += 1;
            }
        }
    }
    // S-type: right-to-left from bucket tails.
    bucket_tails(counts, bkt);
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if st_get(stype, p) {
                let c = text[p] as usize;
                bkt[c] -= 1;
                sa[bkt[c] as usize] = p as u32;
            }
        }
    }
}

/// Compare the LMS substrings starting at `a` and `b` for equality.
fn lms_substring_eq(text: &[u32], stype: &[u64], lms: &[u64], a: usize, b: usize) -> bool {
    let n = text.len();
    if a == b {
        return true;
    }
    let mut i = 0usize;
    loop {
        let (pa, pb) = (a + i, b + i);
        let a_end = pa >= n || (i > 0 && is_lms(lms, pa));
        let b_end = pb >= n || (i > 0 && is_lms(lms, pb));
        if a_end && b_end {
            return true;
        }
        if a_end != b_end {
            return false;
        }
        if text[pa] != text[pb] || st_get(stype, pa) != st_get(stype, pb) {
            return false;
        }
        i += 1;
    }
}

/// One SA-IS level over workspace scratch; reduced problems nest inside
/// `sa` itself and this level's type map / counts live at `[st_off..]` /
/// `[cnt_off..]` of the stacked arenas, so they survive the recursive
/// call intact (see module docs).
fn sais_lean(
    text: &[u32],
    sa: &mut [u32],
    sigma: usize,
    ws: &mut SaisWorkspace,
    st_off: usize,
    cnt_off: usize,
) {
    let n = text.len();
    debug_assert_eq!(sa.len(), n);
    if n == 1 {
        sa[0] = 0;
        return;
    }
    let words = n.div_ceil(64);
    if ws.stype.len() < st_off + words {
        ws.stype.resize(st_off + words, 0);
        ws.lms.resize(st_off + words, 0);
    }
    {
        let (stype, lms) = (
            &mut ws.stype[st_off..st_off + words],
            &mut ws.lms[st_off..st_off + words],
        );
        if ws.counts.len() < cnt_off + sigma {
            ws.counts.resize(cnt_off + sigma, 0);
        }
        classify_and_count(text, stype, lms, &mut ws.counts[cnt_off..cnt_off + sigma]);
    }

    // Step 1: place LMS suffixes at bucket tails (arbitrary in-bucket
    // order) and induce a first, LMS-substring-sorting pass.
    sa.fill(EMPTY);
    bucket_tails(&ws.counts[cnt_off..cnt_off + sigma], &mut ws.bkt);
    {
        let lms = &ws.lms[st_off..st_off + words];
        for_each_set_bit(lms, |i| {
            let c = text[i] as usize;
            ws.bkt[c] -= 1;
            sa[ws.bkt[c] as usize] = i as u32;
        });
        induce(
            text,
            sa,
            &ws.stype[st_off..st_off + words],
            &ws.counts[cnt_off..cnt_off + sigma],
            &mut ws.bkt,
        );
    }

    // Step 2: compact the (substring-)sorted LMS positions to the front.
    let mut m = 0usize;
    {
        let lms = &ws.lms[st_off..st_off + words];
        for i in 0..n {
            let j = sa[i];
            if j != EMPTY && is_lms(lms, j as usize) {
                sa[m] = j;
                m += 1;
            }
        }
    }
    if m == 0 {
        // No LMS positions (monotone non-increasing text): the induce pass
        // above already sorted everything.
        return;
    }

    // Step 3: name LMS substrings. LMS positions are >= 2 apart, so `j/2`
    // is injective over them and the names fit in `sa[m .. m + ceil(n/2)]`
    // (which never overlaps the compacted list: `m <= floor(n/2)`).
    let name_slots = n.div_ceil(2);
    debug_assert!(m + name_slots <= n);
    for slot in sa[m..m + name_slots].iter_mut() {
        *slot = EMPTY;
    }
    let mut name_count: u32 = 0;
    {
        let stype = &ws.stype[st_off..st_off + words];
        let lms = &ws.lms[st_off..st_off + words];
        let (front, back) = sa.split_at_mut(m);
        let mut prev: Option<usize> = None;
        for &jw in front.iter() {
            let j = jw as usize;
            let same = prev.is_some_and(|p| lms_substring_eq(text, stype, lms, p, j));
            if !same {
                name_count += 1;
            }
            back[j / 2] = name_count - 1;
            prev = Some(j);
        }
    }

    if (name_count as usize) < m {
        // Compact the reduced string (LMS names in text order) into
        // `sa[n-m..n]`, scanning right-to-left so the write cursor never
        // passes the read cursor.
        {
            let mut w = n - 1;
            for r in (m..m + name_slots).rev() {
                if sa[r] != EMPTY {
                    sa[w] = sa[r];
                    w -= 1;
                }
            }
            debug_assert_eq!(w, n - m - 1);
        }
        // Recurse with the sub-SA in `sa[0..m]` (m <= n-m, so the split
        // holds both); the child's arena regions start past this level's.
        {
            let (front, back) = sa.split_at_mut(n - m);
            sais_lean(
                back,
                &mut front[..m],
                name_count as usize,
                ws,
                st_off + words,
                cnt_off + sigma,
            );
        }
        // The reduced text is spent; overwrite `sa[n-m..n]` with the LMS
        // positions in text order, then map reduced ranks back. This
        // level's maps are still valid (the child wrote only past them).
        {
            let lms = &ws.lms[st_off..st_off + words];
            let mut k = n - m;
            for_each_set_bit(lms, |i| {
                sa[k] = i as u32;
                k += 1;
            });
            debug_assert_eq!(k, n);
        }
        for i in 0..m {
            sa[i] = sa[n - m + sa[i] as usize];
        }
    }
    // else: names are already unique — `sa[0..m]` is the true LMS order.

    // Step 4: scatter the sorted LMS suffixes to bucket tails and induce
    // the final order. Processing right-to-left is collision-free: the
    // target slot of the i-th sorted LMS is strictly increasing in i, so
    // every write lands at an index >= the entries still to be read.
    for slot in sa[m..].iter_mut() {
        *slot = EMPTY;
    }
    bucket_tails(&ws.counts[cnt_off..cnt_off + sigma], &mut ws.bkt);
    for i in (0..m).rev() {
        let j = sa[i];
        sa[i] = EMPTY;
        let c = text[j as usize] as usize;
        ws.bkt[c] -= 1;
        sa[ws.bkt[c] as usize] = j;
    }
    induce(
        text,
        sa,
        &ws.stype[st_off..st_off + words],
        &ws.counts[cnt_off..cnt_off + sigma],
        &mut ws.bkt,
    );
}

/// The seed's SA-IS, kept verbatim so `cinct_bench`'s `buildpath` binary
/// can measure the allocation-lean path against it in one binary (the
/// PR 3 `*_reference` convention) and property tests can pin the two.
/// Allocates per recursion level: a `Vec<bool>` type map, three bucket
/// arrays plus per-pass clones, the name table, and the reduced problem.
pub fn suffix_array_reference(text: &[u32], sigma: usize) -> Vec<u32> {
    assert_input(text);
    debug_assert!(text.iter().all(|&c| (c as usize) < sigma));
    let mut sa = vec![0u32; text.len()];
    reference::sais_main(text, &mut sa, sigma);
    sa
}

/// The seed implementation, unchanged (see [`suffix_array_reference`]).
mod reference {
    use super::EMPTY;

    /// `true` bits mark S-type suffixes.
    fn classify(text: &[u32]) -> Vec<bool> {
        let n = text.len();
        let mut stype = vec![false; n];
        stype[n - 1] = true; // the sentinel suffix is S-type by convention
        for i in (0..n - 1).rev() {
            stype[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && stype[i + 1]);
        }
        stype
    }

    /// Position `i` is LMS iff `i > 0`, `stype[i]` and `!stype[i-1]`.
    #[inline]
    fn is_lms(stype: &[bool], i: usize) -> bool {
        i > 0 && stype[i] && !stype[i - 1]
    }

    /// Bucket boundaries: `heads[c]` = first index of bucket `c`,
    /// `tails[c]` = one past the last.
    fn bucket_bounds(text: &[u32], sigma: usize) -> (Vec<u32>, Vec<u32>) {
        let mut counts = vec![0u32; sigma];
        for &c in text {
            counts[c as usize] += 1;
        }
        let mut heads = vec![0u32; sigma];
        let mut tails = vec![0u32; sigma];
        let mut sum = 0u32;
        for c in 0..sigma {
            heads[c] = sum;
            sum += counts[c];
            tails[c] = sum;
        }
        (heads, tails)
    }

    /// Induced sort: given LMS positions placed at bucket tails, fill in
    /// L-type then S-type suffixes.
    fn induce(text: &[u32], sa: &mut [u32], stype: &[bool], heads: &[u32], tails: &[u32]) {
        let n = text.len();
        // L-type: left-to-right from bucket heads.
        let mut h = heads.to_vec();
        for i in 0..n {
            let j = sa[i];
            if j != EMPTY && j > 0 {
                let p = (j - 1) as usize;
                if !stype[p] {
                    let c = text[p] as usize;
                    sa[h[c] as usize] = p as u32;
                    h[c] += 1;
                }
            }
        }
        // S-type: right-to-left from bucket tails.
        let mut t = tails.to_vec();
        for i in (0..n).rev() {
            let j = sa[i];
            if j != EMPTY && j > 0 {
                let p = (j - 1) as usize;
                if stype[p] {
                    let c = text[p] as usize;
                    t[c] -= 1;
                    sa[t[c] as usize] = p as u32;
                }
            }
        }
    }

    pub(super) fn sais_main(text: &[u32], sa: &mut [u32], sigma: usize) {
        let n = text.len();
        if n == 1 {
            sa[0] = 0;
            return;
        }
        let stype = classify(text);
        let (heads, tails) = bucket_bounds(text, sigma);

        // Step 1: place LMS suffixes at bucket tails (arbitrary in-bucket
        // order).
        sa.fill(EMPTY);
        {
            let mut t = tails.clone();
            for i in (1..n).rev() {
                if is_lms(&stype, i) {
                    let c = text[i] as usize;
                    t[c] -= 1;
                    sa[t[c] as usize] = i as u32;
                }
            }
        }
        induce(text, sa, &stype, &heads, &tails);

        // Step 2: compact sorted LMS positions and name LMS substrings.
        let mut lms_sorted: Vec<u32> = sa
            .iter()
            .copied()
            .filter(|&j| j != EMPTY && is_lms(&stype, j as usize))
            .collect();
        let n_lms = lms_sorted.len();
        if n_lms == 0 {
            // No LMS positions (monotone non-increasing text): the induce
            // pass above already sorted everything.
            return;
        }
        // Name: equal adjacent LMS substrings share a name.
        let mut names = vec![EMPTY; n];
        let mut name_count: u32 = 0;
        {
            let mut prev: Option<usize> = None;
            for &jw in lms_sorted.iter() {
                let j = jw as usize;
                let same = match prev {
                    Some(p) => lms_substring_eq(text, &stype, p, j),
                    None => false,
                };
                if !same {
                    name_count += 1;
                }
                names[j] = name_count - 1;
                prev = Some(j);
            }
        }

        if (name_count as usize) < n_lms {
            // Recurse on the reduced string of LMS names, in text order.
            let mut reduced = Vec::with_capacity(n_lms);
            let mut lms_positions = Vec::with_capacity(n_lms);
            for (i, &nm) in names.iter().enumerate() {
                if nm != EMPTY {
                    reduced.push(nm);
                    lms_positions.push(i as u32);
                }
            }
            let mut sub_sa = vec![0u32; n_lms];
            sais_main(&reduced, &mut sub_sa, name_count as usize);
            for (k, &r) in sub_sa.iter().enumerate() {
                lms_sorted[k] = lms_positions[r as usize];
            }
        }
        // else: names are already unique, lms_sorted is correctly ordered.

        // Step 3: place sorted LMS suffixes at bucket tails and induce again.
        sa.fill(EMPTY);
        {
            let mut t = tails.clone();
            for &jw in lms_sorted.iter().rev() {
                let c = text[jw as usize] as usize;
                t[c] -= 1;
                sa[t[c] as usize] = jw;
            }
        }
        induce(text, sa, &stype, &heads, &tails);
    }

    /// Compare the LMS substrings starting at `a` and `b` for equality.
    fn lms_substring_eq(text: &[u32], stype: &[bool], a: usize, b: usize) -> bool {
        let n = text.len();
        if a == b {
            return true;
        }
        let mut i = 0usize;
        loop {
            let (pa, pb) = (a + i, b + i);
            let a_end = pa >= n || (i > 0 && is_lms(stype, pa));
            let b_end = pb >= n || (i > 0 && is_lms(stype, pb));
            if a_end && b_end {
                return true;
            }
            if a_end != b_end {
                return false;
            }
            if text[pa] != text[pb] || stype[pa] != stype[pb] {
                return false;
            }
            i += 1;
        }
    }
}

/// O(n² log n) reference implementation for testing.
pub fn naive_suffix_array(text: &[u32]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_sentinel(body: &[u32]) -> Vec<u32> {
        // Shift symbols up by one and append sentinel 0.
        let mut v: Vec<u32> = body.iter().map(|&c| c + 1).collect();
        v.push(0);
        v
    }

    fn check(body: &[u32]) {
        let text = with_sentinel(body);
        let sigma = text.iter().copied().max().unwrap() as usize + 1;
        let sa = suffix_array(&text, sigma);
        let expected = naive_suffix_array(&text);
        assert_eq!(sa, expected, "text={text:?}");
        assert_eq!(
            suffix_array_reference(&text, sigma),
            expected,
            "reference text={text:?}"
        );
    }

    #[test]
    fn banana() {
        // "banana" as integers b=2,a=1,n=3
        check(&[2, 1, 3, 1, 3, 1]);
    }

    #[test]
    fn mississippi() {
        // m=2,i=1,s=4,p=3
        check(&[2, 1, 4, 4, 1, 4, 4, 1, 3, 3, 1]);
    }

    #[test]
    fn single_and_tiny() {
        check(&[]);
        check(&[5]);
        check(&[1, 1]);
        check(&[2, 1]);
        check(&[1, 2]);
    }

    #[test]
    fn all_equal_runs() {
        check(&[7; 50]);
        check(&[1, 1, 2, 2, 1, 1, 2, 2]);
    }

    #[test]
    fn monotone_sequences() {
        check(&(1..40u32).collect::<Vec<_>>());
        check(&(1..40u32).rev().collect::<Vec<_>>());
    }

    #[test]
    fn pseudo_random_small_alphabets() {
        let mut x = 12345u64;
        for sigma in [2u32, 3, 4, 10, 100] {
            for len in [10usize, 50, 200, 1000] {
                let body: Vec<u32> = (0..len)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((x >> 33) as u32) % sigma
                    })
                    .collect();
                check(&body);
            }
        }
    }

    #[test]
    fn repetitive_trajectory_like() {
        // Long repeated paths separated by a separator (like $-separated
        // trajectory strings) stress the recursion.
        let mut body = Vec::new();
        for _ in 0..30 {
            body.extend_from_slice(&[5, 6, 7, 8, 9, 10]);
            body.push(1); // separator-like
        }
        check(&body);
    }

    #[test]
    #[should_panic(expected = "unique minimum sentinel")]
    fn rejects_missing_sentinel() {
        suffix_array(&[2, 1, 2], 3);
    }

    #[test]
    #[should_panic(expected = "unique minimum sentinel")]
    fn reference_rejects_missing_sentinel() {
        suffix_array_reference(&[2, 1, 2], 3);
    }

    #[test]
    fn workspace_reuse_across_texts() {
        // One workspace serves texts of different lengths and alphabets in
        // any order (buffers must re-clear, not just grow).
        let mut ws = SaisWorkspace::new();
        let bodies: Vec<Vec<u32>> = vec![
            (0..500u32).map(|i| i % 7).collect(),
            vec![3; 40],
            (0..1200u32).map(|i| (i * i) % 97).collect(),
            vec![1, 2],
        ];
        for body in &bodies {
            let text = with_sentinel(body);
            let sigma = text.iter().copied().max().unwrap() as usize + 1;
            assert_eq!(
                suffix_array_with(&text, sigma, &mut ws),
                naive_suffix_array(&text),
                "body len {}",
                body.len()
            );
        }
    }

    #[test]
    fn lean_equals_reference_deep_recursion() {
        // Fibonacci-like strings maximize LMS recursion depth.
        let (mut a, mut b) = (vec![1u32], vec![2u32, 1]);
        for _ in 0..12 {
            let next = [b.clone(), a.clone()].concat();
            a = b;
            b = next;
        }
        let text = with_sentinel(&b);
        let sigma = 4;
        assert_eq!(
            suffix_array(&text, sigma),
            suffix_array_reference(&text, sigma)
        );
    }

    #[test]
    fn large_random_consistency() {
        let mut x = 999u64;
        let body: Vec<u32> = (0..20_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % 50
            })
            .collect();
        let text = with_sentinel(&body);
        let sigma = 52;
        let sa = suffix_array(&text, sigma);
        // Verify sortedness pairwise (O(n) expected with random data).
        for w in sa.windows(2) {
            assert!(
                text[w[0] as usize..] < text[w[1] as usize..],
                "suffixes out of order"
            );
        }
        // Verify it is a permutation.
        let mut seen = vec![false; text.len()];
        for &i in &sa {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        // The seed path agrees wholesale.
        assert_eq!(sa, suffix_array_reference(&text, sigma));
    }
}
