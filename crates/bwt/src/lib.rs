#![warn(missing_docs)]
//! Suffix arrays, the Burrows–Wheeler transform, trajectory strings, and
//! empirical entropy — the string-processing substrate of CiNCT (paper §II).
//!
//! * [`sais`] — linear-time SA-IS suffix-array construction over integer
//!   alphabets (the paper used `sais.hxx`; this is a from-scratch Rust
//!   implementation of the algorithm).
//! * [`text`] — the trajectory string `T = T1^r $ … TN^r $ #` (Definition 2)
//!   and the `C[w]` cumulative-count array.
//! * [`mod@bwt`] — BWT construction from a suffix array and its inverse.
//! * [`entropy`] — 0th and k-th order empirical entropy (Eqs. (3) and (4)),
//!   used throughout the paper's analysis and in Tables III and V.

pub mod bwt;
pub mod entropy;
pub mod sais;
pub mod text;

pub use bwt::{bwt, bwt_from_sa, bwt_replace_sa, inverse_bwt, CArray};
pub use entropy::{entropy_h0, entropy_hk, h0_of_counts};
pub use sais::{suffix_array, suffix_array_reference, suffix_array_with, SaisWorkspace};
pub use text::{TrajectoryString, END_SYMBOL, SEPARATOR, SYMBOL_OFFSET};
