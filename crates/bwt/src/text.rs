//! The trajectory string (paper Definition 2) and the `C[w]` array.
//!
//! A set of NCTs `{T_k}` is indexed as one string
//! `T = T1^r $ T2^r $ … TN^r $ #` — each trajectory **reversed**, separated
//! by `$`, terminated by `#`. Reversal makes the FM-index's backward search
//! walk patterns *forward* along the road network.
//!
//! Symbol convention (fixed across the whole workspace):
//! `# = 0`, `$ = 1`, road segments `e ∈ E` are stored as `e + SYMBOL_OFFSET`.

/// The end-of-string sentinel `#` (lexicographically smallest, unique).
pub const END_SYMBOL: u32 = 0;
/// The trajectory separator `$`.
pub const SEPARATOR: u32 = 1;
/// Road-segment IDs are shifted by this amount when embedded in a
/// trajectory string.
pub const SYMBOL_OFFSET: u32 = 2;

/// A trajectory string plus bookkeeping to map between the concatenated
/// representation and individual trajectories.
#[derive(Clone, Debug)]
pub struct TrajectoryString {
    /// The symbols of `T` (already offset; ends with `#`).
    text: Vec<u32>,
    /// Alphabet size σ = max road-segment id + SYMBOL_OFFSET + 1.
    sigma: usize,
    /// Start position in `text` of each (reversed) trajectory.
    starts: Vec<u32>,
}

impl TrajectoryString {
    /// Build from raw trajectories (sequences of road-segment IDs
    /// `0..n_edges`). Empty trajectories are skipped.
    pub fn build(trajectories: &[Vec<u32>], n_edges: usize) -> Self {
        let total: usize = trajectories.iter().map(|t| t.len() + 1).sum();
        Self::ingest(
            trajectories.iter().map(Vec::as_slice),
            n_edges,
            total + 1,
            trajectories.len(),
        )
    }

    /// Build from a **stream** of trajectories: each edge sequence is
    /// folded into the concatenated string as it arrives, so corpora can
    /// be ingested without ever materializing them as a `Vec<Vec<u32>>`
    /// (the `cinct` builder's streaming path rides this). Empty
    /// trajectories are skipped, as in [`TrajectoryString::build`].
    pub fn from_iter<I, T>(trajectories: I, n_edges: usize) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        Self::ingest(trajectories, n_edges, 0, 0)
    }

    fn ingest<I, T>(trajectories: I, n_edges: usize, text_cap: usize, starts_cap: usize) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        let mut text = Vec::with_capacity(text_cap);
        let mut starts = Vec::with_capacity(starts_cap);
        for t in trajectories {
            let t = t.as_ref();
            if t.is_empty() {
                continue;
            }
            starts.push(text.len() as u32);
            for &e in t.iter().rev() {
                debug_assert!((e as usize) < n_edges, "edge id {e} out of range");
                text.push(e + SYMBOL_OFFSET);
            }
            text.push(SEPARATOR);
        }
        text.push(END_SYMBOL);
        Self {
            text,
            sigma: n_edges + SYMBOL_OFFSET as usize,
            starts,
        }
    }

    /// The concatenated symbols of `T`.
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// `|T|` including separators and the final `#`.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` iff the string holds no trajectories (just `#`).
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Alphabet size σ (road segments + 2 sentinels).
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of trajectories stored.
    pub fn num_trajectories(&self) -> usize {
        self.starts.len()
    }

    /// Start offsets (into `text`) of each reversed trajectory.
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// The trajectory (in original, forward order) containing text position
    /// `pos`, together with its id, or `None` for sentinel positions.
    pub fn trajectory_at(&self, pos: usize) -> Option<(usize, Vec<u32>)> {
        if pos + 1 >= self.text.len() {
            return None; // the final '#'
        }
        if self.text[pos] == SEPARATOR {
            return None;
        }
        let id = match self.starts.binary_search(&(pos as u32)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some((id, self.trajectory(id)))
    }

    /// The `id`-th trajectory in original (forward) edge order.
    pub fn trajectory(&self, id: usize) -> Vec<u32> {
        let start = self.starts[id] as usize;
        let end = self
            .starts
            .get(id + 1)
            .map_or(self.text.len() - 1, |&s| s as usize)
            - 1; // strip trailing '$'
        self.text[start..end]
            .iter()
            .rev()
            .map(|&s| s - SYMBOL_OFFSET)
            .collect()
    }

    /// Encode a query path (edge IDs, forward order) into the pattern the
    /// index searches for. Backward search over reversed trajectories means
    /// the pattern is the *reversed, offset* path.
    pub fn encode_pattern(path: &[u32]) -> Vec<u32> {
        path.iter().rev().map(|&e| e + SYMBOL_OFFSET).collect()
    }

    /// Decode an encoded pattern back to a forward path of edge IDs.
    pub fn decode_pattern(pattern: &[u32]) -> Vec<u32> {
        pattern.iter().rev().map(|&s| s - SYMBOL_OFFSET).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_layout() {
        // Fig. 1 trajectories: T1=ABEF, T2=ABC, T3=BC, T4=AD with A..F = 0..5.
        // T = FEBA $ CBA $ CB $ DA $ #  (paper Eq. (1)).
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        let ts = TrajectoryString::build(&trajs, 6);
        let sym = |c: char| -> u32 {
            match c {
                '#' => 0,
                '$' => 1,
                c => (c as u32 - 'A' as u32) + SYMBOL_OFFSET,
            }
        };
        let expected: Vec<u32> = "FEBA$CBA$CB$DA$#".chars().map(sym).collect();
        assert_eq!(ts.text(), &expected[..]);
        assert_eq!(ts.len(), 16);
        assert_eq!(ts.sigma(), 8);
        assert_eq!(ts.num_trajectories(), 4);
    }

    #[test]
    fn trajectory_roundtrip() {
        let trajs = vec![vec![3, 1, 4], vec![1, 5], vec![9, 2, 6, 5]];
        let ts = TrajectoryString::build(&trajs, 10);
        for (i, t) in trajs.iter().enumerate() {
            assert_eq!(&ts.trajectory(i), t);
        }
    }

    #[test]
    fn trajectory_at_positions() {
        let trajs = vec![vec![3, 1], vec![7]];
        let ts = TrajectoryString::build(&trajs, 8);
        // text = [1+2, 3+2, $, 7+2, $, #]
        assert_eq!(ts.trajectory_at(0).unwrap().0, 0);
        assert_eq!(ts.trajectory_at(1).unwrap().0, 0);
        assert!(ts.trajectory_at(2).is_none()); // '$'
        assert_eq!(ts.trajectory_at(3).unwrap().0, 1);
        assert!(ts.trajectory_at(5).is_none()); // '#'
    }

    #[test]
    fn skips_empty_trajectories() {
        let trajs = vec![vec![], vec![2, 3], vec![]];
        let ts = TrajectoryString::build(&trajs, 5);
        assert_eq!(ts.num_trajectories(), 1);
        assert_eq!(ts.trajectory(0), vec![2, 3]);
    }

    #[test]
    fn streamed_ingestion_matches_owned_build() {
        let trajs = vec![vec![3, 1, 4], vec![], vec![1, 5], vec![9, 2, 6, 5]];
        let owned = TrajectoryString::build(&trajs, 10);
        let streamed = TrajectoryString::from_iter(trajs.iter().map(Vec::as_slice), 10);
        assert_eq!(streamed.text(), owned.text());
        assert_eq!(streamed.starts(), owned.starts());
        assert_eq!(streamed.sigma(), owned.sigma());
    }

    #[test]
    fn pattern_encoding_roundtrip() {
        let path = vec![4u32, 2, 9];
        let pat = TrajectoryString::encode_pattern(&path);
        assert_eq!(pat, vec![11, 4, 6]);
        assert_eq!(TrajectoryString::decode_pattern(&pat), path);
    }

    #[test]
    fn empty_input() {
        let ts = TrajectoryString::build(&[], 4);
        assert!(ts.is_empty());
        assert_eq!(ts.text(), &[END_SYMBOL]);
    }
}
