//! Burrows–Wheeler transform and the `C[w]` array (paper §II-A2/3).
//!
//! With the unique smallest sentinel at the end of `T`, sorting rotations
//! (the paper's Fig. 2) is equivalent to sorting suffixes, so the BWT is
//! read directly off the suffix array: `T_bwt[i] = T[(SA[i] + n − 1) mod n]`.

use crate::sais::suffix_array;

/// Cumulative symbol counts: `C[w]` = number of symbols in `T` smaller than
/// `w`. `[C[w], C[w+1])` is the suffix range `R(w)` of the single-symbol
/// pattern `w`, and context blocks of the BWT align with these ranges.
#[derive(Clone, Debug)]
pub struct CArray {
    counts: Vec<u64>,
}

impl CArray {
    /// Count symbols of `text` over alphabet `0..sigma`.
    pub fn new(text: &[u32], sigma: usize) -> Self {
        let mut counts = vec![0u64; sigma + 1];
        for &c in text {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=sigma {
            counts[i] += counts[i - 1];
        }
        Self { counts }
    }

    /// `C[w]`: the number of symbols smaller than `w`. `w` may be `sigma`.
    #[inline]
    pub fn get(&self, w: u32) -> usize {
        self.counts[w as usize] as usize
    }

    /// The suffix range of the single-symbol pattern `w`.
    #[inline]
    pub fn symbol_range(&self, w: u32) -> std::ops::Range<usize> {
        self.get(w)..self.get(w + 1)
    }

    /// Number of occurrences of `w` in the text.
    #[inline]
    pub fn count(&self, w: u32) -> usize {
        self.get(w + 1) - self.get(w)
    }

    /// Alphabet size σ.
    pub fn sigma(&self) -> usize {
        self.counts.len() - 1
    }

    /// The symbol `w` whose range `[C[w], C[w+1])` contains BWT position `j`
    /// — i.e. the first symbol of the `j`-th sorted rotation. Binary search,
    /// as in Algorithm 4 Line 1.
    #[inline]
    pub fn symbol_at(&self, j: usize) -> u32 {
        debug_assert!(j < *self.counts.last().unwrap() as usize);
        (self.counts.partition_point(|&c| c <= j as u64) - 1) as u32
    }

    /// Heap bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.counts.capacity() * 8
    }

    /// The raw cumulative counts (persistence support).
    pub fn raw_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reassemble from raw cumulative counts; `None` if not non-decreasing.
    pub fn from_raw_counts(counts: Vec<u64>) -> Option<Self> {
        if counts.is_empty() || counts.windows(2).any(|w| w[1] < w[0]) {
            return None;
        }
        Some(Self { counts })
    }
}

/// Compute the BWT of `text` given its suffix array.
pub fn bwt_from_sa(text: &[u32], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    sa.iter()
        .map(|&i| {
            if i == 0 {
                text[n - 1]
            } else {
                text[i as usize - 1]
            }
        })
        .collect()
}

/// Convenience: SA + BWT in one call.
pub fn bwt(text: &[u32], sigma: usize) -> (Vec<u32>, Vec<u32>) {
    let sa = suffix_array(text, sigma);
    let b = bwt_from_sa(text, &sa);
    (sa, b)
}

/// Invert a BWT (sentinel-terminated convention): reconstructs the original
/// text. Used by tests and by the bzip2-like compressor's decoder.
pub fn inverse_bwt(bwt: &[u32], sigma: usize) -> Vec<u32> {
    let n = bwt.len();
    let c = CArray::new(bwt, sigma);
    // occ[i] = rank_{bwt[i]}(bwt, i), computed in one pass.
    let mut seen = vec![0u64; sigma];
    let mut occ = Vec::with_capacity(n);
    for &s in bwt {
        occ.push(seen[s as usize]);
        seen[s as usize] += 1;
    }
    // LF-walk from the sentinel rotation (row 0 starts with the sentinel,
    // because the sentinel is the unique minimum). The walk emits
    // `T[n-2], T[n-3], …, T[0]` and finally the sentinel `T[n-1]`.
    let mut out = vec![0u32; n];
    let mut j = 0usize;
    for k in (0..n).rev() {
        let idx = if k == 0 { n - 1 } else { k - 1 };
        out[idx] = bwt[j];
        j = c.get(bwt[j]) + occ[j] as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::TrajectoryString;

    /// The paper's running example (Eq. (1) / Eq. (2)).
    fn paper_text() -> Vec<u32> {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        TrajectoryString::build(&trajs, 6).text().to_vec()
    }

    fn sym(c: char) -> u32 {
        match c {
            '#' => 0,
            '$' => 1,
            c => (c as u32 - 'A' as u32) + 2,
        }
    }

    #[test]
    fn paper_bwt_matches_eq2() {
        let text = paper_text();
        let (_, b) = bwt(&text, 8);
        let expected: Vec<u32> = "$AAABDBBCCE$$$F#".chars().map(sym).collect();
        assert_eq!(b, expected);
    }

    #[test]
    fn paper_c_array() {
        let text = paper_text();
        let c = CArray::new(&text, 8);
        // From Fig. 2: C[A]=5, C[B]=8 (§II-A3).
        assert_eq!(c.get(sym('A')), 5);
        assert_eq!(c.get(sym('B')), 8);
        assert_eq!(c.symbol_range(sym('A')), 5..8);
        assert_eq!(c.count(sym('A')), 3);
        assert_eq!(c.get(8), 16); // total length
    }

    #[test]
    fn symbol_at_inverts_ranges() {
        let text = paper_text();
        let c = CArray::new(&text, 8);
        for w in 0..8u32 {
            for j in c.symbol_range(w) {
                assert_eq!(c.symbol_at(j), w, "j={j}");
            }
        }
    }

    #[test]
    fn inverse_bwt_roundtrip() {
        let text = paper_text();
        let (_, b) = bwt(&text, 8);
        assert_eq!(inverse_bwt(&b, 8), text);
    }

    #[test]
    fn inverse_bwt_random_texts() {
        let mut x = 77u64;
        for len in [5usize, 50, 500] {
            let mut text: Vec<u32> = (0..len)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 33) as u32) % 9 + 1
                })
                .collect();
            text.push(0);
            let (_, b) = bwt(&text, 10);
            assert_eq!(inverse_bwt(&b, 10), text);
        }
    }

    #[test]
    fn bwt_is_permutation_of_text() {
        let text = paper_text();
        let (_, b) = bwt(&text, 8);
        let mut a = text.clone();
        let mut bb = b.clone();
        a.sort_unstable();
        bb.sort_unstable();
        assert_eq!(a, bb);
    }
}
