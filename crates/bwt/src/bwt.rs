//! Burrows–Wheeler transform and the `C[w]` array (paper §II-A2/3).
//!
//! With the unique smallest sentinel at the end of `T`, sorting rotations
//! (the paper's Fig. 2) is equivalent to sorting suffixes, so the BWT is
//! read directly off the suffix array: `T_bwt[i] = T[(SA[i] + n − 1) mod n]`.

use crate::sais::suffix_array;
use cinct_succinct::{BitBuf, BitRank, IntVec, RankBitVec, SpaceUsage};

/// Cumulative symbol counts: `C[w]` = number of symbols in `T` smaller than
/// `w`. `[C[w], C[w+1])` is the suffix range `R(w)` of the single-symbol
/// pattern `w`, and context blocks of the BWT align with these ranges.
///
/// Besides the counts the struct can carry a rank-backed *boundary
/// accelerator* (`O(1)` [`CArray::symbol_at`]): a bit vector marking the
/// start position `C[w]` of every nonempty symbol range, plus the packed
/// list of those symbols in order. `symbol_at` is the context lookup of
/// every LF-mapping step (paper Algorithm 4 Line 1), so extract / locate /
/// trajectory-recovery walks pay it once per step — the seed's per-step
/// `O(log σ)` binary search was the dominant non-rank cost there. The
/// accelerator is built lazily on the first `symbol_at` call (≈ 1.07 bits
/// per indexed symbol), so consumers that never ask for contexts — the
/// baseline FM-indexes, `inverse_bwt` — pay nothing for it.
#[derive(Clone, Debug)]
pub struct CArray {
    counts: Vec<u64>,
    /// Lazily built `symbol_at` accelerator.
    accel: std::sync::OnceLock<SymbolAtAccel>,
}

/// The `O(1)` `symbol_at` support structure.
#[derive(Clone, Debug)]
struct SymbolAtAccel {
    /// Bit `C[w]` set for every `w` with `count(w) > 0` (length `n`).
    bounds: RankBitVec,
    /// The `k`-th symbol with a nonempty range, packed.
    live: IntVec,
}

/// Build the `symbol_at` accelerator from finished cumulative counts.
fn build_bounds(counts: &[u64]) -> SymbolAtAccel {
    let sigma = counts.len() - 1;
    let n = counts[sigma] as usize;
    let mut bits = BitBuf::zeros(n);
    let mut live = IntVec::with_capacity(IntVec::width_for(sigma.max(1) as u64), sigma.min(n));
    for w in 0..sigma {
        if counts[w + 1] > counts[w] {
            bits.set(counts[w] as usize, true);
            live.push(w as u64);
        }
    }
    live.shrink_to_fit();
    SymbolAtAccel {
        bounds: RankBitVec::new(bits),
        live,
    }
}

impl CArray {
    /// Count symbols of `text` over alphabet `0..sigma`.
    pub fn new(text: &[u32], sigma: usize) -> Self {
        let mut counts = vec![0u64; sigma + 1];
        for &c in text {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=sigma {
            counts[i] += counts[i - 1];
        }
        Self {
            counts,
            accel: std::sync::OnceLock::new(),
        }
    }

    /// `C[w]`: the number of symbols smaller than `w`. `w` may be `sigma`.
    #[inline]
    pub fn get(&self, w: u32) -> usize {
        self.counts[w as usize] as usize
    }

    /// The suffix range of the single-symbol pattern `w`.
    #[inline]
    pub fn symbol_range(&self, w: u32) -> std::ops::Range<usize> {
        self.get(w)..self.get(w + 1)
    }

    /// Number of occurrences of `w` in the text.
    #[inline]
    pub fn count(&self, w: u32) -> usize {
        self.get(w + 1) - self.get(w)
    }

    /// Alphabet size σ.
    pub fn sigma(&self) -> usize {
        self.counts.len() - 1
    }

    /// The symbol `w` whose range `[C[w], C[w+1])` contains BWT position `j`
    /// — i.e. the first symbol of the `j`-th sorted rotation (Algorithm 4
    /// Line 1). `O(1)` after the first call: one directory rank on the
    /// (lazily built) boundary bit vector plus one packed-array load.
    #[inline]
    pub fn symbol_at(&self, j: usize) -> u32 {
        debug_assert!(j < *self.counts.last().unwrap() as usize);
        let accel = self.accel.get_or_init(|| build_bounds(&self.counts));
        accel.live.get(accel.bounds.rank1(j + 1) - 1) as u32
    }

    /// The seed's `symbol_at`: binary search over the cumulative counts,
    /// `O(log σ)`. Kept as the reference implementation for property tests
    /// and the seed-equivalent bench path.
    #[inline]
    pub fn symbol_at_binsearch(&self, j: usize) -> u32 {
        debug_assert!(j < *self.counts.last().unwrap() as usize);
        (self.counts.partition_point(|&c| c <= j as u64) - 1) as u32
    }

    /// Heap bytes of the counts — the paper's `C` array accounting
    /// ((σ+1) machine words). The `symbol_at` accelerator is reported
    /// separately by [`CArray::accel_size_in_bytes`].
    pub fn size_in_bytes(&self) -> usize {
        self.counts.capacity() * 8
    }

    /// Heap bytes of the `O(1)` `symbol_at` accelerator (boundary bit
    /// vector + live-symbol list, ≈ 1.07 bits per indexed symbol; `0`
    /// until the first `symbol_at` call builds it) — an engineering
    /// addition beyond the paper's data structure, accounted like the
    /// other API conveniences (trajectory directory, SA samples; see
    /// `CinctIndex::directory_size_in_bytes`).
    pub fn accel_size_in_bytes(&self) -> usize {
        self.accel
            .get()
            .map_or(0, |a| a.bounds.size_in_bytes() + a.live.size_in_bytes())
    }

    /// The raw cumulative counts (persistence support).
    pub fn raw_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reassemble from raw cumulative counts; `None` if not non-decreasing.
    /// The `symbol_at` accelerator is derived state, rebuilt on demand.
    pub fn from_raw_counts(counts: Vec<u64>) -> Option<Self> {
        if counts.is_empty() || counts.windows(2).any(|w| w[1] < w[0]) {
            return None;
        }
        Some(Self {
            counts,
            accel: std::sync::OnceLock::new(),
        })
    }
}

/// Compute the BWT of `text` given its suffix array.
pub fn bwt_from_sa(text: &[u32], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    sa.iter()
        .map(|&i| {
            if i == 0 {
                text[n - 1]
            } else {
                text[i as usize - 1]
            }
        })
        .collect()
}

/// Derive the BWT **in place**: overwrite the suffix array with
/// `T_bwt[i] = T[(SA[i] + n − 1) mod n]`. The construction pipeline calls
/// this once every SA-dependent byproduct (trajectory directory, SA
/// samples) has been extracted, so the n-word BWT costs no allocation of
/// its own — the SA buffer *becomes* the BWT.
pub fn bwt_replace_sa(text: &[u32], sa: &mut [u32]) {
    let n = text.len();
    debug_assert_eq!(sa.len(), n);
    for slot in sa.iter_mut() {
        let i = *slot;
        *slot = if i == 0 {
            text[n - 1]
        } else {
            text[i as usize - 1]
        };
    }
}

/// Convenience: SA + BWT in one call.
pub fn bwt(text: &[u32], sigma: usize) -> (Vec<u32>, Vec<u32>) {
    let sa = suffix_array(text, sigma);
    let b = bwt_from_sa(text, &sa);
    (sa, b)
}

/// Invert a BWT (sentinel-terminated convention): reconstructs the original
/// text. Used by tests and by the bzip2-like compressor's decoder.
pub fn inverse_bwt(bwt: &[u32], sigma: usize) -> Vec<u32> {
    let n = bwt.len();
    let c = CArray::new(bwt, sigma);
    // occ[i] = rank_{bwt[i]}(bwt, i), computed in one pass.
    let mut seen = vec![0u64; sigma];
    let mut occ = Vec::with_capacity(n);
    for &s in bwt {
        occ.push(seen[s as usize]);
        seen[s as usize] += 1;
    }
    // LF-walk from the sentinel rotation (row 0 starts with the sentinel,
    // because the sentinel is the unique minimum). The walk emits
    // `T[n-2], T[n-3], …, T[0]` and finally the sentinel `T[n-1]`.
    let mut out = vec![0u32; n];
    let mut j = 0usize;
    for k in (0..n).rev() {
        let idx = if k == 0 { n - 1 } else { k - 1 };
        out[idx] = bwt[j];
        j = c.get(bwt[j]) + occ[j] as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::TrajectoryString;

    /// The paper's running example (Eq. (1) / Eq. (2)).
    fn paper_text() -> Vec<u32> {
        let trajs = vec![vec![0, 1, 4, 5], vec![0, 1, 2], vec![1, 2], vec![0, 3]];
        TrajectoryString::build(&trajs, 6).text().to_vec()
    }

    fn sym(c: char) -> u32 {
        match c {
            '#' => 0,
            '$' => 1,
            c => (c as u32 - 'A' as u32) + 2,
        }
    }

    #[test]
    fn paper_bwt_matches_eq2() {
        let text = paper_text();
        let (_, b) = bwt(&text, 8);
        let expected: Vec<u32> = "$AAABDBBCCE$$$F#".chars().map(sym).collect();
        assert_eq!(b, expected);
    }

    #[test]
    fn paper_c_array() {
        let text = paper_text();
        let c = CArray::new(&text, 8);
        // From Fig. 2: C[A]=5, C[B]=8 (§II-A3).
        assert_eq!(c.get(sym('A')), 5);
        assert_eq!(c.get(sym('B')), 8);
        assert_eq!(c.symbol_range(sym('A')), 5..8);
        assert_eq!(c.count(sym('A')), 3);
        assert_eq!(c.get(8), 16); // total length
    }

    #[test]
    fn symbol_at_inverts_ranges() {
        let text = paper_text();
        let c = CArray::new(&text, 8);
        for w in 0..8u32 {
            for j in c.symbol_range(w) {
                assert_eq!(c.symbol_at(j), w, "j={j}");
                assert_eq!(c.symbol_at_binsearch(j), w, "binsearch j={j}");
            }
        }
    }

    #[test]
    fn symbol_at_with_alphabet_gaps() {
        // Symbols 3 and 6 never occur: their (empty) ranges collapse onto
        // the next live symbol's boundary and must never be returned.
        let text: Vec<u32> = vec![0, 7, 7, 1, 4, 4, 4, 5, 1, 0];
        let c = CArray::new(&text, 9);
        let n = *c.raw_counts().last().unwrap() as usize;
        for j in 0..n {
            assert_eq!(c.symbol_at(j), c.symbol_at_binsearch(j), "j={j}");
        }
        assert!(c.accel_size_in_bytes() > 0);
        // Round-tripping through raw counts rebuilds the accelerator.
        let back = CArray::from_raw_counts(c.raw_counts().to_vec()).unwrap();
        for j in 0..n {
            assert_eq!(back.symbol_at(j), c.symbol_at(j), "j={j}");
        }
    }

    #[test]
    fn in_place_bwt_matches_allocating_path() {
        let text = paper_text();
        let (sa, b) = bwt(&text, 8);
        let mut buf = sa.clone();
        bwt_replace_sa(&text, &mut buf);
        assert_eq!(buf, b);
    }

    #[test]
    fn inverse_bwt_roundtrip() {
        let text = paper_text();
        let (_, b) = bwt(&text, 8);
        assert_eq!(inverse_bwt(&b, 8), text);
    }

    #[test]
    fn inverse_bwt_random_texts() {
        let mut x = 77u64;
        for len in [5usize, 50, 500] {
            let mut text: Vec<u32> = (0..len)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 33) as u32) % 9 + 1
                })
                .collect();
            text.push(0);
            let (_, b) = bwt(&text, 10);
            assert_eq!(inverse_bwt(&b, 10), text);
        }
    }

    #[test]
    fn bwt_is_permutation_of_text() {
        let text = paper_text();
        let (_, b) = bwt(&text, 8);
        let mut a = text.clone();
        let mut bb = b.clone();
        a.sort_unstable();
        bb.sort_unstable();
        assert_eq!(a, bb);
    }
}
