//! Empirical entropy: `H0` (paper Eq. (3)) and `Hk` (paper Eq. (4)).
//!
//! These drive the paper's analysis (Theorems 1, 3, 4, 6) and the dataset
//! statistics in Table III and the labeling comparison in Table V.

use std::collections::HashMap;

/// 0th-order empirical entropy of a sequence, in bits per symbol:
/// `H0(S) = Σ_w (n_w / n) lg(n / n_w)`.
pub fn entropy_h0(seq: &[u32]) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let sigma = seq.iter().copied().max().unwrap() as usize + 1;
    let mut counts = vec![0u64; sigma];
    for &s in seq {
        counts[s as usize] += 1;
    }
    h0_of_counts(&counts)
}

/// `H0` from a symbol histogram.
pub fn h0_of_counts(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / nf;
            -p * p.log2()
        })
        .sum()
}

/// k-th order empirical entropy (Eq. (4)):
/// `Hk(T) = Σ_{W ∈ Σ^k} (n_W / n) H0(T_W)`
/// where `T_W` collects the symbols that *precede* each occurrence of the
/// context `W` in `T` (the paper's convention, matching BWT context blocks).
///
/// Contexts are materialised in a hash map keyed by the k-gram, so this is
/// `O(nk)` time and at most `O(n)` space.
pub fn entropy_hk(seq: &[u32], k: usize) -> f64 {
    if k == 0 {
        return entropy_h0(seq);
    }
    if seq.len() <= k {
        return 0.0;
    }
    // For each position i in [0, n-k): symbol seq[i] is preceded... —
    // following the paper/Manzini: T_W = concatenation of characters
    // *preceding* occurrences of W. Occurrence of W at position i+1..i+k+1
    // is preceded by seq[i]. We group seq[i] by the context W = seq[i+1..=i+k].
    let mut groups: HashMap<&[u32], HashMap<u32, u64>> = HashMap::new();
    for i in 0..seq.len() - k {
        let context = &seq[i + 1..i + 1 + k];
        *groups
            .entry(context)
            .or_default()
            .entry(seq[i])
            .or_insert(0) += 1;
    }
    let n = (seq.len() - k) as f64;
    let mut h = 0.0;
    for hist in groups.values() {
        let counts: Vec<u64> = hist.values().copied().collect();
        let n_w: u64 = counts.iter().sum();
        h += (n_w as f64 / n) * h0_of_counts(&counts);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h0_uniform_is_log_sigma() {
        let seq: Vec<u32> = (0..1024u32).map(|i| i % 8).collect();
        assert!((entropy_h0(&seq) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn h0_constant_is_zero() {
        assert_eq!(entropy_h0(&[5; 100]), 0.0);
        assert_eq!(entropy_h0(&[]), 0.0);
    }

    #[test]
    fn h0_biased_binary() {
        // p = 1/4: H = 0.25*2 + 0.75*log2(4/3) ≈ 0.8113.
        let mut seq = vec![0u32; 750];
        seq.extend(vec![1u32; 250]);
        assert!((entropy_h0(&seq) - 0.8112781244591328).abs() < 1e-9);
    }

    #[test]
    fn paper_example_h0_of_bwt() {
        // The paper reports H0(T_bwt) = 2.8 bits for the running example
        // (§III-B2). T_bwt = $AAABDBBCCE$$$F#.
        let sym = |c: char| -> u32 {
            match c {
                '#' => 0,
                '$' => 1,
                c => (c as u32 - 'A' as u32) + 2,
            }
        };
        let tbwt: Vec<u32> = "$AAABDBBCCE$$$F#".chars().map(sym).collect();
        let h = entropy_h0(&tbwt);
        assert!((h - 2.8).abs() < 0.05, "H0(Tbwt) = {h}");
    }

    #[test]
    fn hk_decreases_with_k() {
        // Markovian data: Hk must be non-increasing in k (paper §II-B1).
        let mut x = 42u64;
        let mut seq = vec![0u32];
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let prev = *seq.last().unwrap();
            // Strong dependence on previous symbol.
            let next = if (x >> 33) % 10 < 8 {
                (prev + 1) % 6
            } else {
                ((x >> 40) as u32) % 6
            };
            seq.push(next);
        }
        let h0 = entropy_h0(&seq);
        let h1 = entropy_hk(&seq, 1);
        let h2 = entropy_hk(&seq, 2);
        assert!(h1 <= h0 + 1e-9, "H1={h1} > H0={h0}");
        assert!(h2 <= h1 + 1e-9, "H2={h2} > H1={h1}");
        assert!(h1 < h0 - 0.3, "Markov structure should drop entropy");
    }

    #[test]
    fn hk_of_deterministic_chain_is_zero() {
        // Cyclic sequence: next symbol fully determined by the previous.
        let seq: Vec<u32> = (0..5000u32).map(|i| i % 7).collect();
        assert!(entropy_hk(&seq, 1) < 1e-9);
    }

    #[test]
    fn hk_short_sequences() {
        assert_eq!(entropy_hk(&[1, 2], 5), 0.0);
        assert_eq!(entropy_hk(&[1], 1), 0.0);
    }
}
