//! Property-based tests for the road-network substrate: Dijkstra vs a
//! Bellman-Ford oracle, generator invariants, and travel-simulation
//! guarantees on arbitrary networks.

use cinct_network::generators::{grid_city, poisson_digraph};
use cinct_network::graph::Edge;
use cinct_network::travel::{interpolate_gaps, is_connected_path};
use cinct_network::{RoadNetwork, WalkConfig};
use proptest::prelude::*;

/// Arbitrary small connected-ish digraphs.
fn network_strategy() -> impl Strategy<Value = RoadNetwork> {
    (3usize..15).prop_flat_map(|n_nodes| {
        proptest::collection::vec(
            (0..n_nodes as u32, 0..n_nodes as u32, 1u32..100),
            n_nodes..n_nodes * 3,
        )
        .prop_map(move |edge_specs| {
            let coords: Vec<(f64, f64)> = (0..n_nodes)
                .map(|i| ((i * 7 % 13) as f64, (i * 5 % 11) as f64))
                .collect();
            let mut edges: Vec<Edge> = edge_specs
                .into_iter()
                .map(|(from, to, w)| Edge {
                    from,
                    to,
                    weight: w as f64 + 0.001 * ((from as f64) + 1.3 * to as f64),
                })
                .collect();
            // Guarantee every node has an out-edge so walks don't stall.
            for v in 0..n_nodes as u32 {
                edges.push(Edge {
                    from: v,
                    to: (v + 1) % n_nodes as u32,
                    weight: 50.0 + v as f64 * 0.01,
                });
            }
            RoadNetwork::new(coords, edges)
        })
    })
}

/// Bellman–Ford oracle for distances.
fn bellman_ford(net: &RoadNetwork, source: u32) -> Vec<f64> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[source as usize] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for e in 0..net.num_edges() as u32 {
            let edge = net.edge(e);
            let nd = dist[edge.from as usize] + edge.weight;
            if nd < dist[edge.to as usize] - 1e-12 {
                dist[edge.to as usize] = nd;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_matches_bellman_ford(net in network_strategy(), src_sel in any::<u32>()) {
        let src = src_sel % net.num_nodes() as u32;
        let sp = net.dijkstra(src);
        let oracle = bellman_ford(&net, src);
        for (v, &b) in oracle.iter().enumerate().take(net.num_nodes()) {
            let a = sp.dist[v];
            prop_assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-6,
                "node {}: dijkstra {} vs bf {}", v, a, b
            );
        }
    }

    #[test]
    fn shortest_path_edges_have_matching_weight(net in network_strategy(), sels in (any::<u32>(), any::<u32>())) {
        let from = sels.0 % net.num_nodes() as u32;
        let to = sels.1 % net.num_nodes() as u32;
        if let Some(path) = net.shortest_path_edges(from, to) {
            prop_assert!(is_connected_path(&net, &path));
            if !path.is_empty() {
                prop_assert_eq!(net.edge(path[0]).from, from);
                prop_assert_eq!(net.edge(*path.last().unwrap()).to, to);
            }
            let w: f64 = path.iter().map(|&e| net.edge(e).weight).sum();
            let sp = net.dijkstra(from);
            prop_assert!((w - sp.dist[to as usize]).abs() < 1e-6);
        }
    }

    #[test]
    fn walks_follow_the_network(net in network_strategy(), seed in any::<u64>()) {
        let cfg = WalkConfig { straight_bias: 2.0, min_len: 2, max_len: 15 };
        let trajs = cfg.generate(&net, 10, seed);
        for t in &trajs {
            prop_assert!(is_connected_path(&net, t));
        }
    }

    #[test]
    fn interpolation_yields_connected_paths(net in network_strategy(), seed in any::<u64>()) {
        // Build deliberately gapped trajectories by concatenating two walks.
        let cfg = WalkConfig { straight_bias: 1.5, min_len: 2, max_len: 8 };
        let a = cfg.generate(&net, 5, seed);
        let b = cfg.generate(&net, 5, seed ^ 0xFFFF);
        let glued: Vec<Vec<u32>> = a
            .into_iter()
            .zip(b)
            .map(|(mut x, y)| {
                x.extend(y);
                x
            })
            .collect();
        for t in interpolate_gaps(&net, &glued) {
            prop_assert!(is_connected_path(&net, &t), "gap survived interpolation");
        }
    }
}

#[test]
fn generators_are_deterministic_and_well_formed() {
    for seed in [1u64, 7, 42] {
        let a = grid_city(7, 5, seed);
        let b = grid_city(7, 5, seed);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in 0..a.num_edges() as u32 {
            assert_eq!(a.edge(e), b.edge(e));
        }
        let p = poisson_digraph(500, 3.0, seed);
        assert_eq!(p.num_edges(), 500);
        for e in 0..p.num_edges() as u32 {
            assert!(
                !p.successors(e).is_empty(),
                "dead-end edge in poisson graph"
            );
        }
    }
}
