#![warn(missing_docs)]
//! Road networks and trajectory generation.
//!
//! CiNCT indexes *network-constrained trajectories* — edge sequences on a
//! directed road graph. This crate supplies:
//!
//! * [`graph`] — the directed road-network model with edge adjacency
//!   ("which edges can follow edge `e`"), turn geometry, and Dijkstra
//!   shortest paths.
//! * [`generators`] — deterministic synthetic networks: grid cities,
//!   ring-radial cities, and Poisson random digraphs (the paper's RandWalk
//!   substrate for Figs. 12–13).
//! * [`travel`] — trajectory generation: turn-biased random walks,
//!   shortest-path trips between origin/destination pairs, gap-noise
//!   injection and shortest-path gap interpolation (the Singapore vs
//!   Singapore-2 preprocessing of §VI-A4).

pub mod generators;
pub mod graph;
pub mod travel;

pub use graph::{EdgeId, NodeId, RoadNetwork};
pub use travel::{GapNoise, TripGenerator, WalkConfig};
