//! Trajectory generation on road networks.
//!
//! Provides the travel behaviours behind the paper's datasets:
//!
//! * [`WalkConfig`] — turn-biased random walks. Real vehicles mostly go
//!   straight (paper §II-B, §V-D), so walks weight successor edges by turn
//!   angle; `straight_bias` tunes the resulting entropy, letting us hit the
//!   paper's per-dataset `H0(φ(T_bwt))` profile (Table III).
//! * [`TripGenerator`] — shortest-path trips between random origin /
//!   destination pairs (Brinkhoff-style moving-object generation for the
//!   MO-gen emulation).
//! * [`GapNoise`] — random "gapped" transitions emulating map-matching
//!   noise in the Singapore dataset, plus [`interpolate_gaps`] which fills
//!   gaps with shortest paths, exactly the Singapore → Singapore-2
//!   preprocessing of §VI-A4.

use crate::graph::{EdgeId, RoadNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for turn-biased random walks.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Weight multiplier for the straightest successor. 1.0 = uniform walk;
    /// larger values concentrate probability on going straight, lowering
    /// the entropy of the RML label stream.
    pub straight_bias: f64,
    /// Trajectory length is sampled uniformly from this range.
    pub min_len: usize,
    /// Inclusive upper bound on trajectory length.
    pub max_len: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            straight_bias: 4.0,
            min_len: 10,
            max_len: 60,
        }
    }
}

impl WalkConfig {
    /// Generate `count` trajectories by turn-biased random walks.
    pub fn generate(&self, net: &RoadNetwork, count: usize, seed: u64) -> Vec<Vec<EdgeId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| self.walk(net, &mut rng))
            .filter(|t| !t.is_empty())
            .collect()
    }

    /// One walk starting from a uniformly random edge.
    pub fn walk(&self, net: &RoadNetwork, rng: &mut StdRng) -> Vec<EdgeId> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        let mut cur = rng.gen_range(0..net.num_edges()) as EdgeId;
        let mut out = Vec::with_capacity(len);
        out.push(cur);
        for _ in 1..len {
            let succ = net.successors(cur);
            if succ.is_empty() {
                break;
            }
            cur = self.pick_successor(net, cur, succ, rng);
            out.push(cur);
        }
        out
    }

    /// Weighted choice over successors: weight = `straight_bias^(1 - |angle|/π)`,
    /// and U-turns (|angle| ≈ π) are further damped.
    fn pick_successor(
        &self,
        net: &RoadNetwork,
        cur: EdgeId,
        succ: &[EdgeId],
        rng: &mut StdRng,
    ) -> EdgeId {
        if succ.len() == 1 {
            return succ[0];
        }
        let weights: Vec<f64> = succ
            .iter()
            .map(|&s| {
                let a = net.turn_angle(cur, s).abs() / std::f64::consts::PI;
                let mut w = self.straight_bias.powf(1.0 - a);
                if a > 0.9 {
                    w *= 0.05; // U-turns are rare in traffic
                }
                w
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u <= w {
                return succ[i];
            }
            u -= w;
        }
        *succ.last().expect("non-empty successors")
    }
}

/// Shortest-path trips between random origin/destination node pairs.
#[derive(Clone, Copy, Debug)]
pub struct TripGenerator {
    /// Trips shorter than this many edges are rejected and resampled.
    pub min_edges: usize,
    /// Number of O/D resampling attempts before giving up on a trip.
    pub max_attempts: usize,
}

impl Default for TripGenerator {
    fn default() -> Self {
        Self {
            min_edges: 8,
            max_attempts: 8,
        }
    }
}

impl TripGenerator {
    /// Generate `count` shortest-path trips.
    ///
    /// One Dijkstra per origin; destinations falling on the same shortest-
    /// path tree reuse it, so cost is O(count · Dijkstra).
    pub fn generate(&self, net: &RoadNetwork, count: usize, seed: u64) -> Vec<Vec<EdgeId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let from = rng.gen_range(0..net.num_nodes()) as u32;
            let sp = net.dijkstra(from);
            // Draw several destinations per tree to amortise the Dijkstra.
            let per_tree = 4usize;
            let mut produced = 0usize;
            for _ in 0..self.max_attempts * per_tree {
                if produced == per_tree || out.len() == count {
                    break;
                }
                let to = rng.gen_range(0..net.num_nodes()) as u32;
                if let Some(path) = sp.path_to(net, to) {
                    if path.len() >= self.min_edges {
                        out.push(path);
                        produced += 1;
                    }
                }
            }
            if produced == 0 && net.num_nodes() < 4 {
                break; // degenerate network; avoid infinite loop
            }
        }
        out
    }
}

/// Map-matching gap noise: with probability `gap_prob`, a step jumps to a
/// uniformly random edge instead of a connected successor — producing the
/// physically-disconnected transitions that inflate the Singapore dataset's
/// ET-graph out-degree to d̄ ≈ 27 (Table III).
#[derive(Clone, Copy, Debug)]
pub struct GapNoise {
    /// Per-step probability of a gapped (teleport) transition.
    pub gap_prob: f64,
}

impl GapNoise {
    /// Corrupt trajectories in place.
    pub fn apply(&self, net: &RoadNetwork, trajs: &mut [Vec<EdgeId>], seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for t in trajs.iter_mut() {
            for i in 1..t.len() {
                if rng.gen::<f64>() < self.gap_prob {
                    t[i] = rng.gen_range(0..net.num_edges()) as EdgeId;
                    // Re-walk the remainder from the teleported edge so the
                    // rest of the trajectory stays connected.
                    for j in i + 1..t.len() {
                        let succ = net.successors(t[j - 1]);
                        if succ.is_empty() {
                            t.truncate(j);
                            break;
                        }
                        t[j] = succ[rng.gen_range(0..succ.len())];
                    }
                }
            }
        }
    }
}

/// Replace every physically-disconnected transition `a → b` with
/// `a → shortest_path(head(a), tail(b)) → b` (the Singapore-2
/// preprocessing). Transitions with no connecting path split the
/// trajectory.
pub fn interpolate_gaps(net: &RoadNetwork, trajs: &[Vec<EdgeId>]) -> Vec<Vec<EdgeId>> {
    let mut out = Vec::with_capacity(trajs.len());
    for t in trajs {
        let mut cur: Vec<EdgeId> = Vec::with_capacity(t.len());
        for (i, &e) in t.iter().enumerate() {
            if i == 0 {
                cur.push(e);
                continue;
            }
            let prev = *cur.last().expect("non-empty");
            if net.connected(prev, e) {
                cur.push(e);
            } else {
                let from = net.edge(prev).to;
                let to = net.edge(e).from;
                match net.shortest_path_edges(from, to) {
                    Some(mut fill) => {
                        cur.append(&mut fill);
                        cur.push(e);
                    }
                    None => {
                        // Unbridgeable gap: split into a new trajectory.
                        if cur.len() > 1 {
                            out.push(std::mem::take(&mut cur));
                        } else {
                            cur.clear();
                        }
                        cur.push(e);
                    }
                }
            }
        }
        if cur.len() > 1 {
            out.push(cur);
        }
    }
    out
}

/// Check that every consecutive pair in a trajectory is physically
/// connected in the network.
pub fn is_connected_path(net: &RoadNetwork, t: &[EdgeId]) -> bool {
    t.windows(2).all(|w| net.connected(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid_city;

    #[test]
    fn walks_are_connected_paths() {
        let net = grid_city(8, 8, 1);
        let trajs = WalkConfig::default().generate(&net, 50, 2);
        assert!(!trajs.is_empty());
        for t in &trajs {
            assert!(is_connected_path(&net, t), "disconnected walk");
            assert!(t.len() >= 2);
        }
    }

    #[test]
    fn straight_bias_reduces_turning() {
        let net = grid_city(12, 12, 1);
        let count_turns = |bias: f64| -> f64 {
            let cfg = WalkConfig {
                straight_bias: bias,
                min_len: 30,
                max_len: 30,
            };
            let trajs = cfg.generate(&net, 100, 7);
            let mut turns = 0usize;
            let mut steps = 0usize;
            for t in &trajs {
                for w in t.windows(2) {
                    steps += 1;
                    if net.turn_angle(w[0], w[1]).abs() > 0.1 {
                        turns += 1;
                    }
                }
            }
            turns as f64 / steps as f64
        };
        let uniform = count_turns(1.0);
        let biased = count_turns(16.0);
        assert!(
            biased < uniform * 0.6,
            "bias did not reduce turns: {biased} vs {uniform}"
        );
    }

    #[test]
    fn trips_are_shortest_paths() {
        let net = grid_city(10, 10, 3);
        let trips = TripGenerator::default().generate(&net, 20, 5);
        assert_eq!(trips.len(), 20);
        for t in &trips {
            assert!(is_connected_path(&net, t));
            assert!(t.len() >= 8);
            // Verify optimality: path weight equals Dijkstra distance.
            let from = net.edge(t[0]).from;
            let to = net.edge(*t.last().unwrap()).to;
            let sp = net.dijkstra(from);
            let w: f64 = t.iter().map(|&e| net.edge(e).weight).sum();
            assert!((w - sp.dist[to as usize]).abs() < 1e-9);
        }
    }

    #[test]
    fn gap_noise_disconnects_then_interpolation_reconnects() {
        let net = grid_city(10, 10, 3);
        let mut trajs = WalkConfig::default().generate(&net, 80, 11);
        GapNoise { gap_prob: 0.1 }.apply(&net, &mut trajs, 13);
        let broken = trajs.iter().filter(|t| !is_connected_path(&net, t)).count();
        assert!(broken > 0, "noise should break some trajectories");
        let fixed = interpolate_gaps(&net, &trajs);
        for t in &fixed {
            assert!(is_connected_path(&net, t), "interpolation left a gap");
        }
        // Interpolation inserts edges, so total symbols grow (like 53M → 75M
        // for Singapore → Singapore-2 in Table III).
        let before: usize = trajs.iter().map(Vec::len).sum();
        let after: usize = fixed.iter().map(Vec::len).sum();
        assert!(after > before);
    }

    #[test]
    fn interpolation_is_identity_on_clean_paths() {
        let net = grid_city(6, 6, 5);
        let trajs = WalkConfig::default().generate(&net, 10, 17);
        let fixed = interpolate_gaps(&net, &trajs);
        assert_eq!(trajs, fixed);
    }

    #[test]
    fn deterministic_generation() {
        let net = grid_city(6, 6, 5);
        let a = WalkConfig::default().generate(&net, 10, 99);
        let b = WalkConfig::default().generate(&net, 10, 99);
        assert_eq!(a, b);
    }
}
