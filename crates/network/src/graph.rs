//! Directed road-network model.
//!
//! Trajectories are sequences of **edge IDs** (road segments), so the model
//! is edge-centric: the key relation is "which edges may follow edge `e`"
//! (edges leaving `e`'s head node). Nodes carry planar coordinates so
//! generators can express turn geometry (vehicles preferring to go
//! straight — the bias RML exploits, paper §V-D / Fig. 9).

use std::collections::BinaryHeap;

/// Node (intersection) identifier.
pub type NodeId = u32;
/// Edge (road segment) identifier — the alphabet of trajectory strings.
pub type EdgeId = u32;

/// One directed road segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Tail node (where the segment starts).
    pub from: NodeId,
    /// Head node (where the segment ends).
    pub to: NodeId,
    /// Travel cost (length in abstract units).
    pub weight: f64,
}

/// A directed road network with coordinates, CSR-style adjacency, and an
/// edge-to-edge successor relation.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    /// Planar coordinates per node.
    pub coords: Vec<(f64, f64)>,
    edges: Vec<Edge>,
    /// CSR offsets into `out_edges` per node.
    node_out_offsets: Vec<u32>,
    /// Edge IDs leaving each node, grouped by node.
    node_out_edges: Vec<EdgeId>,
}

impl RoadNetwork {
    /// Build from raw parts. Edge order defines the edge-ID alphabet.
    pub fn new(coords: Vec<(f64, f64)>, edges: Vec<Edge>) -> Self {
        let n_nodes = coords.len();
        let mut counts = vec![0u32; n_nodes + 1];
        for e in &edges {
            debug_assert!((e.from as usize) < n_nodes && (e.to as usize) < n_nodes);
            counts[e.from as usize + 1] += 1;
        }
        for i in 1..=n_nodes {
            counts[i] += counts[i - 1];
        }
        let node_out_offsets = counts.clone();
        let mut fill = counts;
        let mut node_out_edges = vec![0 as EdgeId; edges.len()];
        for (id, e) in edges.iter().enumerate() {
            let slot = fill[e.from as usize];
            node_out_edges[slot as usize] = id as EdgeId;
            fill[e.from as usize] += 1;
        }
        Self {
            coords,
            edges,
            node_out_offsets,
            node_out_edges,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of edges = alphabet size of raw trajectories.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge record for `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    /// Edges leaving node `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        let lo = self.node_out_offsets[v as usize] as usize;
        let hi = self.node_out_offsets[v as usize + 1] as usize;
        &self.node_out_edges[lo..hi]
    }

    /// Edges that can physically follow `e` (those leaving `e`'s head).
    #[inline]
    pub fn successors(&self, e: EdgeId) -> &[EdgeId] {
        self.out_edges(self.edges[e as usize].to)
    }

    /// Whether `b` may directly follow `a`.
    pub fn connected(&self, a: EdgeId, b: EdgeId) -> bool {
        self.edges[a as usize].to == self.edges[b as usize].from
    }

    /// Maximum out-degree over nodes (the paper's δ; "usually less than
    /// four" for road networks, Theorem 5).
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.out_edges(v as NodeId).len())
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree over nodes.
    pub fn avg_out_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_nodes().max(1) as f64
    }

    /// Turn angle (radians, in `[-π, π]`) when moving from edge `a` onto
    /// edge `b`; 0 means straight ahead. Requires `connected(a, b)`.
    pub fn turn_angle(&self, a: EdgeId, b: EdgeId) -> f64 {
        let ea = self.edges[a as usize];
        let eb = self.edges[b as usize];
        let (ax, ay) = self.coords[ea.from as usize];
        let (bx, by) = self.coords[ea.to as usize];
        let (cx, cy) = self.coords[eb.to as usize];
        let (v1x, v1y) = (bx - ax, by - ay);
        let (v2x, v2y) = (cx - bx, cy - by);
        let dot = v1x * v2x + v1y * v2y;
        let cross = v1x * v2y - v1y * v2x;
        cross.atan2(dot)
    }

    /// Dijkstra from `source` node; returns per-node distance (`f64::INFINITY`
    /// if unreachable) and the incoming edge on the shortest-path tree.
    pub fn dijkstra(&self, source: NodeId) -> ShortestPaths {
        let n = self.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent_edge = vec![u32::MAX; n];
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        dist[source as usize] = 0.0;
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &eid in self.out_edges(v) {
                let e = self.edges[eid as usize];
                let nd = d + e.weight;
                if nd < dist[e.to as usize] {
                    dist[e.to as usize] = nd;
                    parent_edge[e.to as usize] = eid;
                    heap.push(HeapEntry {
                        dist: nd,
                        node: e.to,
                    });
                }
            }
        }
        ShortestPaths { dist, parent_edge }
    }

    /// Shortest path between two nodes, as an edge sequence. `None` if
    /// unreachable.
    pub fn shortest_path_edges(&self, from: NodeId, to: NodeId) -> Option<Vec<EdgeId>> {
        if from == to {
            return Some(Vec::new());
        }
        let sp = self.dijkstra(from);
        sp.path_to(self, to)
    }
}

/// Incremental Dijkstra: expands the search ball only as far as requested.
///
/// The PRESS-like shortest-path coder grows a window edge by edge and only
/// ever needs distances up to the window's accumulated weight; a full
/// Dijkstra per window start would make corpus encoding quadratic. This
/// wrapper keeps the priority queue alive between queries and settles
/// nodes lazily.
#[derive(Clone, Debug)]
pub struct LazyDijkstra {
    dist: Vec<f64>,
    parent_edge: Vec<u32>,
    /// Epoch stamps: an entry is valid only if its stamp equals `epoch`,
    /// so `reset` is O(1) and the buffers are reused across runs.
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
    /// All nodes with final distance <= this radius are settled.
    settled_radius: f64,
}

impl LazyDijkstra {
    /// Allocate buffers for `net` and start a run from `source`.
    pub fn new(net: &RoadNetwork, source: NodeId) -> Self {
        let n = net.num_nodes();
        let mut this = Self {
            dist: vec![f64::INFINITY; n],
            parent_edge: vec![u32::MAX; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            settled_radius: -1.0,
        };
        this.reset(source);
        this
    }

    /// Restart from a new source, reusing the allocations (O(1) plus heap
    /// clear — no per-node re-initialisation).
    pub fn reset(&mut self, source: NodeId) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: invalidate everything explicitly.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.set(source, 0.0, u32::MAX);
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        self.settled_radius = -1.0;
    }

    #[inline]
    fn set(&mut self, v: NodeId, d: f64, parent: u32) {
        self.dist[v as usize] = d;
        self.parent_edge[v as usize] = parent;
        self.stamp[v as usize] = self.epoch;
    }

    /// Expand until every node within `radius` of the source is settled.
    pub fn settle_to(&mut self, net: &RoadNetwork, radius: f64) {
        if radius <= self.settled_radius {
            return;
        }
        while let Some(&HeapEntry { dist: d, node: v }) = self.heap.peek() {
            if d > radius {
                break;
            }
            self.heap.pop();
            if d > self.dist(v) {
                continue; // stale entry
            }
            for &eid in net.out_edges(v) {
                let e = net.edge(eid);
                let nd = d + e.weight;
                if nd < self.dist(e.to) {
                    self.set(e.to, nd, eid);
                    self.heap.push(HeapEntry {
                        dist: nd,
                        node: e.to,
                    });
                }
            }
        }
        self.settled_radius = radius;
    }

    /// Distance to `node`, final only if `<= settled radius`.
    #[inline]
    pub fn dist(&self, node: NodeId) -> f64 {
        if self.stamp[node as usize] == self.epoch {
            self.dist[node as usize]
        } else {
            f64::INFINITY
        }
    }

    /// Shortest-path-tree incoming edge of `node` (`u32::MAX` = none yet).
    #[inline]
    pub fn parent_edge(&self, node: NodeId) -> u32 {
        if self.stamp[node as usize] == self.epoch {
            self.parent_edge[node as usize]
        } else {
            u32::MAX
        }
    }
}

/// Result of a Dijkstra run.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Distance per node.
    pub dist: Vec<f64>,
    /// Incoming shortest-path-tree edge per node (`u32::MAX` = none).
    pub parent_edge: Vec<u32>,
}

impl ShortestPaths {
    /// Reconstruct the edge path to `target`, or `None` if unreachable.
    pub fn path_to(&self, net: &RoadNetwork, target: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist[target as usize].is_finite() {
            return None;
        }
        let mut path = Vec::new();
        let mut v = target;
        while self.parent_edge[v as usize] != u32::MAX {
            let e = self.parent_edge[v as usize];
            path.push(e);
            v = net.edge(e).from;
        }
        path.reverse();
        Some(path)
    }
}

/// Max-heap entry ordered by smallest distance first.
#[derive(Clone, Copy, Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-node diamond: 0 → 1 → 3 and 0 → 2 → 3, plus a long direct 0 → 3.
    fn diamond() -> RoadNetwork {
        let coords = vec![(0.0, 0.0), (1.0, 1.0), (1.0, -1.0), (2.0, 0.0)];
        let edges = vec![
            Edge {
                from: 0,
                to: 1,
                weight: 1.0,
            }, // e0
            Edge {
                from: 0,
                to: 2,
                weight: 2.0,
            }, // e1
            Edge {
                from: 1,
                to: 3,
                weight: 1.0,
            }, // e2
            Edge {
                from: 2,
                to: 3,
                weight: 1.0,
            }, // e3
            Edge {
                from: 0,
                to: 3,
                weight: 10.0,
            }, // e4
        ];
        RoadNetwork::new(coords, edges)
    }

    #[test]
    fn adjacency() {
        let net = diamond();
        assert_eq!(net.out_edges(0), &[0, 1, 4]);
        assert_eq!(net.out_edges(3), &[] as &[EdgeId]);
        assert_eq!(net.successors(0), &[2]);
        assert!(net.connected(0, 2));
        assert!(!net.connected(0, 3));
        assert_eq!(net.max_out_degree(), 3);
    }

    #[test]
    fn dijkstra_distances() {
        let net = diamond();
        let sp = net.dijkstra(0);
        assert_eq!(sp.dist[0], 0.0);
        assert_eq!(sp.dist[1], 1.0);
        assert_eq!(sp.dist[2], 2.0);
        assert_eq!(sp.dist[3], 2.0); // via node 1, not the weight-10 edge
    }

    #[test]
    fn shortest_path_reconstruction() {
        let net = diamond();
        assert_eq!(net.shortest_path_edges(0, 3), Some(vec![0, 2]));
        assert_eq!(net.shortest_path_edges(0, 0), Some(vec![]));
        assert_eq!(net.shortest_path_edges(3, 0), None); // no reverse edges
    }

    #[test]
    fn turn_angles() {
        // straight line 0 → 1 → 2 along x-axis, plus a left turn up.
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (1.0, 1.0)];
        let edges = vec![
            Edge {
                from: 0,
                to: 1,
                weight: 1.0,
            },
            Edge {
                from: 1,
                to: 2,
                weight: 1.0,
            },
            Edge {
                from: 1,
                to: 3,
                weight: 1.0,
            },
        ];
        let net = RoadNetwork::new(coords, edges);
        assert!(net.turn_angle(0, 1).abs() < 1e-12); // straight
        assert!((net.turn_angle(0, 2) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // left
    }

    #[test]
    fn unreachable_nodes() {
        let net = RoadNetwork::new(
            vec![(0.0, 0.0), (1.0, 0.0)],
            vec![Edge {
                from: 0,
                to: 1,
                weight: 1.0,
            }],
        );
        let sp = net.dijkstra(1);
        assert!(!sp.dist[0].is_finite());
        assert!(sp.path_to(&net, 0).is_none());
    }
}
