//! Deterministic synthetic road networks.
//!
//! Three families cover the regimes of the paper's evaluation:
//! * [`grid_city`] — Manhattan-style grids with bidirectional streets
//!   (Singapore / MO-gen emulations; node out-degree ≤ 4, so the edge
//!   successor degree δ matches real road networks).
//! * [`ring_radial_city`] — sparse ring+radial topology (Roma emulation:
//!   very low branching, long straight arterials).
//! * [`poisson_digraph`] — directed random graph with Poisson out-degrees
//!   (the paper's RandWalk synthetic data for Figs. 12 and 13, where σ and
//!   the average out-degree d̄ are swept independently).

use crate::graph::{Edge, NodeId, RoadNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `w × h` grid of intersections with bidirectional streets between
/// orthogonal neighbours. Edge weights are jittered around 1.0 so shortest
/// paths are unique with probability 1.
pub fn grid_city(w: usize, h: usize, seed: u64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let node = |x: usize, y: usize| (y * w + x) as NodeId;
    let mut coords = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            coords.push((x as f64, y as f64));
        }
    }
    let mut edges = Vec::new();
    let mut push_bidir = |a: NodeId, b: NodeId, rng: &mut StdRng| {
        let wt = 1.0 + rng.gen::<f64>() * 0.1;
        edges.push(Edge {
            from: a,
            to: b,
            weight: wt,
        });
        let wt = 1.0 + rng.gen::<f64>() * 0.1;
        edges.push(Edge {
            from: b,
            to: a,
            weight: wt,
        });
    };
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                push_bidir(node(x, y), node(x + 1, y), &mut rng);
            }
            if y + 1 < h {
                push_bidir(node(x, y), node(x, y + 1), &mut rng);
            }
        }
    }
    RoadNetwork::new(coords, edges)
}

/// A ring-and-radial city: `rings` concentric rings of `spokes` nodes each,
/// connected along rings (bidirectional) and along spokes (bidirectional),
/// plus a central node. Produces long, low-branching corridors.
pub fn ring_radial_city(rings: usize, spokes: usize, seed: u64) -> RoadNetwork {
    assert!(rings >= 1 && spokes >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = vec![(0.0, 0.0)]; // node 0 = center
    for r in 1..=rings {
        for s in 0..spokes {
            let theta = (s as f64) / (spokes as f64) * std::f64::consts::TAU;
            coords.push((r as f64 * theta.cos(), r as f64 * theta.sin()));
        }
    }
    let node = |r: usize, s: usize| -> NodeId {
        debug_assert!(r >= 1);
        (1 + (r - 1) * spokes + (s % spokes)) as NodeId
    };
    let mut edges = Vec::new();
    let mut push_bidir = |a: NodeId, b: NodeId, base: f64, rng: &mut StdRng| {
        let wt = base * (1.0 + rng.gen::<f64>() * 0.05);
        edges.push(Edge {
            from: a,
            to: b,
            weight: wt,
        });
        let wt = base * (1.0 + rng.gen::<f64>() * 0.05);
        edges.push(Edge {
            from: b,
            to: a,
            weight: wt,
        });
    };
    // Ring edges.
    for r in 1..=rings {
        for s in 0..spokes {
            push_bidir(node(r, s), node(r, s + 1), r as f64 * 0.4, &mut rng);
        }
    }
    // Radial edges (center to ring 1, then ring r to r+1) on every 4th spoke
    // to keep branching low.
    for s in (0..spokes).step_by(4) {
        push_bidir(0, node(1, s), 1.0, &mut rng);
    }
    for r in 1..rings {
        for s in (0..spokes).step_by(2) {
            push_bidir(node(r, s), node(r + 1, s), 1.0, &mut rng);
        }
    }
    RoadNetwork::new(coords, edges)
}

/// Directed random graph for the paper's RandWalk experiments: `n_edges`
/// road segments are created by giving each of the `n_edges / avg_out_degree`
/// nodes a Poisson(`avg_out_degree`)-distributed number of outgoing edges to
/// uniformly random targets (min 1, so walks never get stuck).
///
/// The result has σ ≈ `n_edges` and ET-graph average out-degree ≈
/// `avg_out_degree`, the two axes swept in Figs. 12–13.
pub fn poisson_digraph(n_edges: usize, avg_out_degree: f64, seed: u64) -> RoadNetwork {
    assert!(avg_out_degree >= 1.0);
    let n_nodes = ((n_edges as f64 / avg_out_degree).round() as usize).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        coords.push((rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0));
    }
    let mut edges = Vec::with_capacity(n_edges);
    // First give every node one outgoing edge (connectivity), then distribute
    // the remainder ~Poisson by uniform assignment of extra stubs.
    for v in 0..n_nodes {
        let to = rng.gen_range(0..n_nodes) as NodeId;
        edges.push(Edge {
            from: v as NodeId,
            to,
            weight: 1.0 + rng.gen::<f64>() * 0.1,
        });
    }
    while edges.len() < n_edges {
        let from = rng.gen_range(0..n_nodes) as NodeId;
        let to = rng.gen_range(0..n_nodes) as NodeId;
        edges.push(Edge {
            from,
            to,
            weight: 1.0 + rng.gen::<f64>() * 0.1,
        });
    }
    RoadNetwork::new(coords, edges)
}

/// A sparse layered DAG emulating chess-opening state graphs (Table III's
/// Chess dataset): `width` states per ply over `plies` plies; each state has
/// a small Zipf-distributed number of successors in the next ply. Returned
/// as a road network whose "edges" are state-transition arcs; trajectories
/// over it are game prefixes.
pub fn layered_dag(plies: usize, width: usize, max_branch: usize, seed: u64) -> RoadNetwork {
    assert!(plies >= 2 && width >= 1 && max_branch >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nodes = plies * width + 1; // + start node
    let mut coords = Vec::with_capacity(n_nodes);
    coords.push((0.0, 0.0));
    for p in 0..plies {
        for s in 0..width {
            coords.push((p as f64 + 1.0, s as f64));
        }
    }
    let node = |p: usize, s: usize| (1 + p * width + s) as NodeId;
    let mut edges = Vec::new();
    // Start node fans out to a handful of first moves.
    let first_moves = max_branch.min(width).max(1);
    for s in 0..first_moves {
        edges.push(Edge {
            from: 0,
            to: node(0, s * width / first_moves),
            weight: 1.0,
        });
    }
    // Zipf-ish branching per state: branch count k with prob ∝ 1/k.
    let harmonic: f64 = (1..=max_branch).map(|k| 1.0 / k as f64).sum();
    for p in 0..plies - 1 {
        for s in 0..width {
            let u = rng.gen::<f64>() * harmonic;
            let mut acc = 0.0;
            let mut branches = 1;
            for k in 1..=max_branch {
                acc += 1.0 / k as f64;
                if u <= acc {
                    branches = k;
                    break;
                }
            }
            for _ in 0..branches {
                let t = rng.gen_range(0..width);
                edges.push(Edge {
                    from: node(p, s),
                    to: node(p + 1, t),
                    weight: 1.0,
                });
            }
        }
    }
    RoadNetwork::new(coords, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let net = grid_city(5, 4, 1);
        assert_eq!(net.num_nodes(), 20);
        // edges: horizontal 4*4*2 + vertical 5*3*2 = 32 + 30 = 62
        assert_eq!(net.num_edges(), 62);
        // Interior nodes have out-degree 4.
        assert_eq!(net.max_out_degree(), 4);
        // Every edge has at least one successor (grids are strongly connected).
        for e in 0..net.num_edges() as u32 {
            assert!(!net.successors(e).is_empty(), "edge {e} is a dead end");
        }
    }

    #[test]
    fn grid_deterministic() {
        let a = grid_city(4, 4, 9);
        let b = grid_city(4, 4, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in 0..a.num_edges() as u32 {
            assert_eq!(a.edge(e), b.edge(e));
        }
    }

    #[test]
    fn poisson_degree_targets() {
        let net = poisson_digraph(10_000, 4.0, 3);
        assert_eq!(net.num_edges(), 10_000);
        let d = net.avg_out_degree();
        assert!((d - 4.0).abs() < 0.5, "avg out-degree {d}");
        for e in 0..net.num_edges() as u32 {
            assert!(!net.successors(e).is_empty());
        }
    }

    #[test]
    fn poisson_degree_sweep() {
        for target in [2.0f64, 8.0, 32.0] {
            let net = poisson_digraph(5_000, target, 7);
            let d = net.avg_out_degree();
            assert!(
                (d - target).abs() / target < 0.25,
                "target {target} got {d}"
            );
        }
    }

    #[test]
    fn ring_radial_is_sparse() {
        let net = ring_radial_city(6, 24, 5);
        assert!(net.avg_out_degree() < 4.0);
        assert!(net.num_edges() > 100);
    }

    #[test]
    fn layered_dag_is_acyclic_by_levels() {
        let net = layered_dag(10, 50, 5, 11);
        // every edge goes from ply p to ply p+1 (or from start)
        for e in 0..net.num_edges() as u32 {
            let edge = net.edge(e);
            let from_ply = if edge.from == 0 {
                -1
            } else {
                ((edge.from - 1) / 50) as i64
            };
            let to_ply = ((edge.to - 1) / 50) as i64;
            assert_eq!(to_ply, from_ply + 1);
        }
    }
}
