#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this vendored shim
//! provides the subset of the `rand 0.8` API the workspace uses: a seeded
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `f64`/`u64`/`bool`, and [`Rng::gen_range`] over integer ranges.
//!
//! The generator is splitmix64 — statistically fine for synthetic-dataset
//! generation and workload sampling, deterministic per seed, but **not**
//! stream-compatible with the real `StdRng` (ChaCha12). Swap the workspace
//! `rand` path dependency for the registry crate when network access is
//! available; nothing in this repo asserts golden values of the stream.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` (see [`Standard`] impls: `f64` uniform in
    /// `[0, 1)`, `u64`/`u32` uniform, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }
}

/// Types samplable from 64 raw bits (stand-in for `rand::distributions::Standard`).
pub trait Standard {
    /// Map 64 raw bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits >> 63 != 0
    }
}

/// Ranges a `T` can be drawn from (stand-in for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one sample using 64 raw bits.
    fn sample(self, bits: u64) -> T;
}

/// Integer types uniform ranges can be drawn over (stand-in for
/// `rand::distributions::uniform::SampleUniform`). The single blanket
/// `SampleRange` impl below keeps type inference working the way it does
/// with the real crate (`let x: u64 = rng.gen_range(20..60)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` itself when `inclusive`).
    fn sample_between(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: $t, hi: $t, inclusive: bool, bits: u64) -> $t {
                let span = (hi - lo) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                lo + (bits as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(lo: f64, hi: f64, _inclusive: bool, bits: u64) -> f64 {
        lo + f64::sample(bits) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, bits: u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, bits)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, bits: u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, bits)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Warm up so nearby seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
