#![warn(missing_docs)]
//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no registry access, so this shim provides the
//! subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — with plain mean/min wall-clock reporting instead
//! of criterion's statistical machinery. Swap the workspace `criterion`
//! path dependency for the registry crate for real measurements.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named benchmark group (prints one line per benchmark on completion).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Time one benchmark closure.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.criterion.sample_size);
        // One warm-up run, then the timed samples.
        for i in 0..=self.criterion.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            assert!(b.iters > 0, "Bencher::iter was never called in {id}");
            if i > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        eprintln!(
            "  {}/{id}: mean {:.3} us, min {:.3} us ({} samples)",
            self.name,
            mean * 1e6,
            min * 1e6,
            samples.len()
        );
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the work under [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record its wall-clock time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate an iteration count that runs long enough to time.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let reps = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.elapsed += t0.elapsed();
        self.iters += reps;
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
